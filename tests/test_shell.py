"""Tests for the interactive shell."""

from __future__ import annotations

import pytest

from repro.core import MoaraCluster
from repro.shell import MoaraShell


@pytest.fixture(scope="module")
def shell() -> MoaraShell:
    cluster = MoaraCluster(30, seed=9)
    cluster.set_group("ServiceX", cluster.node_ids[:6])
    for i, node_id in enumerate(cluster.node_ids):
        cluster.set_attribute(node_id, "cpu-util", float(i))
    return MoaraShell(cluster)


def test_query_execution(shell: MoaraShell) -> None:
    output = shell.execute("SELECT COUNT(*) WHERE ServiceX = true")
    assert "value: 6" in output
    assert "cover: (ServiceX = true)" in output


def test_triple_form(shell: MoaraShell) -> None:
    output = shell.execute("(cpu-util, max, ServiceX = true)")
    assert "value:" in output


def test_parse_error_reported_not_raised(shell: MoaraShell) -> None:
    output = shell.execute("SELECT nope nope")
    assert output.startswith("error:")


def test_dot_commands(shell: MoaraShell) -> None:
    assert "30 nodes" in shell.execute(".nodes")
    assert "total messages" in shell.execute(".stats")
    assert "6 nodes satisfy" in shell.execute(".groups ServiceX = true")
    assert "Commands" in shell.execute(".help") or "SELECT" in shell.execute(".help")
    assert shell.execute("") == ""
    assert shell.execute(".bogus").startswith("error:")


def test_set_command(shell: MoaraShell) -> None:
    output = shell.execute(".set 0 newattr 42")
    assert "newattr" in output
    result = shell.execute("SELECT COUNT(*) WHERE newattr = 42")
    assert "value: 1" in result
    assert shell.execute(".set banana x 1").startswith("error:")


def test_quit_raises_eof(shell: MoaraShell) -> None:
    with pytest.raises(EOFError):
        shell.execute(".quit")


def test_default_shell_bootstraps_inventory() -> None:
    shell = MoaraShell()
    output = shell.execute("SELECT COUNT(*)")
    assert "value: 100" in output
