"""check_docs campaign-key validation: the schema reference cannot drift.

``docs/CAMPAIGNS.md`` documents the campaign YAML schema as tables of
backticked keys; ``scripts/check_docs.py`` must reject both directions
of drift -- a documented key the schema does not accept, and a schema
key the tables omit.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "check_docs.py"
DOC = REPO / "docs" / "CAMPAIGNS.md"


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location("check_docs", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_docs"] = module
    spec.loader.exec_module(module)
    return module


def test_committed_reference_matches_the_schema(check_docs) -> None:
    errors = check_docs.check_campaign_keys(
        DOC, DOC.read_text(encoding="utf-8"), "docs/CAMPAIGNS.md"
    )
    assert errors == []


def test_invented_key_is_flagged(check_docs) -> None:
    text = DOC.read_text(encoding="utf-8") + "\n| `warp_factor` | int |\n"
    errors = check_docs.check_campaign_keys(DOC, text, "docs/CAMPAIGNS.md")
    assert len(errors) == 1
    assert "warp_factor" in errors[0]
    assert "does not accept" in errors[0]


def test_omitted_schema_key_is_flagged(check_docs) -> None:
    text = DOC.read_text(encoding="utf-8").replace("`batch_window`", "(gone)")
    errors = check_docs.check_campaign_keys(DOC, text, "docs/CAMPAIGNS.md")
    assert len(errors) == 1
    assert "batch_window" in errors[0]
    assert "missing from" in errors[0]


def test_key_rows_only_match_table_cells(check_docs) -> None:
    """Prose backticks (`latency: lan`) and non-leading cells must not
    count as documentation of a key."""
    assert check_docs.KEY_ROW_RE.findall("use `latency: lan` here") == []
    assert check_docs.KEY_ROW_RE.findall("| int | `seed` |") == []
    assert check_docs.KEY_ROW_RE.findall("| `seed` | int |") == ["seed"]


def test_full_run_over_committed_docs_is_clean(check_docs, capsys) -> None:
    assert check_docs.main([]) == 0
    assert "OK" in capsys.readouterr().out
