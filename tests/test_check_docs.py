"""check_docs campaign-key validation: the schema reference cannot drift.

``docs/CAMPAIGNS.md`` documents the campaign YAML schema as tables of
backticked keys; ``scripts/check_docs.py`` must reject both directions
of drift -- a documented key the schema does not accept, and a schema
key the tables omit.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "check_docs.py"
DOC = REPO / "docs" / "CAMPAIGNS.md"


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location("check_docs", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_docs"] = module
    spec.loader.exec_module(module)
    return module


def test_committed_reference_matches_the_schema(check_docs) -> None:
    errors = check_docs.check_campaign_keys(
        DOC, DOC.read_text(encoding="utf-8"), "docs/CAMPAIGNS.md"
    )
    assert errors == []


def test_invented_key_is_flagged(check_docs) -> None:
    text = DOC.read_text(encoding="utf-8") + "\n| `warp_factor` | int |\n"
    errors = check_docs.check_campaign_keys(DOC, text, "docs/CAMPAIGNS.md")
    assert len(errors) == 1
    assert "warp_factor" in errors[0]
    assert "does not accept" in errors[0]


def test_omitted_schema_key_is_flagged(check_docs) -> None:
    text = DOC.read_text(encoding="utf-8").replace("`batch_window`", "(gone)")
    errors = check_docs.check_campaign_keys(DOC, text, "docs/CAMPAIGNS.md")
    assert len(errors) == 1
    assert "batch_window" in errors[0]
    assert "missing from" in errors[0]


def test_key_rows_only_match_table_cells(check_docs) -> None:
    """Prose backticks (`latency: lan`) and non-leading cells must not
    count as documentation of a key."""
    assert check_docs.KEY_ROW_RE.findall("use `latency: lan` here") == []
    assert check_docs.KEY_ROW_RE.findall("| int | `seed` |") == []
    assert check_docs.KEY_ROW_RE.findall("| `seed` | int |") == ["seed"]


def test_full_run_over_committed_docs_is_clean(check_docs, capsys) -> None:
    assert check_docs.main([]) == 0
    assert "OK" in capsys.readouterr().out

STANDING = REPO / "docs" / "STANDING_QUERIES.md"


def test_committed_protocol_table_matches_the_wire(check_docs) -> None:
    errors = check_docs.check_standing_messages(
        STANDING,
        STANDING.read_text(encoding="utf-8"),
        "docs/STANDING_QUERIES.md",
    )
    assert errors == []


def test_invented_message_type_is_flagged(check_docs) -> None:
    text = STANDING.read_text(encoding="utf-8") + (
        "\n| `SUB_TELEPORT` | nowhere | nothing |\n"
    )
    errors = check_docs.check_standing_messages(
        STANDING, text, "docs/STANDING_QUERIES.md"
    )
    assert len(errors) == 1
    assert "SUB_TELEPORT" in errors[0]
    assert "not in" in errors[0]


def test_omitted_message_type_is_flagged(check_docs) -> None:
    text = STANDING.read_text(encoding="utf-8").replace("`SUB_RENEW`", "(gone)")
    errors = check_docs.check_standing_messages(
        STANDING, text, "docs/STANDING_QUERIES.md"
    )
    assert len(errors) == 1
    assert "SUB_RENEW" in errors[0]
    assert "missing from" in errors[0]


def test_committed_docs_have_no_orphans(check_docs) -> None:
    assert check_docs.orphan_docs() == []


def test_orphan_doc_is_flagged(check_docs, tmp_path, monkeypatch) -> None:
    """A docs/*.md nothing references — directly or transitively — from
    README must be reported."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "Start with `docs/LINKED.md`.\n", encoding="utf-8"
    )
    # Transitive reachability: README -> LINKED -> DEEP.
    (tmp_path / "docs" / "LINKED.md").write_text(
        "Continue in [the deep dive](DEEP.md).\n", encoding="utf-8"
    )
    (tmp_path / "docs" / "DEEP.md").write_text("depths\n", encoding="utf-8")
    (tmp_path / "docs" / "LONELY.md").write_text("unlinked\n", encoding="utf-8")
    monkeypatch.setattr(check_docs, "REPO", tmp_path)
    errors = check_docs.orphan_docs()
    assert len(errors) == 1
    assert "LONELY.md" in errors[0]
    assert "orphan" in errors[0]
