"""Unit tests for failure injection."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim import Engine, Message, Network, ZeroLatencyModel
from repro.sim.failures import FailureInjector


@dataclass
class Sink:
    node_id: int
    received: list[Message] = field(default_factory=list)

    def handle_message(self, message: Message) -> None:
        self.received.append(message)


def test_scheduled_crash_and_recovery() -> None:
    engine = Engine()
    network = Network(engine, ZeroLatencyModel())
    sink = Sink(1)
    network.attach(sink)
    network.attach(Sink(2))
    injector = FailureInjector(network)
    injector.crash_at(1.0, 1)
    injector.recover_at(2.0, 1)

    engine.schedule(0.5, network.send, 2, 1, "EARLY", None)
    engine.schedule(1.5, network.send, 2, 1, "DURING", None)
    engine.schedule(2.5, network.send, 2, 1, "AFTER", None)
    engine.run_until_idle()

    types = [m.mtype for m in sink.received]
    assert types == ["EARLY", "AFTER"]
    assert [e.kind for e in injector.history] == ["crash", "recover"]
    assert [e.time for e in injector.history] == [1.0, 2.0]


def test_callbacks_invoked() -> None:
    engine = Engine()
    network = Network(engine, ZeroLatencyModel())
    network.attach(Sink(7))
    crashes: list[int] = []
    recoveries: list[int] = []
    injector = FailureInjector(
        network, on_crash=crashes.append, on_recover=recoveries.append
    )
    injector.crash_now(7)
    injector.recover_at(1.0, 7)
    engine.run_until_idle()
    assert crashes == [7]
    assert recoveries == [7]
