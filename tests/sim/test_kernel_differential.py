"""Differential tests: the wheel kernel vs the retained heap kernel.

The calendar-queue (timer-wheel) scheduler exists for speed; its contract
is that speed is the *only* observable difference.  Same seed, same
workload => bit-identical fire order, answers, and message counts under
either ``MOARA_SIM_KERNEL``.  These tests drive both kernels through:

* randomized engine workloads (post/schedule/cancel/batch), comparing
  the exact (time, label) fire sequence;
* full clusters under zero-latency and LAN models, comparing answers and
  per-type message counts;
* scenario campaigns with their online oracle (zero violations, equal
  message totals);

plus direct unit coverage of the wheel's own edges (far-future overflow,
cross-slot ordering, cursor re-anchoring, batch repackaging).
"""

from __future__ import annotations

import random

import pytest

from repro.core import MoaraCluster
from repro.sim import Engine
from repro.sim.engine import HeapEngine, WheelEngine
from repro.sim.latency import LANLatencyModel

KERNELS = ("heap", "wheel")


# ----------------------------------------------------------------------
# kernel selection / dispatch
# ----------------------------------------------------------------------


def test_default_kernel_is_wheel() -> None:
    assert Engine().kernel == "wheel"
    assert isinstance(Engine(), WheelEngine)


def test_explicit_kernel_dispatch() -> None:
    assert isinstance(Engine(kernel="heap"), HeapEngine)
    assert isinstance(Engine(kernel="wheel"), WheelEngine)
    assert Engine(kernel="heap").kernel == "heap"


def test_env_kernel_selection(monkeypatch) -> None:
    monkeypatch.setenv("MOARA_SIM_KERNEL", "heap")
    assert Engine().kernel == "heap"
    # An explicit constructor argument wins over the environment.
    assert Engine(kernel="wheel").kernel == "wheel"


def test_unknown_kernel_rejected() -> None:
    with pytest.raises(ValueError):
        Engine(kernel="splay")


def test_cluster_kernel_passthrough() -> None:
    cluster = MoaraCluster(4, seed=1, kernel="heap")
    assert cluster.engine.kernel == "heap"
    assert MoaraCluster(4, seed=1, kernel="wheel").engine.kernel == "wheel"


# ----------------------------------------------------------------------
# engine-level differential: randomized workloads fire identically
# ----------------------------------------------------------------------


def _random_workload(engine: Engine, seed: int) -> list[tuple[float, str]]:
    """Drive one engine through a randomized mixed workload.

    Mixes every scheduling surface: fire-and-forget posts (wheel fifo /
    ring), far-future posts (wheel overflow heap), cancellable handles
    (heap on both kernels), same-tick batches, and events that schedule
    more events and cancel others from inside callbacks.
    """
    rng = random.Random(seed)
    fired: list[tuple[float, str]] = []
    handles: list = []

    def note(label: str) -> None:
        fired.append((engine.now, label))
        # From inside a callback, occasionally schedule/cancel more work.
        roll = rng.random()
        if roll < 0.25:
            delay = rng.choice([0.0, 0.0003, 0.004, 7.5])
            engine.post_at(engine.now + delay, note, f"{label}/child")
        elif roll < 0.35 and handles:
            handles.pop(rng.randrange(len(handles))).cancel()

    for i in range(300):
        t = rng.choice([0.0, 0.0001, 0.001, 0.0025, 0.5, 3.0, 50.0])
        t += rng.randrange(4) * 0.001
        kind = rng.random()
        if kind < 0.4:
            engine.post_at(t, note, f"p{i}")
        elif kind < 0.6:
            engine.post1_at(t, note, f"q{i}")
        elif kind < 0.8:
            batch = engine.batch_list()
            for j in range(rng.randrange(1, 6)):
                batch.append(f"b{i}.{j}")
            engine.post_batch_at(t, note, batch)
        else:
            handles.append(engine.schedule_at(t, note, f"h{i}"))
    engine.run_until_idle(max_events=100_000)
    return fired


@pytest.mark.parametrize("seed", [7, 42, 1234])
def test_random_workload_fires_identically(seed: int) -> None:
    runs = {}
    for kernel in KERNELS:
        runs[kernel] = _random_workload(Engine(kernel=kernel), seed)
    assert runs["wheel"] == runs["heap"]
    assert len(runs["wheel"]) > 300  # children actually spawned


def test_identical_event_accounting() -> None:
    engines = {k: Engine(kernel=k) for k in KERNELS}
    for engine in engines.values():
        _random_workload(engine, seed=99)
    heap, wheel = engines["heap"], engines["wheel"]
    assert wheel.events_processed == heap.events_processed
    assert wheel.pending == heap.pending == 0
    assert wheel.now == heap.now


# ----------------------------------------------------------------------
# wheel-specific edges
# ----------------------------------------------------------------------


def test_far_future_overflows_to_heap_and_still_fires() -> None:
    engine = Engine(kernel="wheel")
    fired: list[str] = []
    # Far beyond the wheel horizon (2048 buckets * 1ms ~= 2s).
    engine.post_at(1_000.0, fired.append, "far")
    engine.post_at(0.5, fired.append, "near")
    engine.run_until_idle()
    assert fired == ["near", "far"]
    assert engine.now == 1_000.0


def test_cross_slot_ordering_with_ties() -> None:
    engine = Engine(kernel="wheel")
    fired: list[str] = []
    # Same bucket, different times, plus ties inserted out of order.
    for label, t in [("c", 0.0023), ("a", 0.0021), ("b", 0.0021)]:
        engine.post_at(t, fired.append, label)
    engine.run_until_idle()
    assert fired == ["a", "b", "c"]  # time order, then schedule order


def test_cursor_reanchors_after_idle_gap() -> None:
    engine = Engine(kernel="wheel")
    fired: list[str] = []
    engine.post_at(0.001, fired.append, "first")
    engine.run_until_idle()
    # Way past the original horizon: the wheel must re-anchor, not wrap.
    engine.post_at(10_000.0, fired.append, "second")
    engine.post_at(10_000.5, fired.append, "third")
    engine.run_until_idle()
    assert fired == ["first", "second", "third"]
    assert engine.now == 10_000.5


@pytest.mark.parametrize("kernel", KERNELS)
def test_batch_fires_in_insertion_order(kernel: str) -> None:
    engine = Engine(kernel=kernel)
    fired: list[str] = []
    batch = engine.batch_list()
    for i in range(5):
        batch.append(f"item{i}")
    engine.post_batch_at(1.0, fired.append, batch)
    engine.run_until_idle()
    assert fired == [f"item{i}" for i in range(5)]
    assert engine.events_processed == 5  # each item is one event


@pytest.mark.parametrize("kernel", KERNELS)
def test_batch_respects_mid_batch_event_budget(kernel: str) -> None:
    engine = Engine(kernel=kernel)
    fired: list[str] = []
    batch = engine.batch_list()
    for i in range(6):
        batch.append(f"item{i}")
    engine.post_batch_at(1.0, fired.append, batch)
    engine.run(max_events=4)
    assert engine.events_processed == 4
    assert fired == [f"item{i}" for i in range(4)]
    # The unfired tail survives and fires on the next drive.
    assert engine.pending == 2
    engine.run_until_idle()
    assert fired == [f"item{i}" for i in range(6)]


@pytest.mark.parametrize("kernel", KERNELS)
def test_pending_counts_batches_per_item(kernel: str) -> None:
    engine = Engine(kernel=kernel)
    batch = engine.batch_list()
    batch.extend(["x", "y", "z"])
    engine.post_batch_at(1.0, lambda _: None, batch)
    engine.post1_at(0.5, lambda _: None, None)
    assert engine.pending == 4


@pytest.mark.parametrize("kernel", KERNELS)
def test_request_stop_mid_batch(kernel: str) -> None:
    engine = Engine(kernel=kernel)
    fired: list[str] = []

    def stopping(label: str) -> None:
        fired.append(label)
        if label == "item1":
            engine.request_stop()

    batch = engine.batch_list()
    for i in range(4):
        batch.append(f"item{i}")
    engine.post_batch_at(1.0, stopping, batch)
    engine.run()
    # request_stop ends the run right after the in-flight item; the
    # unfired tail is repackaged at the front for the next drive.
    assert fired == ["item0", "item1"]
    assert engine.pending == 2
    engine.run()
    assert fired == [f"item{i}" for i in range(4)]


# ----------------------------------------------------------------------
# cluster-level differential: answers and message counts
# ----------------------------------------------------------------------


def _cluster_run(kernel: str, latency=None) -> tuple[list, dict, int]:
    cluster = MoaraCluster(64, seed=11, latency_model=latency, kernel=kernel)
    rng = random.Random(12)
    for name in ("A", "B"):
        cluster.set_group(name, rng.sample(cluster.node_ids, 12))
    queries = [
        "SELECT COUNT(*) WHERE A = true",
        "SELECT COUNT(*) WHERE B = true",
        "SELECT COUNT(*) WHERE A = true AND B = true",
        "SELECT COUNT(*) WHERE A = true OR B = true",
    ]
    values = []
    for text in queries * 3:
        values.append(cluster.query(text).value)
    values.extend(r.value for r in cluster.query_concurrent(queries * 5))
    snapshot = cluster.stats.snapshot()
    return values, snapshot.by_type, cluster.engine.events_processed


def test_cluster_differential_zero_latency() -> None:
    heap = _cluster_run("heap")
    wheel = _cluster_run("wheel")
    assert wheel == heap
    assert all(v is not None for v in wheel[0])


def test_cluster_differential_lan_latency() -> None:
    # LAN exercises the fused arrive+deliver path and non-zero delays
    # (wheel ring + overflow), not just the same-tick FIFO.
    heap = _cluster_run("heap", latency=LANLatencyModel(seed=5))
    wheel = _cluster_run("wheel", latency=LANLatencyModel(seed=5))
    assert wheel == heap


# ----------------------------------------------------------------------
# campaign-level differential: the online oracle sees no difference
# ----------------------------------------------------------------------


def _campaign_totals(monkeypatch, name: str, kernel: str) -> dict:
    from pathlib import Path

    from repro.campaigns import load_campaign, run_campaign

    monkeypatch.setenv("MOARA_SIM_KERNEL", kernel)
    root = Path(__file__).resolve().parents[2]
    spec = load_campaign(root / "campaigns" / f"{name}.yaml")
    report = run_campaign(spec, plane="sim")
    return report["totals"]


def test_smoke_campaign_differential(monkeypatch) -> None:
    totals = {
        k: _campaign_totals(monkeypatch, "smoke", k) for k in KERNELS
    }
    for kernel, row in totals.items():
        assert row["violations"] == 0, kernel
    assert totals["wheel"]["queries"] == totals["heap"]["queries"]
    assert totals["wheel"]["messages"] == totals["heap"]["messages"]


@pytest.mark.system
def test_flash_crowd_campaign_differential(monkeypatch) -> None:
    totals = {
        k: _campaign_totals(monkeypatch, "flash_crowd", k) for k in KERNELS
    }
    for kernel, row in totals.items():
        assert row["violations"] == 0, kernel
    assert totals["wheel"]["queries"] == totals["heap"]["queries"]
    assert totals["wheel"]["messages"] == totals["heap"]["messages"]


# ----------------------------------------------------------------------
# benchmark-level differential (subprocess: module-scale env knobs)
# ----------------------------------------------------------------------


def _bench_subprocess(code: str, kernel: str) -> dict:
    """Run a benchmark snippet in a clean interpreter under one kernel."""
    import json
    import os
    import subprocess
    import sys
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["MOARA_BENCH_TINY"] = "1"
    env["MOARA_SIM_KERNEL"] = kernel
    env["PYTHONPATH"] = f"{root / 'src'}:{root / 'benchmarks'}"
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        cwd=root,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


@pytest.mark.system
def test_tiny_scale_bench_differential() -> None:
    code = (
        "import json; from bench_scale import run_scale; "
        "print(json.dumps(run_scale()))"
    )
    rows = {k: _bench_subprocess(code, k) for k in KERNELS}
    for key in ("queries", "events", "msgs_per_query", "total_msgs"):
        assert rows["wheel"][key] == rows["heap"][key], key


@pytest.mark.system
def test_fig17_bench_differential() -> None:
    code = (
        "import json; from bench_fig17_throughput import _experiment; "
        "rows = _experiment(); "
        "print(json.dumps({m: {'msgs': rows[m]['total_msgs_per_query'], "
        "'qps': rows[m]['qps']} for m in rows}))"
    )
    rows = {k: _bench_subprocess(code, k) for k in KERNELS}
    assert rows["wheel"] == rows["heap"]
