"""Byte-accounting tests: message size estimation."""

from __future__ import annotations

from repro.core import MoaraCluster
from repro.sim.network import Message, estimate_size


def test_estimate_size_scalar_types() -> None:
    assert estimate_size(None) == 1
    assert estimate_size(True) == 1
    assert estimate_size(7) == 8
    assert estimate_size(3.14) == 8
    assert estimate_size("abcd") == 4
    assert estimate_size(b"abc") == 3


def test_estimate_size_containers_grow_with_content() -> None:
    small = estimate_size({"a": 1})
    large = estimate_size({"a": 1, "b": [1, 2, 3], "c": "hello"})
    assert large > small
    assert estimate_size([]) == 4
    assert estimate_size(frozenset({1, 2})) == 20


def test_message_size_includes_header() -> None:
    message = Message(mtype="X", src=1, dst=2, payload={})
    assert message.size >= 40  # header overhead
    bigger = Message(mtype="X", src=1, dst=2, payload={"blob": "x" * 100})
    assert bigger.size > message.size + 90


def test_query_bytes_scale_with_tree_size() -> None:
    """Larger broadcasts move proportionally more bytes (byte accounting
    is opt-in: counts-only clusters skip it for speed)."""
    costs = {}
    for num_nodes in (16, 64):
        cluster = MoaraCluster(num_nodes, seed=130, detailed_bytes=True)
        cluster.set_group("g", cluster.node_ids[:4])
        before = cluster.stats.total_bytes
        cluster.query("SELECT COUNT(*) WHERE g = true")  # first = broadcast
        costs[num_nodes] = cluster.stats.total_bytes - before
    assert costs[64] > 2 * costs[16]
