"""Unit tests for the simulated network."""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.sim import (
    Engine,
    LANLatencyModel,
    Message,
    MessageStats,
    Network,
    UniformLatencyModel,
    ZeroLatencyModel,
)


@dataclass
class Recorder:
    """A process that remembers everything it receives."""

    node_id: int
    received: list[Message] = field(default_factory=list)
    received_at: list[float] = field(default_factory=list)
    engine: Engine | None = None

    def handle_message(self, message: Message) -> None:
        self.received.append(message)
        if self.engine is not None:
            self.received_at.append(self.engine.now)


def make_net(
    model=None,
) -> tuple[Engine, Network, Recorder, Recorder]:
    engine = Engine()
    network = Network(engine, model or ZeroLatencyModel())
    a = Recorder(1, engine=engine)
    b = Recorder(2, engine=engine)
    network.attach(a)
    network.attach(b)
    return engine, network, a, b


def test_message_delivered(network: Network) -> None:
    a = Recorder(1)
    b = Recorder(2)
    network.attach(a)
    network.attach(b)
    network.send(1, 2, "PING", {"x": 42})
    network.engine.run_until_idle()
    assert len(b.received) == 1
    assert b.received[0].mtype == "PING"
    assert b.received[0].payload == {"x": 42}
    assert b.received[0].src == 1


def test_duplicate_attach_rejected(network: Network) -> None:
    network.attach(Recorder(1))
    with pytest.raises(ValueError):
        network.attach(Recorder(1))


def test_stats_count_messages(network: Network) -> None:
    a, b = Recorder(1), Recorder(2)
    network.attach(a)
    network.attach(b)
    for _ in range(5):
        network.send(1, 2, "QUERY")
    network.send(2, 1, "RESPONSE")
    network.engine.run_until_idle()
    stats = network.stats
    assert stats.total_messages == 6
    assert stats.by_type["QUERY"] == 5
    assert stats.by_type["RESPONSE"] == 1
    assert stats.sent_by_node[1] == 5
    assert stats.received_by_node[2] == 5
    # Counts-only default: message counts are exact, bytes are not tracked.
    assert stats.total_bytes == 0


def test_detailed_bytes_mode_tracks_bytes() -> None:
    engine = Engine()
    network = Network(engine, ZeroLatencyModel(), MessageStats(detailed_bytes=True))
    network.attach(Recorder(1))
    network.attach(Recorder(2))
    network.send(1, 2, "QUERY", {"blob": "x" * 100})
    engine.run_until_idle()
    assert network.stats.total_bytes > 100


def test_message_size_lazy_and_cached() -> None:
    engine = Engine()
    network = Network(engine, ZeroLatencyModel())  # counts-only stats
    network.attach(Recorder(1))
    network.attach(Recorder(2))
    message = network.send(1, 2, "QUERY", {"blob": "x" * 100})
    # Counts-only mode never walked the payload ...
    assert message._size is None
    # ... but the estimate is still available on demand, and cached.
    first = message.size
    assert first > 100
    assert message._size == first
    assert message.size == first


def test_tag_attribution_distinguishes_absent_from_falsy() -> None:
    engine = Engine()
    network = Network(engine, ZeroLatencyModel())
    network.attach(Recorder(1))
    network.attach(Recorder(2))
    network.send(1, 2, "QUERY", {"qid": "q1"})
    network.send(1, 2, "QUERY", {"qid": "q1"})
    # A falsy-but-present qid is attributed as-is, not misrouted to probe_id.
    network.send(1, 2, "QUERY", {"qid": "", "probe_id": "p9"})
    # An absent qid falls back to the probe tag.
    network.send(1, 2, "PROBE", {"probe_id": "p1"})
    stats = network.stats
    assert stats.tagged("q1") == 2
    assert stats.tagged("") == 1
    assert stats.tagged("p9") == 0
    assert stats.tagged("p1") == 1


def test_crashed_destination_drops(network: Network) -> None:
    a, b = Recorder(1), Recorder(2)
    network.attach(a)
    network.attach(b)
    network.crash(2)
    network.send(1, 2, "QUERY")
    network.engine.run_until_idle()
    assert b.received == []
    assert network.stats.dropped_messages == 1
    # The send itself is still counted: the bytes left node 1.
    assert network.stats.total_messages == 1


def test_crashed_source_cannot_send(network: Network) -> None:
    a, b = Recorder(1), Recorder(2)
    network.attach(a)
    network.attach(b)
    network.crash(1)
    network.send(1, 2, "QUERY")
    network.engine.run_until_idle()
    assert b.received == []


def test_recovery_restores_delivery(network: Network) -> None:
    a, b = Recorder(1), Recorder(2)
    network.attach(a)
    network.attach(b)
    network.crash(2)
    network.recover(2)
    network.send(1, 2, "QUERY")
    network.engine.run_until_idle()
    assert len(b.received) == 1


def test_is_alive_tracks_state(network: Network) -> None:
    network.attach(Recorder(1))
    assert network.is_alive(1)
    network.crash(1)
    assert not network.is_alive(1)
    network.recover(1)
    assert network.is_alive(1)
    assert not network.is_alive(99)


def test_wire_delay_applied() -> None:
    model = UniformLatencyModel(0.5, 0.5, seed=1)
    engine, network, a, b = make_net(model)
    network.send(1, 2, "PING")
    engine.run_until_idle()
    assert b.received_at == [pytest.approx(0.5)]


def test_latency_symmetric_and_stable() -> None:
    model = UniformLatencyModel(0.01, 0.2, seed=3)
    d1 = model.wire_delay(5, 9)
    assert model.wire_delay(9, 5) == d1
    assert model.wire_delay(5, 9) == d1
    assert model.wire_delay(5, 5) == 0.0


def test_fanout_serializes_at_sender() -> None:
    """A k-way fan-out should take ~k send service times."""
    model = LANLatencyModel(wire_low=0.0, wire_high=0.0, service_time=1.0)
    engine = Engine()
    network = Network(engine, model)
    sender = Recorder(0, engine=engine)
    network.attach(sender)
    receivers = []
    for i in range(1, 5):
        receiver = Recorder(i, engine=engine)
        network.attach(receiver)
        receivers.append(receiver)
    for receiver in receivers:
        network.send(0, receiver.node_id, "QUERY")
    engine.run_until_idle()
    arrival_times = sorted(r.received_at[0] for r in receivers)
    # Each send occupies the sender for 1s; receive service is 0.5s.
    assert arrival_times == [
        pytest.approx(1.5),
        pytest.approx(2.5),
        pytest.approx(3.5),
        pytest.approx(4.5),
    ]


def test_detach_removes_node(network: Network) -> None:
    network.attach(Recorder(1))
    network.detach(1)
    assert 1 not in network.node_ids
    network.attach(Recorder(1))  # can re-attach after detach


def test_live_node_ids(network: Network) -> None:
    network.attach(Recorder(1))
    network.attach(Recorder(2))
    network.crash(1)
    assert network.live_node_ids == [2]
    assert sorted(network.node_ids) == [1, 2]
