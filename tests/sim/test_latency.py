"""Unit tests for latency models."""

from __future__ import annotations

import pytest

from repro.sim import (
    LANLatencyModel,
    UniformLatencyModel,
    WANLatencyModel,
    ZeroLatencyModel,
)


def test_zero_model_is_free() -> None:
    model = ZeroLatencyModel()
    assert model.wire_delay(1, 2) == 0.0
    assert model.send_service_time(1) == 0.0
    assert model.receive_service_time(1) == 0.0
    assert model.rtt(1, 2) == 0.0


def test_uniform_range_respected() -> None:
    model = UniformLatencyModel(0.01, 0.05, seed=11)
    for a in range(10):
        for b in range(a + 1, 10):
            delay = model.wire_delay(a, b)
            assert 0.01 <= delay <= 0.05


def test_uniform_invalid_range() -> None:
    with pytest.raises(ValueError):
        UniformLatencyModel(-1.0, 2.0)
    with pytest.raises(ValueError):
        UniformLatencyModel(2.0, 1.0)


def test_uniform_seed_determinism() -> None:
    m1 = UniformLatencyModel(0.0, 1.0, seed=5)
    m2 = UniformLatencyModel(0.0, 1.0, seed=5)
    m3 = UniformLatencyModel(0.0, 1.0, seed=6)
    assert m1.wire_delay(1, 2) == m2.wire_delay(1, 2)
    assert m1.wire_delay(1, 2) != m3.wire_delay(1, 2)


def test_lan_service_dominates_wire() -> None:
    model = LANLatencyModel()
    assert model.send_service_time(1) > model.wire_delay(1, 2)


def test_wan_clusters_and_stragglers() -> None:
    nodes = list(range(100))
    model = WANLatencyModel(nodes, straggler_fraction=0.1, seed=2)
    assert len(model.stragglers) == 10
    for straggler in model.stragglers:
        # Jittered per message, but always far above the healthy baseline.
        samples = [model.send_service_time(straggler) for _ in range(20)]
        assert sum(samples) / len(samples) > 0.05
    normal = next(n for n in nodes if n not in model.stragglers)
    assert model.send_service_time(normal) < 0.01
    # Per-message jitter: consecutive samples differ for a straggler.
    straggler = next(iter(model.stragglers))
    samples = {model.send_service_time(straggler) for _ in range(5)}
    assert len(samples) > 1


def test_wan_intra_cluster_faster_than_inter() -> None:
    nodes = list(range(200))
    model = WANLatencyModel(nodes, num_clusters=4, seed=3)
    intra_delays, inter_delays = [], []
    for a in range(50):
        for b in range(a + 1, 50):
            delay = model.wire_delay(a, b)
            if model.cluster_of(a) == model.cluster_of(b):
                intra_delays.append(delay)
            else:
                inter_delays.append(delay)
    assert intra_delays and inter_delays
    assert max(intra_delays) <= 0.02
    assert min(inter_delays) >= 0.04


def test_wan_straggler_fraction_validation() -> None:
    with pytest.raises(ValueError):
        WANLatencyModel([1, 2, 3], straggler_fraction=1.5)


def test_rtt_is_sum_of_both_directions() -> None:
    model = UniformLatencyModel(0.1, 0.1, seed=0)
    assert model.rtt(1, 2) == pytest.approx(0.2)
