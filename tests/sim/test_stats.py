"""Unit tests for message accounting."""

from __future__ import annotations

import pytest

from repro.sim import MessageStats


def test_record_and_report() -> None:
    stats = MessageStats()
    stats.record_send(1, 2, "QUERY", 100)
    stats.record_send(2, 1, "RESPONSE", 50)
    stats.record_send(1, 3, "QUERY", 100)
    assert stats.total_messages == 3
    assert stats.total_bytes == 250
    assert stats.by_type == {"QUERY": 2, "RESPONSE": 1}
    assert stats.sent_by_node[1] == 2
    assert stats.received_by_node[1] == 1


def test_messages_per_node() -> None:
    stats = MessageStats()
    for _ in range(30):
        stats.record_send(1, 2, "X", 1)
    assert stats.messages_per_node(10) == 3.0
    with pytest.raises(ValueError):
        stats.messages_per_node(0)


def test_snapshot_is_immutable_copy() -> None:
    stats = MessageStats()
    stats.record_send(1, 2, "QUERY", 10)
    snap = stats.snapshot()
    stats.record_send(1, 2, "QUERY", 10)
    assert snap.total_messages == 1
    assert stats.total_messages == 2
    assert snap.by_type == {"QUERY": 1}


def test_delta_since() -> None:
    stats = MessageStats()
    stats.record_send(1, 2, "QUERY", 10)
    snap = stats.snapshot()
    stats.record_send(1, 2, "QUERY", 10)
    stats.record_send(3, 4, "UPDATE", 20)
    delta = stats.delta_since(snap)
    assert delta.total_messages == 2
    assert delta.total_bytes == 30
    assert delta.by_type == {"QUERY": 1, "UPDATE": 1}
    assert delta.sent_by_node == {1: 1, 3: 1}
    assert delta.received_by_node == {2: 1, 4: 1}


def test_snapshot_messages_of() -> None:
    stats = MessageStats()
    stats.record_send(1, 2, "QUERY", 1)
    stats.record_send(1, 2, "STATUS_UPDATE", 1)
    stats.record_send(1, 2, "STATUS_UPDATE", 1)
    snap = stats.snapshot()
    assert snap.messages_of("QUERY") == 1
    assert snap.messages_of("STATUS_UPDATE", "QUERY") == 3
    assert snap.messages_of("MISSING") == 0


def test_reset() -> None:
    stats = MessageStats()
    stats.record_send(1, 2, "QUERY", 10)
    stats.record_drop()
    stats.reset()
    assert stats.total_messages == 0
    assert stats.total_bytes == 0
    assert stats.dropped_messages == 0
    assert not stats.by_type
