"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim import Engine


def test_clock_starts_at_zero(engine: Engine) -> None:
    assert engine.now == 0.0
    assert engine.events_processed == 0


def test_events_fire_in_time_order(engine: Engine) -> None:
    fired: list[str] = []
    engine.schedule(2.0, fired.append, "late")
    engine.schedule(1.0, fired.append, "early")
    engine.schedule(3.0, fired.append, "latest")
    engine.run_until_idle()
    assert fired == ["early", "late", "latest"]
    assert engine.now == 3.0


def test_ties_break_by_schedule_order(engine: Engine) -> None:
    fired: list[int] = []
    for i in range(10):
        engine.schedule(1.0, fired.append, i)
    engine.run_until_idle()
    assert fired == list(range(10))


def test_negative_delay_rejected(engine: Engine) -> None:
    with pytest.raises(ValueError):
        engine.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected(engine: Engine) -> None:
    engine.schedule(1.0, lambda: None)
    engine.run_until_idle()
    with pytest.raises(ValueError):
        engine.schedule_at(0.5, lambda: None)


def test_cancelled_events_do_not_fire(engine: Engine) -> None:
    fired: list[str] = []
    handle = engine.schedule(1.0, fired.append, "cancelled")
    engine.schedule(2.0, fired.append, "kept")
    handle.cancel()
    engine.run_until_idle()
    assert fired == ["kept"]


def test_cancel_is_idempotent(engine: Engine) -> None:
    handle = engine.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    engine.run_until_idle()
    assert engine.events_processed == 0


def test_run_until_time_bound(engine: Engine) -> None:
    fired: list[float] = []
    for t in (1.0, 2.0, 3.0):
        engine.schedule(t, lambda t=t: fired.append(t))
    engine.run(until=2.0)
    assert fired == [1.0, 2.0]
    assert engine.now == 2.0
    engine.run()
    assert fired == [1.0, 2.0, 3.0]


def test_run_until_advances_clock_when_idle(engine: Engine) -> None:
    engine.run(until=5.0)
    assert engine.now == 5.0


def test_events_can_schedule_events(engine: Engine) -> None:
    fired: list[float] = []

    def chain(depth: int) -> None:
        fired.append(engine.now)
        if depth:
            engine.schedule(1.0, chain, depth - 1)

    engine.schedule(0.0, chain, 3)
    engine.run_until_idle()
    assert fired == [0.0, 1.0, 2.0, 3.0]


def test_run_until_predicate(engine: Engine) -> None:
    counter = {"n": 0}

    def tick() -> None:
        counter["n"] += 1
        engine.schedule(1.0, tick)

    engine.schedule(0.0, tick)
    assert engine.run_until(lambda: counter["n"] >= 5)
    assert counter["n"] == 5


def test_run_until_idle_guards_livelock(engine: Engine) -> None:
    def forever() -> None:
        engine.schedule(0.0, forever)

    engine.schedule(0.0, forever)
    with pytest.raises(RuntimeError):
        engine.run_until_idle(max_events=100)


def test_step_returns_false_when_empty(engine: Engine) -> None:
    assert engine.step() is False


def test_pending_excludes_cancelled(engine: Engine) -> None:
    h1 = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    assert engine.pending == 2
    h1.cancel()
    assert engine.pending == 1


def test_max_events_budget(engine: Engine) -> None:
    fired: list[int] = []
    for i in range(10):
        engine.schedule(float(i), fired.append, i)
    engine.run(max_events=4)
    assert fired == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# live-event counter, heap compaction, event-driven wake-ups
# ----------------------------------------------------------------------


def test_pending_counts_post_at_events(engine: Engine) -> None:
    engine.post_at(1.0, lambda: None)
    engine.post_at(2.0, lambda: None)
    engine.schedule(3.0, lambda: None)
    assert engine.pending == 3
    engine.step()
    assert engine.pending == 2
    engine.run_until_idle()
    assert engine.pending == 0


def test_pending_exact_through_cancel_and_fire(engine: Engine) -> None:
    handles = [engine.schedule(float(i + 1), lambda: None) for i in range(10)]
    for handle in handles[::2]:
        handle.cancel()
    assert engine.pending == 5
    # Cancelling after the event fired must not double-decrement.
    engine.run_until_idle()
    assert engine.pending == 0
    handles[1].cancel()
    assert engine.pending == 0


def test_compaction_drops_only_cancelled_events(engine: Engine) -> None:
    fired: list[int] = []
    keep = []
    cancelled = []
    # Enough entries to clear the compaction floor, then cancel a
    # majority so dead entries outnumber live ones.
    for i in range(200):
        handle = engine.schedule(float(i), fired.append, i)
        (keep if i % 4 == 0 else cancelled).append(handle)
    for handle in cancelled:
        handle.cancel()
    assert engine.compactions >= 1
    assert engine.pending == len(keep)
    # Every live event still fires, in the original time order, exactly
    # once -- compaction must never drop or reorder live work.
    engine.run_until_idle()
    assert fired == [i for i in range(200) if i % 4 == 0]


def test_compaction_preserves_tie_order(engine: Engine) -> None:
    fired: list[int] = []
    dead = []
    for i in range(300):
        handle = engine.schedule(1.0, fired.append, i)  # all tied at t=1
        if i % 3 != 0:
            dead.append(handle)
    for handle in dead:
        handle.cancel()
    assert engine.compactions >= 1
    engine.run_until_idle()
    assert fired == [i for i in range(300) if i % 3 == 0]


def test_compaction_inside_a_running_callback(engine: Engine) -> None:
    """Compacting from *within* an event callback (a handler cancelling
    timeouts mid-run) must not strand the run loop on a stale queue:
    events posted after the compaction still fire, in time order, within
    the same run."""
    fired: list[str] = []
    handles = []

    def burst() -> None:
        # Cancel a heap-majority of events while run() is iterating.
        for handle in handles:
            handle.cancel()
        assert engine.compactions >= 1
        # Work scheduled *after* the compaction, earlier than the
        # already-queued tail event, must still fire first.
        engine.post_at(engine.now, fired.append, "posted-after-compact")

    for _ in range(200):
        handles.append(engine.schedule(5.0, fired.append, "dead"))
    engine.schedule(0.0, burst)
    engine.schedule(9.0, fired.append, "tail")
    engine.run()
    assert fired == ["posted-after-compact", "tail"]
    assert engine.pending == 0
    assert engine.now == 9.0


def test_small_queues_are_never_compacted(engine: Engine) -> None:
    handles = [engine.schedule(1.0, lambda: None) for _ in range(10)]
    for handle in handles:
        handle.cancel()
    assert engine.compactions == 0
    engine.run_until_idle()
    assert engine.pending == 0


def test_request_stop_ends_run_after_current_event(engine: Engine) -> None:
    fired: list[int] = []

    def stopper() -> None:
        fired.append(0)
        engine.request_stop()

    engine.schedule(1.0, stopper)
    engine.schedule(2.0, fired.append, 1)
    engine.run()
    assert fired == [0]
    assert engine.pending == 1
    # The next run is unaffected by the consumed stop request.
    engine.run()
    assert fired == [0, 1]


def test_stale_request_stop_does_not_end_next_run(engine: Engine) -> None:
    engine.request_stop()  # nothing running: must not leak into run()
    fired: list[int] = []
    engine.schedule(1.0, fired.append, 0)
    engine.schedule(2.0, fired.append, 1)
    engine.run()
    assert fired == [0, 1]


def test_request_stop_with_time_bound(engine: Engine) -> None:
    fired: list[int] = []

    def stopper() -> None:
        fired.append(0)
        engine.request_stop()

    engine.schedule(1.0, stopper)
    engine.schedule(2.0, fired.append, 1)
    engine.run(until=10.0)
    assert fired == [0]
    assert engine.now == 1.0
