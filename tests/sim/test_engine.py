"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim import Engine


def test_clock_starts_at_zero(engine: Engine) -> None:
    assert engine.now == 0.0
    assert engine.events_processed == 0


def test_events_fire_in_time_order(engine: Engine) -> None:
    fired: list[str] = []
    engine.schedule(2.0, fired.append, "late")
    engine.schedule(1.0, fired.append, "early")
    engine.schedule(3.0, fired.append, "latest")
    engine.run_until_idle()
    assert fired == ["early", "late", "latest"]
    assert engine.now == 3.0


def test_ties_break_by_schedule_order(engine: Engine) -> None:
    fired: list[int] = []
    for i in range(10):
        engine.schedule(1.0, fired.append, i)
    engine.run_until_idle()
    assert fired == list(range(10))


def test_negative_delay_rejected(engine: Engine) -> None:
    with pytest.raises(ValueError):
        engine.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected(engine: Engine) -> None:
    engine.schedule(1.0, lambda: None)
    engine.run_until_idle()
    with pytest.raises(ValueError):
        engine.schedule_at(0.5, lambda: None)


def test_cancelled_events_do_not_fire(engine: Engine) -> None:
    fired: list[str] = []
    handle = engine.schedule(1.0, fired.append, "cancelled")
    engine.schedule(2.0, fired.append, "kept")
    handle.cancel()
    engine.run_until_idle()
    assert fired == ["kept"]


def test_cancel_is_idempotent(engine: Engine) -> None:
    handle = engine.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    engine.run_until_idle()
    assert engine.events_processed == 0


def test_run_until_time_bound(engine: Engine) -> None:
    fired: list[float] = []
    for t in (1.0, 2.0, 3.0):
        engine.schedule(t, lambda t=t: fired.append(t))
    engine.run(until=2.0)
    assert fired == [1.0, 2.0]
    assert engine.now == 2.0
    engine.run()
    assert fired == [1.0, 2.0, 3.0]


def test_run_until_advances_clock_when_idle(engine: Engine) -> None:
    engine.run(until=5.0)
    assert engine.now == 5.0


def test_events_can_schedule_events(engine: Engine) -> None:
    fired: list[float] = []

    def chain(depth: int) -> None:
        fired.append(engine.now)
        if depth:
            engine.schedule(1.0, chain, depth - 1)

    engine.schedule(0.0, chain, 3)
    engine.run_until_idle()
    assert fired == [0.0, 1.0, 2.0, 3.0]


def test_run_until_predicate(engine: Engine) -> None:
    counter = {"n": 0}

    def tick() -> None:
        counter["n"] += 1
        engine.schedule(1.0, tick)

    engine.schedule(0.0, tick)
    assert engine.run_until(lambda: counter["n"] >= 5)
    assert counter["n"] == 5


def test_run_until_idle_guards_livelock(engine: Engine) -> None:
    def forever() -> None:
        engine.schedule(0.0, forever)

    engine.schedule(0.0, forever)
    with pytest.raises(RuntimeError):
        engine.run_until_idle(max_events=100)


def test_step_returns_false_when_empty(engine: Engine) -> None:
    assert engine.step() is False


def test_pending_excludes_cancelled(engine: Engine) -> None:
    h1 = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    assert engine.pending == 2
    h1.cancel()
    assert engine.pending == 1


def test_max_events_budget(engine: Engine) -> None:
    fired: list[int] = []
    for i in range(10):
        engine.schedule(float(i), fired.append, i)
    engine.run(max_events=4)
    assert fired == [0, 1, 2, 3]
