"""End-to-end: the socket fleet answers exactly like the simulated plane.

Boots the real topology on localhost — overlay service, cache service,
two HTTP front-end servers, each in its own thread + event loop — runs
queries over HTTP/JSON, and holds the results against the one-process
simulated plane built from the identical seed: **byte-identical
values**, and the shared tier's one-wire-probe-per-group guarantee
measured on the overlay's own message ledger.
"""

from __future__ import annotations

import json

import pytest

from repro.core.cluster import MoaraCluster
from repro.serve.fleet import Fleet

# Boots real sockets and threads: system tier, not tier-1.
pytestmark = pytest.mark.system

NODES = 100
SEED = 17

QUERIES = [
    "SELECT COUNT(*) WHERE web = true",
    "SELECT COUNT(*) WHERE web = true OR db = true",
    "SELECT AVG(load) WHERE web = true AND db = true",
    "SELECT MAX(load) WHERE db = true",
    "SELECT SUM(load) WHERE web = true AND NOT db = true",
]


def _populate(cluster: MoaraCluster) -> None:
    ids = cluster.overlay.node_ids
    cluster.set_group("web", ids[:30])
    cluster.set_group("db", ids[20:55])
    cluster.set_attribute_all("load", 2.0)
    for nid in ids[:12]:
        cluster.set_attribute(nid, "load", 8.0)


@pytest.fixture(scope="module")
def fleet():
    backend = MoaraCluster(num_nodes=NODES, num_frontends=0, seed=SEED)
    _populate(backend)
    fleet = Fleet(backend, num_frontends=2, cache_service=True)
    with fleet:
        yield fleet


@pytest.fixture(scope="module")
def simulated():
    sim = MoaraCluster(num_nodes=NODES, num_frontends=2, seed=SEED)
    _populate(sim)
    return sim


def test_http_answers_are_byte_identical_to_the_simulated_plane(
    fleet, simulated
) -> None:
    for index, query in enumerate(QUERIES):
        shard = index % 2
        deployed = fleet.http_query(shard, query)
        reference = simulated.query(query)
        assert json.dumps(deployed["value"]) == json.dumps(
            reference.value
        ), query
        assert sorted(deployed["cover"]) == sorted(reference.cover), query
        assert deployed["contributors"] == reference.contributors, query


def test_one_wire_probe_per_group_cluster_wide(fleet) -> None:
    before = fleet.admin("stats")["stats"]["by_type"].get("SIZE_PROBE", 0)
    # Two fresh groups nobody has probed yet.
    ids = fleet.admin("members")["members"]
    fleet.admin("set_group", attr="probe_a", members=ids[:15])
    fleet.admin("set_group", attr="probe_b", members=ids[15:40])
    composite = "SELECT COUNT(*) WHERE probe_a = true OR probe_b = true"
    # Front-end 0 pays the probes (at most one per group)...
    first = fleet.http_query(0, composite)
    assert set(first["probed_costs"]) == {
        "(probe_a = true)",
        "(probe_b = true)",
    }
    # ...front-end 1 reads the same sizes through the shared tier and
    # sends no probe at all.
    second = fleet.http_query(1, composite)
    assert second["value"] == first["value"]
    after = fleet.admin("stats")["stats"]["by_type"].get("SIZE_PROBE", 0)
    assert after - before <= 2  # one per group, cluster-wide
    service = fleet.http(0, "GET", "/stats")[1]["cache_service"]
    assert service["publishes"] >= 2


def test_group_size_endpoint_cache_then_exact(fleet) -> None:
    status, fresh = fleet.http(0, "GET", "/groups/web/size")
    assert status == 200
    assert fresh["source"] in ("cache", "query")
    if fresh["source"] == "cache":
        assert fresh["exact"] is False
        assert fresh["size"] >= 30  # tree span bounds membership above
    # The exact path: a group no query has touched on this front-end.
    ids = fleet.admin("members")["members"]
    fleet.admin("set_group", attr="fresh_group", members=ids[:7])
    status, exact = fleet.http(1, "GET", "/groups/fresh_group/size")
    assert status == 200
    assert (exact["size"], exact["exact"]) == (7, True)


def test_http_error_contract(fleet) -> None:
    status, body = fleet.http(0, "POST", "/query", {"query": "SELEKT nope"})
    assert status == 400 and "error" in body
    status, body = fleet.http(0, "POST", "/query", {})
    assert status == 400
    status, body = fleet.http(0, "GET", "/nope")
    assert status == 404
    status, body = fleet.http(0, "GET", "/query")
    assert status == 405
    status, body = fleet.http(0, "GET", "/groups/no-such-attr-here/size")
    # Unknown attribute: every node answers false -> exact empty group.
    assert status == 200 and body["size"] == 0


def test_oversized_body_is_rejected_with_413(fleet) -> None:
    import socket

    with socket.create_connection(
        (fleet.host, fleet.http_ports[0]), timeout=5.0
    ) as conn:
        conn.sendall(
            b"POST /query HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n"
        )
        assert b"413" in conn.recv(1024).split(b"\r\n", 1)[0]


def test_healthz_and_stats_surface(fleet) -> None:
    status, health = fleet.http(0, "GET", "/healthz")
    assert status == 200
    assert health["overlay_connected"] is True
    assert health["overlay_nodes"] == NODES
    assert health["cache_service"] is True
    status, stats = fleet.http(0, "GET", "/stats")
    assert status == 200
    assert stats["shard"] == 0
    assert stats["queries_served"] >= 1
    assert stats["messages"]["total"] >= 1
    assert "plan_cache" in stats


def test_overlay_churn_reaches_remote_frontends(fleet) -> None:
    ids = fleet.admin("members")["members"]
    victim = ids[-1]
    fleet.admin("leave_node", node=victim)
    import time

    deadline = time.monotonic() + 3.0
    while time.monotonic() < deadline:
        nodes = fleet.http(0, "GET", "/healthz")[1]["overlay_nodes"]
        if nodes == NODES - 1:
            break
        time.sleep(0.02)
    assert fleet.http(0, "GET", "/healthz")[1]["overlay_nodes"] == NODES - 1
    assert fleet.http(1, "GET", "/healthz")[1]["overlay_nodes"] == NODES - 1
    # The shrunken overlay still answers correctly over HTTP.
    count = fleet.http_query(0, "SELECT COUNT(*) WHERE load > 0")
    assert count["value"] == NODES - 1
