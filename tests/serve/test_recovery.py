"""Self-healing fleet: components die and come back; queries keep working.

The acceptance test for the resilience layer on the *real* topology —
sockets, threads, event loops.  A cache-service restart and an
overlay-link reset must both be absorbed without manual intervention:
answers stay correct throughout (degraded mode for the cache, explicit
503s at worst for the overlay), and the links re-attach on their own
within a bounded number of breaker/backoff cycles.
"""

from __future__ import annotations

import time

import pytest

from repro.core.cluster import MoaraCluster
from repro.serve.fleet import Fleet

# Boots real sockets and threads: system tier, not tier-1.
pytestmark = pytest.mark.system

NODES = 60
SEED = 19
WEB = 18  # |web| below — COUNT(*) WHERE web = true must equal this
COUNT_WEB = "SELECT COUNT(*) WHERE web = true"


@pytest.fixture(scope="module")
def fleet():
    backend = MoaraCluster(num_nodes=NODES, num_frontends=0, seed=SEED)
    ids = backend.overlay.node_ids
    backend.set_group("web", ids[:WEB])
    backend.set_attribute_all("load", 4.0)
    fleet = Fleet(backend, num_frontends=2, cache_service=True)
    with fleet:
        yield fleet


def _await(check, timeout: float = 10.0, every: float = 0.05):
    """Poll ``check`` until it returns truthy or ``timeout`` elapses."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = check()
        if value:
            return value
        time.sleep(every)
    return check()


def test_queries_survive_a_cache_service_restart(fleet) -> None:
    # Warm the shared tier so the front-ends hold live RPC links to it.
    assert fleet.http_query(0, COUNT_WEB)["value"] == WEB
    assert fleet.http(0, "GET", "/stats")[1]["links"]["cache"]["state"] == (
        "connected"
    )

    fleet.restart_cache()

    # Every answer during and after the outage is correct: the cache
    # tier degrades (front-ends probe the wire themselves) but never
    # lies.  No restarts, no reconfiguration — the tier's breaker
    # half-opens, the revived RPC replays HELLO, and the link heals.
    def healed() -> bool:
        for shard in (0, 1):
            assert fleet.http_query(shard, COUNT_WEB)["value"] == WEB
        stats = fleet.http(0, "GET", "/stats")[1]
        return stats["links"]["cache"]["state"] == "connected"

    assert _await(healed), "cache link did not re-attach"
    # The fresh service relearned its shard set from the replayed HELLOs.
    service = fleet.http(0, "GET", "/stats")[1].get("cache_service")
    assert service is not None
    assert 0 in service["shards"]
    reconnects = fleet.http(0, "GET", "/stats")[1]["links"]["cache"][
        "reconnects"
    ]
    assert reconnects >= 1


def test_queries_survive_an_overlay_link_reset(fleet) -> None:
    assert fleet.http_query(0, COUNT_WEB)["value"] == WEB
    cut = fleet.reset_overlay_links()
    assert cut >= 2  # both front-ends at least (plus the cache service)

    # Pending work fails explicitly (503 + Retry-After), never silently;
    # the reconnect loop re-dials with jittered backoff and refreshes
    # the membership mirror.  Within the poll window both shards must be
    # answering correctly again with zero manual intervention.
    def recovered() -> bool:
        for shard in (0, 1):
            status, body = fleet.http(
                shard, "POST", "/query", {"query": COUNT_WEB}
            )
            if status == 503:
                assert body.get("error")
                return False
            assert status == 200
            assert body["value"] == WEB
        return True

    assert _await(recovered), "front-ends did not re-attach to the overlay"

    for shard in (0, 1):
        status, health = fleet.http(shard, "GET", "/healthz")
        assert status == 200
        assert health["overlay_link"] == "connected"
        assert health["overlay_nodes"] == NODES
    stats = fleet.http(0, "GET", "/stats")[1]
    assert stats["links"]["overlay"]["state"] == "connected"
    assert stats["links"]["overlay"]["reconnects"] >= 1
    assert stats["resilience"]["link_reconnects"] >= 1


def test_back_to_back_failures_still_converge(fleet) -> None:
    # The compound case: the cache restarts *and* every overlay session
    # is cut before the plane has healed from either.
    fleet.restart_cache()
    fleet.reset_overlay_links()

    def recovered() -> bool:
        for shard in (0, 1):
            status, body = fleet.http(
                shard, "POST", "/query", {"query": COUNT_WEB}
            )
            if status != 200:
                return False
            assert body["value"] == WEB
        stats = fleet.http(0, "GET", "/stats")[1]
        return (
            stats["links"]["overlay"]["state"] == "connected"
            and stats["links"]["cache"]["state"] == "connected"
        )

    assert _await(recovered, timeout=15.0), "fleet did not self-heal"
    # The ledger shows the journey: reconnects happened, answers never
    # regressed to wrong values above.
    resilience = fleet.http(0, "GET", "/stats")[1]["resilience"]
    assert resilience["link_reconnects"] >= 1
