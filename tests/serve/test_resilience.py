"""Unit tests for the resilience primitives.

RetryPolicy (full-jitter backoff), CircuitBreaker (closed → open →
half-open), and Deadline (budget arithmetic) are the shared vocabulary
of every self-healing link in the serve plane; these tests pin their
contracts in isolation, on fake clocks, with no sockets.
"""

from __future__ import annotations

import pytest

from repro.serve.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
)


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


def test_retry_delays_stay_inside_the_jitter_envelope() -> None:
    policy = RetryPolicy(base=0.1, max_delay=5.0, seed=42)
    for attempt in range(20):
        ceiling = min(5.0, 0.1 * (2**attempt))
        for _ in range(50):
            delay = policy.delay(attempt)
            assert 0.0 <= delay <= ceiling


def test_retry_ceiling_doubles_then_caps() -> None:
    policy = RetryPolicy(base=0.5, max_delay=4.0)
    assert policy.ceiling(0) == 0.5
    assert policy.ceiling(1) == 1.0
    assert policy.ceiling(2) == 2.0
    assert policy.ceiling(3) == 4.0
    assert policy.ceiling(10) == 4.0  # capped
    assert policy.ceiling(1000) == 4.0  # no overflow at huge attempts


def test_retry_is_deterministic_from_its_seed() -> None:
    a = [RetryPolicy(base=0.1, seed=7).delay(i) for i in range(10)]
    b = [RetryPolicy(base=0.1, seed=7).delay(i) for i in range(10)]
    c = [RetryPolicy(base=0.1, seed=8).delay(i) for i in range(10)]
    assert a == b
    assert a != c


def test_retry_attempts_generator_honours_max_attempts() -> None:
    policy = RetryPolicy(base=0.01, max_attempts=3, seed=1)
    assert len(list(policy.attempts())) == 3


def test_retry_attempts_generator_stops_at_the_deadline() -> None:
    clock = FakeClock()
    deadline = Deadline(expires_at=clock.t + 1.0, clock=clock)
    policy = RetryPolicy(base=0.1, seed=3)
    pauses = []
    for pause in policy.attempts(deadline=deadline):
        pauses.append(pause)
        clock.advance(0.4)
    # 1.0s budget / 0.4s per attempt => bounded, not infinite.
    assert 1 <= len(pauses) <= 4


def test_retry_env_knobs(monkeypatch: pytest.MonkeyPatch) -> None:
    monkeypatch.setenv("MOARA_SERVE_RETRY_BASE", "0.25")
    monkeypatch.setenv("MOARA_SERVE_RETRY_MAX_DELAY", "2.0")
    monkeypatch.setenv("MOARA_SERVE_RETRY_ATTEMPTS", "5")
    policy = RetryPolicy()
    assert policy.base == 0.25
    assert policy.max_delay == 2.0
    assert policy.max_attempts == 5


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


def test_breaker_trips_after_consecutive_failures() -> None:
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=3, reset_after=2.0, clock=clock)
    assert breaker.state == CircuitBreaker.CLOSED
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.trips == 1
    assert not breaker.allow()


def test_breaker_success_resets_the_failure_streak() -> None:
    breaker = CircuitBreaker(failure_threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED  # streak broken


def test_breaker_half_open_admits_exactly_one_probe() -> None:
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_after=2.0, clock=clock)
    breaker.record_failure()
    assert not breaker.allow()
    clock.advance(2.5)
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert breaker.allow()  # the probe
    assert not breaker.allow()  # everyone else still blocked


def test_breaker_probe_success_closes_it() -> None:
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_after=1.0, clock=clock)
    breaker.record_failure()
    clock.advance(1.5)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.allow()


def test_breaker_probe_failure_reopens_and_rearms_the_timer() -> None:
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_after=1.0, clock=clock)
    breaker.record_failure()
    clock.advance(1.5)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()  # timer re-armed
    clock.advance(1.5)
    assert breaker.allow()  # next probe window


def test_breaker_retry_after_counts_down() -> None:
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_after=2.0, clock=clock)
    assert breaker.retry_after() == 0.0
    breaker.record_failure()
    assert breaker.retry_after() == pytest.approx(2.0)
    clock.advance(1.5)
    assert breaker.retry_after() == pytest.approx(0.5)
    clock.advance(1.0)
    assert breaker.retry_after() == 0.0


def test_breaker_snapshot_shape() -> None:
    breaker = CircuitBreaker(failure_threshold=1)
    breaker.record_failure()
    snap = breaker.snapshot()
    assert snap["state"] == CircuitBreaker.OPEN
    assert snap["trips"] == 1
    assert snap["consecutive_failures"] == 1
    assert snap["retry_after"] > 0


def test_breaker_env_knobs(monkeypatch: pytest.MonkeyPatch) -> None:
    monkeypatch.setenv("MOARA_SERVE_BREAKER_FAILURES", "5")
    monkeypatch.setenv("MOARA_SERVE_BREAKER_RESET", "7.5")
    breaker = CircuitBreaker()
    assert breaker.failure_threshold == 5
    assert breaker.reset_after == 7.5


# ---------------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------------


def test_deadline_remaining_and_expiry() -> None:
    clock = FakeClock()
    deadline = Deadline.after(2.0, clock=clock)
    assert deadline.remaining() == pytest.approx(2.0)
    assert not deadline.expired
    clock.advance(1.5)
    assert deadline.remaining() == pytest.approx(0.5)
    clock.advance(1.0)
    assert deadline.expired
    assert deadline.remaining() == 0.0  # clamped, never negative


def test_deadline_caps_a_hop_timeout_to_the_remaining_budget() -> None:
    clock = FakeClock()
    deadline = Deadline.after(2.0, clock=clock)
    assert deadline.cap(5.0) == pytest.approx(2.0)  # budget binds
    assert deadline.cap(0.5) == pytest.approx(0.5)  # hop timeout binds
    clock.advance(3.0)
    assert deadline.cap(5.0) == 0.0


def test_deadline_exceeded_is_a_connection_error() -> None:
    # Callers already catch ConnectionError on every link; expiry rides
    # the same handling rather than inventing a parallel hierarchy.
    assert issubclass(DeadlineExceeded, ConnectionError)
