"""Ring daemon: shard membership, stable ids, and ~1/N remaps."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.shard_router import FrontendShardRouter
from repro.serve.fleet import ServiceThread
from repro.serve.ring_daemon import RingClient, RingDaemon

KEYS = [f"group-{i}" for i in range(400)]


# ----------------------------------------------------------------------
# router removal semantics (the consistent-hash contract the daemon
# relies on; no sockets involved)
# ----------------------------------------------------------------------


def test_remove_shard_remaps_only_its_keys() -> None:
    router = FrontendShardRouter(4)
    before = {key: router.shard_for(key) for key in KEYS}
    router.remove_shard(2)
    after = {key: router.shard_for(key) for key in KEYS}
    for key in KEYS:
        if before[key] != 2:
            assert after[key] == before[key], "unaffected key remapped"
        else:
            assert after[key] != 2
    moved = sum(1 for key in KEYS if before[key] != after[key])
    # Only shard 2's ~1/4 of the key space may move.
    assert moved == sum(1 for key in KEYS if before[key] == 2)


def test_readding_a_shard_restores_its_exact_arcs() -> None:
    router = FrontendShardRouter(4)
    before = {key: router.shard_for(key) for key in KEYS}
    router.remove_shard(1)
    router.add_shard(1)
    assert {key: router.shard_for(key) for key in KEYS} == before


def test_from_members_matches_incremental_construction() -> None:
    grown = FrontendShardRouter(3)
    rebuilt = FrontendShardRouter.from_members({0, 1, 2})
    assert all(
        grown.shard_for(key) == rebuilt.shard_for(key) for key in KEYS
    )


def test_empty_router_raises_not_asserts() -> None:
    router = FrontendShardRouter(1)
    router.remove_shard(0)
    with pytest.raises(ValueError):
        router.shard_for("anything")


# ----------------------------------------------------------------------
# the daemon over real sockets
# ----------------------------------------------------------------------


@pytest.fixture
def daemon():
    thread = ServiceThread("ring-daemon-test")
    daemon = RingDaemon(suspect_after=0.4, dead_after=5.0, tick=0.05)
    thread.call(daemon.start())
    yield daemon
    try:
        thread.call(daemon.close(), timeout=5.0)
    finally:
        thread.stop()


def _run(coro):
    return asyncio.run(coro)


def test_daemon_assigns_stable_ids_and_pushes_epochs(daemon) -> None:
    async def scenario():
        a = RingClient("127.0.0.1", daemon.port, "fe-a", heartbeat_every=0.1)
        b = RingClient("127.0.0.1", daemon.port, "fe-b", heartbeat_every=0.1)
        await a.start()
        await b.start()
        assert (a.shard, b.shard) == (0, 1)
        deadline = time.monotonic() + 3.0
        while len(a.router) < 2 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        assert a.router.members == {0, 1}
        assert b.router.members == {0, 1}
        # Same epoch -> same ring -> same routing everywhere.
        assert all(
            a.router.shard_for(key) == b.router.shard_for(key)
            for key in KEYS
        )
        # b leaves gracefully; a's ring shrinks to {0} within an epoch.
        await b.close()
        deadline = time.monotonic() + 3.0
        while len(a.router) > 1 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        assert a.router.members == {0}
        # b re-joins under the same name: same shard id.
        b2 = RingClient("127.0.0.1", daemon.port, "fe-b", heartbeat_every=0.1)
        await b2.start()
        assert b2.shard == 1
        await b2.close()
        await a.close()

    _run(scenario())


def test_daemon_suspects_silent_shards_and_remaps_one_nth(daemon) -> None:
    async def scenario():
        clients = []
        for i in range(3):
            client = RingClient(
                "127.0.0.1", daemon.port, f"fe-{i}", heartbeat_every=0.1
            )
            await client.start()
            clients.append(client)
        watcher = clients[0]
        deadline = time.monotonic() + 3.0
        while len(watcher.router) < 3 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        before = {key: watcher.router.shard_for(key) for key in KEYS}
        # Shard 2 goes silent (heartbeat task cancelled, link kept open so
        # there is no graceful leave): must be *suspected*.
        for task in clients[2]._tasks:
            task.cancel()
        deadline = time.monotonic() + 4.0
        while 2 in watcher.router.members and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        assert watcher.router.members == {0, 1}
        after = {key: watcher.router.shard_for(key) for key in KEYS}
        for key in KEYS:
            if before[key] != 2:
                assert after[key] == before[key]
        statuses = {m["name"]: m["status"] for m in watcher.members}
        assert statuses["fe-2"] == "suspect"
        for client in clients:
            await client.close()

    _run(scenario())
