"""LocalLoopback / LoopbackPlane: deployed shape, simulated answers.

The loopback plane is the deployed topology (front-ends behind a
transport seam, shared size tier, shard router) with the sockets removed.
These tests pin the tentpole claim: the *same* front-end code produces
*identical* answers through the deployed-shape transport as through the
simulated network.
"""

from __future__ import annotations

import json

import pytest

from repro.core.cluster import MoaraCluster
from repro.core.errors import QueryTimeoutError
from repro.serve.transport import LocalLoopback, LoopbackPlane
from repro.sim.network import FrontendTransport


def _backend(seed: int = 3, nodes: int = 80) -> MoaraCluster:
    cluster = MoaraCluster(num_nodes=nodes, num_frontends=0, seed=seed)
    ids = cluster.overlay.node_ids
    cluster.set_group("web", ids[: nodes // 4])
    cluster.set_group("db", ids[nodes // 6 : nodes // 2])
    cluster.set_attribute_all("load", 2.5)
    for nid in ids[:10]:
        cluster.set_attribute(nid, "load", 9.0)
    return cluster


def _simulated(seed: int = 3, nodes: int = 80) -> MoaraCluster:
    cluster = MoaraCluster(num_nodes=nodes, num_frontends=2, seed=seed)
    ids = cluster.overlay.node_ids
    cluster.set_group("web", ids[: nodes // 4])
    cluster.set_group("db", ids[nodes // 6 : nodes // 2])
    cluster.set_attribute_all("load", 2.5)
    for nid in ids[:10]:
        cluster.set_attribute(nid, "load", 9.0)
    return cluster


QUERIES = [
    "SELECT COUNT(*) WHERE web = true",
    "SELECT AVG(load) WHERE web = true AND db = true",
    "SELECT MAX(load) WHERE web = true OR db = true",
    "SELECT SUM(load) WHERE db = true AND NOT web = true",
]


def test_loopback_transport_satisfies_the_seam() -> None:
    plane = LoopbackPlane(_backend(), num_frontends=2)
    for transport in plane.transports:
        assert isinstance(transport, FrontendTransport)


def test_loopback_plane_matches_simulated_plane_exactly() -> None:
    plane = LoopbackPlane(_backend(), num_frontends=2)
    sim = _simulated()
    for query in QUERIES:
        deployed = plane.query(query)
        simulated = sim.query(query)
        # Byte-identical through JSON: same value, same cover.
        assert json.dumps(deployed.value) == json.dumps(simulated.value), query
        assert deployed.cover == simulated.cover, query
        assert deployed.contributors == simulated.contributors, query


def test_loopback_shares_subqueries_across_repeat_submissions() -> None:
    plane = LoopbackPlane(_backend(), num_frontends=2)
    first = plane.query(QUERIES[1])
    assert not first.shared
    # Identical concurrent queries: the repeats join the first's
    # execution and pay zero marginal messages.
    batch = plane.query_concurrent([QUERIES[1]] * 3)
    assert [r.value for r in batch] == [first.value] * 3
    assert sum(1 for r in batch if r.shared) == 2
    assert all(r.message_cost == 0 for r in batch if r.shared)


def test_loopback_one_wire_probe_per_group_cluster_wide() -> None:
    backend = _backend()
    plane = LoopbackPlane(backend, num_frontends=2)
    # Route one composite query to each front-end concurrently; both
    # need sizes for (web, db) but the plane may send at most one wire
    # probe per group in total.
    composite = [
        "SELECT COUNT(*) WHERE web = true OR db = true",
        "SELECT AVG(load) WHERE web = true AND db = true",
    ]
    shards = {plane.route(q) for q in composite}
    assert shards == {0, 1}, "queries must land on different shards"
    plane.query_concurrent(composite)
    assert backend.stats.by_type["SIZE_PROBE"] <= 2


def test_loopback_burst_counter_is_plane_wide() -> None:
    plane = LoopbackPlane(_backend(), num_frontends=2)
    t0, t1 = plane.transports
    assert t0.burst_seq == t1.burst_seq
    before = t0.burst_seq
    plane.query(QUERIES[0])
    assert t0.burst_seq > before
    assert t0.burst_seq == t1.burst_seq


def test_loopback_empty_batch_and_timeout_guard() -> None:
    plane = LoopbackPlane(_backend(), num_frontends=1)
    assert plane.query_concurrent([]) == []
    # A query whose completion is surgically removed must raise, not
    # spin: the plane goes idle with the qid still unresolved.
    frontend = plane.frontends[0]
    real_submit = frontend.submit
    qid_box = []

    def submit_and_orphan(query, callback=None):
        qid = real_submit(query, callback)
        qid_box.append(qid)
        frontend._pending_queries.pop(qid, None)
        return qid

    frontend.submit = submit_and_orphan  # type: ignore[method-assign]
    with pytest.raises(QueryTimeoutError):
        plane.query(QUERIES[0])


def test_loopback_membership_events_reach_the_frontend() -> None:
    backend = _backend()
    plane = LoopbackPlane(backend, num_frontends=1)
    seen: list[tuple[set, set]] = []
    original = plane.frontends[0].on_membership_change
    plane.frontends[0].on_membership_change = (  # type: ignore[method-assign]
        lambda joined, left: (seen.append((joined, left)), original(joined, left))[-1]
    )
    departed = backend.overlay.node_ids[-1]
    backend.leave_node(departed)
    plane.transports[0].pump()
    assert any(departed in left for _, left in seen)


def test_loopback_send_counts_in_private_ledger() -> None:
    backend = _backend()
    transport = LocalLoopback(backend, node_id=-1)
    target = backend.overlay.node_ids[0]
    transport.send(-1, target, "FRONTEND_QUERY", {"qid": "q-ledger"})
    assert transport.stats.total_messages == 1
    assert transport.stats.by_type["FRONTEND_QUERY"] == 1
    assert transport.stats.per_query["q-ledger"] == 1
