"""The standing-subscription HTTP endpoints, tested without sockets.

A :class:`FrontendServer` is assembled around a loopback front-end (the
deployed topology minus the wires), and ``_dispatch`` is driven
directly -- the same routing the asyncio server runs per request --
so these stay tier-1: no ports, no threads, no event-loop servers.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.cluster import MoaraCluster
from repro.serve.frontend_server import FrontendServer
from repro.serve.transport import LoopbackPlane

NUM_NODES = 24


class _Wire:
    """The minimum the handlers read off ``self.network``."""

    connected = True


@pytest.fixture
def plane():
    backend = MoaraCluster(NUM_NODES, seed=13, num_frontends=0)
    for index, node_id in enumerate(backend.node_ids):
        backend.set_attribute(node_id, "load", float(index % 8))
        backend.set_attribute(node_id, "svc", index % 3 == 0)
    backend.run_until_idle()
    return LoopbackPlane(backend, num_frontends=1)


@pytest.fixture
def server(plane):
    server = FrontendServer(overlay_addr=("127.0.0.1", 0))
    server.frontend = plane.frontends[0]
    server.network = _Wire()
    return server


def _quiesce(plane) -> None:
    while True:
        plane.backend.run_until_idle()
        if sum(t.pump() for t in plane.transports) == 0:
            if plane.backend.engine.pending == 0:
                return


def _dispatch(server, method, path, body=b""):
    return asyncio.run(server._dispatch(method, path, body))


def _subscribe(server, text, lease=0.0):
    status, payload = _dispatch(
        server,
        "POST",
        "/subscribe",
        json.dumps({"query": text, "lease": lease}).encode(),
    )
    assert status == 200, payload
    return payload


def test_subscribe_then_poll_updates(server, plane) -> None:
    sub = _subscribe(server, "SELECT COUNT(*) WHERE svc = true")
    assert sub["sid"] and sub["cover"] and not sub["static"]
    _quiesce(plane)
    status, payload = _dispatch(
        server, "GET", f"/subscriptions/{sub['sid']}/updates"
    )
    assert status == 200
    assert payload["active"] and not payload["expired"]
    assert payload["seq"] >= 1 and payload["updates"]
    first = payload["updates"][0]
    assert set(first) == {"seq", "value", "cover", "contributors", "latency"}
    assert payload["updates"][-1]["value"] == 8  # every third of 24 nodes


def test_updates_since_is_a_cursor(server, plane) -> None:
    sub = _subscribe(server, "SELECT SUM(load) WHERE svc = true")
    _quiesce(plane)
    _, page1 = _dispatch(
        server, "GET", f"/subscriptions/{sub['sid']}/updates"
    )
    cursor = page1["seq"]
    _, page2 = _dispatch(
        server, "GET", f"/subscriptions/{sub['sid']}/updates?since={cursor}"
    )
    assert page2["updates"] == []
    # New deltas advance the stream past the cursor.
    for node_id in plane.backend.node_ids[:3]:
        plane.backend.set_attribute(node_id, "load", 7.0)
    _quiesce(plane)
    _, page3 = _dispatch(
        server, "GET", f"/subscriptions/{sub['sid']}/updates?since={cursor}"
    )
    assert page3["updates"] and all(
        u["seq"] > cursor for u in page3["updates"]
    )


def test_unsubscribe_cancels_and_forgets(server, plane) -> None:
    sub = _subscribe(server, "SELECT COUNT(*) WHERE svc = true")
    _quiesce(plane)
    status, payload = _dispatch(
        server, "DELETE", f"/subscriptions/{sub['sid']}"
    )
    assert status == 200 and payload["cancelled"]
    _quiesce(plane)
    assert all(
        len(node.standing) == 0
        for node in plane.backend.nodes.values()
    )
    status, _ = _dispatch(server, "GET", f"/subscriptions/{sub['sid']}/updates")
    assert status == 404


def test_renew_endpoint(server, plane) -> None:
    sub = _subscribe(server, "SELECT COUNT(*) WHERE svc = true", lease=30.0)
    _quiesce(plane)
    status, payload = _dispatch(
        server,
        "POST",
        f"/subscriptions/{sub['sid']}/renew",
        json.dumps({"lease": 60.0}).encode(),
    )
    assert status == 200 and payload["lease"] == 60.0


def test_error_contract(server) -> None:
    # Bad body → 400.
    status, _ = _dispatch(server, "POST", "/subscribe", b"not json")
    assert status == 400
    status, _ = _dispatch(server, "POST", "/subscribe", b"{}")
    assert status == 400
    status, payload = _dispatch(
        server, "POST", "/subscribe",
        json.dumps({"query": "SELECT COUNT(*", "lease": 0}).encode(),
    )
    assert status == 400 and "kind" in payload
    # Unknown sid → 404 on every member of the family.
    for method, path in [
        ("GET", "/subscriptions/nope/updates"),
        ("POST", "/subscriptions/nope/renew"),
        ("DELETE", "/subscriptions/nope"),
    ]:
        status, _ = _dispatch(server, method, path)
        assert status == 404, (method, path)
    # Wrong method → 405.
    status, _ = _dispatch(server, "GET", "/subscribe")
    assert status == 405
    status, _ = _dispatch(server, "POST", "/subscriptions/nope")
    assert status == 405
    # Malformed cursor → 400 (needs a real sid).


def test_bad_since_is_a_400(server, plane) -> None:
    sub = _subscribe(server, "SELECT COUNT(*) WHERE svc = true")
    status, _ = _dispatch(
        server, "GET", f"/subscriptions/{sub['sid']}/updates?since=abc"
    )
    assert status == 400
