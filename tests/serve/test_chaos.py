"""ChaosTransport: scripted link faults on the loopback plane.

The contract under chaos (the same one the ``chaos_links`` campaign's
oracle enforces): the plane may answer slowly or return **explicitly
failed** results — never silently wrong answers, never a hang — and a
healed link serves correct answers again.  These tests drive each fault
kind in isolation, pin the mid-query link-kill satellite (a send on a
dead link must surface as a failed query, not a lost frame), and check
the failure path of :class:`RemoteNetwork` without any sockets.
"""

from __future__ import annotations

import json

from repro.core.cluster import MoaraCluster
from repro.serve.chaos import ChaosTransport, LinkFault
from repro.serve.transport import LoopbackPlane, RemoteNetwork
from repro.sim import network as simnet


def _backend(seed: int = 11, nodes: int = 60) -> MoaraCluster:
    cluster = MoaraCluster(num_nodes=nodes, num_frontends=0, seed=seed)
    ids = cluster.overlay.node_ids
    cluster.set_group("web", ids[: nodes // 4])
    cluster.set_attribute_all("load", 3.0)
    return cluster


def _chaos_plane(seed: int = 5, **kw) -> LoopbackPlane:
    return LoopbackPlane(_backend(**kw), num_frontends=2, chaos_seed=seed)


QUERY = "SELECT COUNT(*) WHERE web = true"
AVG = "SELECT AVG(load) WHERE web = true"


def test_chaos_wrappers_are_transparent_without_faults() -> None:
    plain = LoopbackPlane(_backend(), num_frontends=2)
    chaos = _chaos_plane()
    assert all(isinstance(t, ChaosTransport) for t in chaos.transports)
    for query in (QUERY, AVG):
        a, b = plain.query(query), chaos.query(query)
        assert json.dumps(a.value) == json.dumps(b.value)
        assert a.cover == b.cover
        assert not b.failed


def test_delay_fault_answers_slowly_but_correctly() -> None:
    reference = LoopbackPlane(_backend(), num_frontends=2).query(QUERY)
    plane = _chaos_plane()
    t0 = plane.backend.engine.now
    for transport in plane.transports:
        transport.inject(
            LinkFault("delay", delay=0.5, until=plane.backend.engine.now + 60)
        )
    result = plane.query(QUERY)
    assert not result.failed
    assert result.value == reference.value
    # The held frames forced the plane clock forward by at least one
    # round-trip's worth of injected latency.
    assert plane.backend.engine.now >= t0 + 0.5


def test_drop_fault_fails_explicitly_instead_of_hanging() -> None:
    plane = _chaos_plane()
    for transport in plane.transports:
        transport.inject(LinkFault("drop", p=1.0, direction="outbound"))
    result = plane.query(QUERY)
    assert result.failed
    # NULL resolution, not a fabricated answer: nothing contributed.
    assert result.contributors == 0
    assert result.failure
    assert any(t.drops > 0 for t in plane.transports)


def test_inbound_partition_eats_responses_and_fails_the_query() -> None:
    plane = _chaos_plane()
    for transport in plane.transports:
        transport.inject(LinkFault("partition", direction="inbound"))
    # Requests go out, every response is eaten: the query must resolve
    # as an explicit failure once the plane goes idle — never hang.
    result = plane.query(QUERY)
    assert result.failed


def test_reset_kills_in_flight_work_mid_query() -> None:
    # The transport.py satellite pin: a query whose frames are already
    # on the wire when the link dies resolves NULL *now*.  Delay holds
    # the outbound frames in flight; the reset then eats them.
    plane = _chaos_plane()
    shard = plane.route(QUERY)
    transport = plane.transports[shard]
    transport.inject(LinkFault("delay", delay=5.0, direction="outbound"))
    frontend = plane.frontends[shard]
    qid = frontend.submit(QUERY)
    assert transport.pending_release() is not None, "frames must be held"
    transport.reset_link(duration=1.0)
    transport.pump()
    assert qid in frontend.results
    result = frontend.results.pop(qid)
    assert result.failed
    assert "reset" in result.failure


def test_send_during_reset_window_fails_fast() -> None:
    plane = _chaos_plane()
    shard = plane.route(QUERY)
    transport = plane.transports[shard]
    transport.reset_link(duration=30.0)
    transport.pump()  # flush the reset's own failure event
    result = plane.query(QUERY)
    assert result.failed
    assert transport.stats.link_send_failures > 0


def test_duplicate_fault_keeps_answers_correct_and_is_accounted() -> None:
    reference = LoopbackPlane(_backend(), num_frontends=2).query(AVG)
    plane = _chaos_plane()
    for transport in plane.transports:
        transport.inject(LinkFault("duplicate", p=1.0))
    result = plane.query(AVG)
    assert not result.failed
    assert json.dumps(result.value) == json.dumps(reference.value)
    # The wire made copies and owned up to them (the probe-budget oracle
    # subtracts exactly these counts).
    assert sum(
        sum(t.dup_counts.values()) for t in plane.transports
    ) > 0


def test_faults_expire_and_the_link_heals() -> None:
    plane = _chaos_plane()
    transport = plane.transports[plane.route(QUERY)]
    transport.inject(
        LinkFault("drop", p=1.0, until=plane.backend.engine.now + 1.0)
    )
    first = plane.query(QUERY)
    assert first.failed
    plane.backend.engine.run(until=plane.backend.engine.now + 2.0)
    healed = plane.query(QUERY)
    assert not healed.failed
    reference = LoopbackPlane(_backend(), num_frontends=2).query(QUERY)
    assert healed.value == reference.value


def test_chaos_is_deterministic_from_its_seed() -> None:
    def run(seed: int) -> list[tuple[bool, object]]:
        plane = _chaos_plane(seed=seed)
        for transport in plane.transports:
            transport.inject(LinkFault("drop", p=0.5))
        out = []
        for _ in range(6):
            r = plane.query(QUERY)
            out.append((r.failed, r.value))
        return out

    assert run(9) == run(9)


def test_chaos_transport_satisfies_the_frontend_seam() -> None:
    plane = _chaos_plane()
    for transport in plane.transports:
        assert isinstance(transport, simnet.FrontendTransport)


# ---------------------------------------------------------------------------
# RemoteNetwork failure paths (no sockets)
# ---------------------------------------------------------------------------


class _RecordingFrontend:
    def __init__(self) -> None:
        self.failures: list[tuple[object, str]] = []

    def on_link_failure(self, tags, reason) -> None:
        self.failures.append((tags, reason))


def test_remote_network_send_on_dead_link_fails_the_query() -> None:
    # PR 6 lost this frame silently (the caller found out via HTTP
    # timeout); now the dead-writer send surfaces as a failed tag.
    net = RemoteNetwork("127.0.0.1", 1, node_id=-1, reconnect=False)
    frontend = _RecordingFrontend()
    net.attach(frontend)
    net.send(-1, 7, "FRONTEND_QUERY", {"qid": "q-dead"})
    # No event loop is running, so the failure lands synchronously.
    assert frontend.failures == [({"q-dead"}, "overlay link down")]
    assert net.stats.link_send_failures == 1
    assert net.stats.dropped_messages == 1


def test_remote_network_expired_deadline_refuses_the_send() -> None:
    from repro.serve.resilience import Deadline

    clock_t = [100.0]
    deadline = Deadline.after(1.0, clock=lambda: clock_t[0])
    clock_t[0] += 2.0
    net = RemoteNetwork("127.0.0.1", 1, node_id=-1, reconnect=False)
    frontend = _RecordingFrontend()
    net.attach(frontend)
    with net.deadline_scope(deadline):
        net.send(-1, 7, "SIZE_PROBE", {"probe_id": "p-late"})
    assert net.stats.deadline_expired == 1
    assert frontend.failures == [({"p-late"}, "end-to-end deadline exceeded")]
