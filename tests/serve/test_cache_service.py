"""Cache service: the shared-tier protocol over real TCP."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.serve.cache_service import CacheService, RemoteSizeTier
from repro.serve.fleet import ServiceThread
from repro.serve.protocol import SyncRpcChannel


@pytest.fixture
def service():
    thread = ServiceThread("cache-service-test")
    service = CacheService(ttl=60.0, join_window=5.0)
    thread.call(service.start())
    yield service
    try:
        thread.call(service.close(), timeout=5.0)
    finally:
        thread.stop()


def _rpc(service: CacheService, shard: int) -> SyncRpcChannel:
    channel = SyncRpcChannel("127.0.0.1", service.port)
    channel.connect()
    welcome = channel.request(
        {"kind": "hello", "mode": "rpc", "shard": shard}
    )
    assert welcome["kind"] == "welcome"
    return channel


def test_get_put_and_single_writer_rule(service) -> None:
    key = "(web = true)"
    shard_a, shard_b = 0, 1
    rpc_a, rpc_b = _rpc(service, shard_a), _rpc(service, shard_b)
    try:
        owner = service.tier.router.owner(key)
        non_owner = shard_b if owner == shard_a else shard_a
        rpc_owner = rpc_a if owner == shard_a else rpc_b
        rpc_other = rpc_b if owner == shard_a else rpc_a
        # Anyone may fill a cold entry.
        reply = rpc_other.request(
            {"kind": "put", "key": key, "cost": 60.0, "shard": non_owner}
        )
        assert reply["applied"] is True
        # A non-owner must NOT overwrite a live entry...
        reply = rpc_other.request(
            {"kind": "put", "key": key, "cost": 999.0, "shard": non_owner}
        )
        assert reply["applied"] is False
        # ...the owner may.
        reply = rpc_owner.request(
            {"kind": "put", "key": key, "cost": 70.0, "shard": owner}
        )
        assert reply["applied"] is True
        reply = rpc_a.request({"kind": "get", "key": key, "shard": shard_a})
        assert reply["cost"] == 70.0
        stats = rpc_a.request({"kind": "stats"})["stats"]
        assert stats["single_writer_drops"] == 1
        assert stats["entries"] == 1
    finally:
        rpc_a.close()
        rpc_b.close()


def test_probe_registry_pushes_resolution_to_joined_shard(service) -> None:
    key = "(db = true)"

    async def scenario():
        # Shard 1 keeps a subscription connection open (like a real
        # front-end); shard 0 is the prober and needs RPC only.
        tier1 = RemoteSizeTier("127.0.0.1", service.port, shard=1)
        await tier1.start()
        rpc0 = _rpc(service, 0)
        try:
            rpc0.request(
                {"kind": "open", "key": key, "shard": 0, "tag": "pr-1"}
            )
            # Shard 1 misses, finds shard 0's probe in flight, joins it.
            got: list = []
            joined = tier1.join_probe(
                key, 1, 0, lambda k, cost, now: got.append((k, cost))
            )
            assert joined is True
            # A shard never joins its own probe.
            reply = rpc0.request({"kind": "join", "key": key, "shard": 0})
            assert reply["joined"] is False
            # The prober resolves; shard 1's callback fires via the push.
            reply = rpc0.request(
                {"kind": "resolve", "key": key, "tag": "pr-1", "cost": 42.0}
            )
            assert reply["resolved"] is True
            deadline = time.monotonic() + 3.0
            while not got and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
            assert got == [(key, 42.0)]
            # The answer was force-published cluster-wide.
            assert tier1.get(key, 0.0, shard=1) == 42.0
            # A stale tag cannot resolve twice.
            reply = rpc0.request(
                {"kind": "resolve", "key": key, "tag": "pr-1", "cost": 7.0}
            )
            assert reply["resolved"] is False
        finally:
            rpc0.close()
            await tier1.close()

    asyncio.run(scenario())


def test_join_window_expires_stale_probes() -> None:
    thread = ServiceThread("cache-window-test")
    service = CacheService(ttl=60.0, join_window=0.05)
    thread.call(service.start())
    try:
        rpc0, rpc1 = _rpc(service, 0), _rpc(service, 1)
        try:
            rpc0.request(
                {"kind": "open", "key": "(g = true)", "shard": 0, "tag": "t"}
            )
            time.sleep(0.15)  # older than the join window
            reply = rpc1.request(
                {"kind": "join", "key": "(g = true)", "shard": 1}
            )
            assert reply["joined"] is False
        finally:
            rpc0.close()
            rpc1.close()
    finally:
        try:
            thread.call(service.close(), timeout=5.0)
        finally:
            thread.stop()


def test_remote_tier_degrades_to_private_behaviour_when_service_dies(
    service,
) -> None:
    async def scenario():
        tier = RemoteSizeTier("127.0.0.1", service.port, shard=0)
        await tier.start()
        assert tier.put("(k = true)", 10.0, 0.0, shard=0) is True
        assert tier.get("(k = true)", 0.0, shard=0) == 10.0
        # Sever the RPC link: every call must degrade, none may raise.
        tier.rpc.close()
        tier.rpc.port = 1  # nothing listens there
        tier.rpc.host = "127.0.0.1"
        assert tier.get("(k = true)", 0.0, shard=0) is None
        assert tier.put("(k = true)", 11.0, 0.0, shard=0) is False
        assert tier.join_probe("(k = true)", 0, 0, lambda *a: None) is False
        assert tier.resolve_probe("(k = true)", "t", 5.0, 0.0) is None
        tier.open_probe("(k = true)", 0, "t", 0)  # no-op, no raise
        await tier.close()

    asyncio.run(scenario())


def test_service_learns_shards_and_rebuilds_router(service) -> None:
    assert len(service.tier.router) == 0
    rpc5 = _rpc(service, 5)
    rpc9 = _rpc(service, 9)
    try:
        assert service.tier.router.members == {5, 9}
        # owner() now works over the learned membership.
        assert service.tier.router.owner("(x = true)") in {5, 9}
    finally:
        rpc5.close()
        rpc9.close()
