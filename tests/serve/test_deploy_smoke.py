"""deploy_smoke failure paths: port-collision retry on a fixed base port.

With ``--base-port 0`` (the default) the OS hands out free ephemeral
ports and nothing can collide; a *fixed* base port -- what CI pins for
stable artifact URLs -- can race a stale listener.  The retry loop in
``_boot_fleet`` must walk strided base ports past the collision, and
give up with the underlying ``OSError`` once every candidate is taken.
"""

from __future__ import annotations

import importlib.util
import socket
import sys
from pathlib import Path

import pytest

from repro.core.cluster import MoaraCluster

pytestmark = pytest.mark.system

SCRIPT = (
    Path(__file__).resolve().parent.parent.parent
    / "scripts"
    / "deploy_smoke.py"
)


@pytest.fixture(scope="module")
def deploy_smoke():
    spec = importlib.util.spec_from_file_location("deploy_smoke", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules["deploy_smoke"] = module
    spec.loader.exec_module(module)
    return module


def _occupy(port: int) -> socket.socket:
    holder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    holder.bind(("127.0.0.1", port))
    holder.listen(1)
    return holder


def _free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def test_boot_fleet_retries_past_an_occupied_base_port(
    deploy_smoke,
) -> None:
    backend = MoaraCluster(num_nodes=16, num_frontends=0, seed=2)
    base = _free_port()
    holder = _occupy(base)
    try:
        fleet = deploy_smoke._boot_fleet(backend, base)
        try:
            # The collision pushed the fleet one stride past the holder.
            assert fleet.http_ports[0] == base + deploy_smoke.PORT_STRIDE
            status, health = fleet.http(0, "GET", "/healthz")
            assert status == 200
        finally:
            fleet.close()
    finally:
        holder.close()


def test_boot_fleet_gives_up_when_every_base_port_is_taken(
    deploy_smoke,
) -> None:
    backend = MoaraCluster(num_nodes=16, num_frontends=0, seed=2)
    base = _free_port()
    holders = [
        _occupy(base + attempt * deploy_smoke.PORT_STRIDE)
        for attempt in range(deploy_smoke.PORT_RETRIES)
    ]
    try:
        with pytest.raises(OSError):
            deploy_smoke._boot_fleet(backend, base)
    finally:
        for holder in holders:
            holder.close()


def test_boot_fleet_auto_port_never_retries(deploy_smoke) -> None:
    backend = MoaraCluster(num_nodes=16, num_frontends=0, seed=2)
    fleet = deploy_smoke._boot_fleet(backend, 0)
    try:
        assert len(fleet.http_ports) == deploy_smoke.FRONTENDS
        assert all(port > 0 for port in fleet.http_ports)
    finally:
        fleet.close()
