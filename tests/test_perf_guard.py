"""perf_guard baseline handling: never silently reseed the trajectory.

Pins the satellite fix: a full-scale run whose committed
``BENCH_scale.json`` is missing or corrupt must error out (exit
non-zero) instead of quietly writing a fresh baseline -- a silent reseed
would turn a regression into the new normal.  ``--reseed`` makes
re-creation explicit; a missing *tiny* baseline stays fine (it is a CI
artifact, never committed).
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "perf_guard.py"


@pytest.fixture(scope="module")
def perf_guard():
    spec = importlib.util.spec_from_file_location("perf_guard", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules["perf_guard"] = module
    spec.loader.exec_module(module)
    return module


VALID = {
    "schema": 1,
    "tiny": False,
    "benchmarks": {"scale": {"wall_s": 1.0}},
}


def test_missing_full_baseline_is_an_error(perf_guard, tmp_path) -> None:
    with pytest.raises(perf_guard.BaselineError):
        perf_guard.resolve_baseline(
            tmp_path / "BENCH_scale.json", tiny=False, reseed=False
        )


def test_missing_tiny_baseline_just_seeds_one(perf_guard, tmp_path) -> None:
    assert (
        perf_guard.resolve_baseline(
            tmp_path / "BENCH_scale_tiny.json", tiny=True, reseed=False
        )
        is None
    )


def test_reseed_flag_allows_a_missing_full_baseline(
    perf_guard, tmp_path
) -> None:
    assert (
        perf_guard.resolve_baseline(
            tmp_path / "BENCH_scale.json", tiny=False, reseed=True
        )
        is None
    )


@pytest.mark.parametrize("tiny", [False, True])
def test_corrupt_baseline_is_an_error_at_either_scale(
    perf_guard, tmp_path, tiny
) -> None:
    path = tmp_path / "BENCH_scale.json"
    path.write_text("{not json")
    with pytest.raises(perf_guard.BaselineError):
        perf_guard.resolve_baseline(path, tiny=tiny, reseed=False)


def test_wrong_shape_counts_as_corrupt(perf_guard, tmp_path) -> None:
    path = tmp_path / "BENCH_scale.json"
    path.write_text(json.dumps([1, 2, 3]))
    with pytest.raises(perf_guard.BaselineError):
        perf_guard.resolve_baseline(path, tiny=False, reseed=False)
    path.write_text(json.dumps({"schema": 1}))  # no "benchmarks"
    with pytest.raises(perf_guard.BaselineError):
        perf_guard.resolve_baseline(path, tiny=False, reseed=False)


def test_reseed_flag_allows_replacing_a_corrupt_baseline(
    perf_guard, tmp_path
) -> None:
    path = tmp_path / "BENCH_scale.json"
    path.write_text("{not json")
    assert (
        perf_guard.resolve_baseline(path, tiny=False, reseed=True) is None
    )


def test_healthy_baseline_loads(perf_guard, tmp_path) -> None:
    path = tmp_path / "BENCH_scale.json"
    path.write_text(json.dumps(VALID))
    assert (
        perf_guard.resolve_baseline(path, tiny=False, reseed=False) == VALID
    )


def test_committed_baseline_is_healthy(perf_guard) -> None:
    """The repo's own trajectory file must satisfy the loader (otherwise
    every full-scale CI run would fail on a file we committed)."""
    committed = perf_guard.resolve_baseline(
        perf_guard.BENCH_FILE, tiny=False, reseed=False
    )
    assert committed is not None
    assert "benchmarks" in committed and not committed.get("tiny", False)


# ----------------------------------------------------------------------
# main(): end-to-end control flow with the benchmarks stubbed out
# ----------------------------------------------------------------------


def _stub_benchmarks(
    perf_guard,
    monkeypatch,
    campaign_violations=0,
    chaos_violations=0,
    standing_mismatches=0,
) -> None:
    """Replace the minutes-long benchmark functions with instant stubs."""
    rows = {
        "_time_fig17": {"wall_s": 1.0, "cached_msgs_per_query": 9.0},
        "_time_scale": {"wall_s": 2.0, "nodes": 1, "queries": 1,
                        "msgs_per_query": 1.0, "events_per_s": 1000.0},
        "_time_scale_100k": {"wall_s": 2.5, "nodes": 2, "queries": 1,
                             "msgs_per_query": 1.0,
                             "events_per_s": 900.0},
        "_time_shard_scaleout": {"wall_s": 3.0, "scaleout_x": 4.0},
        "_time_campaign": {
            "wall_s": 0.5,
            "campaign": "stub",
            "queries": 10,
            "messages": 100,
            "violations": campaign_violations,
            "p95_latency_sim": 0.0,
        },
        "_time_chaos": {
            "wall_s": 0.4,
            "campaign": "chaos-stub",
            "queries": 10,
            "failed_queries": 2,
            "violations": chaos_violations,
        },
        "_time_standing_churn": {
            "wall_s": 0.1,
            "standing_msgs": 30,
            "polling_msgs": 1000,
            "ratio": 0.03,
            "mismatches": standing_mismatches,
            "updates": 12,
        },
    }
    for name, row in rows.items():
        monkeypatch.setattr(perf_guard, name, lambda row=row: dict(row))


@pytest.fixture
def guarded_main(perf_guard, monkeypatch, tmp_path):
    """main() redirected at a tmp trajectory, benchmarks stubbed."""
    monkeypatch.setattr(perf_guard, "REPO_ROOT", tmp_path)
    monkeypatch.setattr(perf_guard, "BENCH_FILE", tmp_path / "BENCH.json")
    monkeypatch.setattr(
        perf_guard, "BENCH_FILE_TINY", tmp_path / "BENCH_tiny.json"
    )
    monkeypatch.delenv("MOARA_BENCH_TINY", raising=False)
    monkeypatch.setattr(sys, "argv", ["perf_guard.py"])
    return perf_guard


def test_main_records_all_seven_benchmarks(
    guarded_main, monkeypatch, tmp_path
) -> None:
    _stub_benchmarks(guarded_main, monkeypatch)
    guarded_main.BENCH_FILE.write_text(json.dumps(VALID))
    assert guarded_main.main() == 0
    record = json.loads(guarded_main.BENCH_FILE.read_text())
    assert sorted(record["benchmarks"]) == [
        "campaign",
        "chaos",
        "fig17_throughput",
        "scale",
        "scale_100k",
        "shard_scaleout",
        "standing_churn",
    ]
    assert record["benchmarks"]["campaign"]["violations"] == 0
    assert record["benchmarks"]["chaos"]["violations"] == 0
    assert record["benchmarks"]["standing_churn"]["mismatches"] == 0


def test_main_fails_hard_on_campaign_violations(
    guarded_main, monkeypatch, capsys
) -> None:
    _stub_benchmarks(guarded_main, monkeypatch, campaign_violations=3)
    guarded_main.BENCH_FILE.write_text(json.dumps(VALID))
    assert guarded_main.main() == 1
    out = capsys.readouterr().out
    assert "::error title=campaign invariants::" in out


def test_main_fails_hard_on_chaos_oracle_violations(
    guarded_main, monkeypatch, capsys
) -> None:
    # Explicit failures under chaos are expected and fine; a *violation*
    # (wrong answer, leaked in-flight state) fails the build.
    _stub_benchmarks(guarded_main, monkeypatch, chaos_violations=1)
    guarded_main.BENCH_FILE.write_text(json.dumps(VALID))
    assert guarded_main.main() == 1
    out = capsys.readouterr().out
    assert "'chaos-stub'" in out


def test_main_fails_hard_on_standing_mismatches(
    guarded_main, monkeypatch, capsys
) -> None:
    # The standing-churn run's answer differential is a correctness
    # gate, not a perf number: any folded-vs-centralized mismatch
    # fails the build.
    _stub_benchmarks(guarded_main, monkeypatch, standing_mismatches=2)
    guarded_main.BENCH_FILE.write_text(json.dumps(VALID))
    assert guarded_main.main() == 1
    out = capsys.readouterr().out
    assert "::error title=standing differential::" in out


def test_main_warns_on_wall_clock_regression_but_passes(
    guarded_main, monkeypatch, capsys
) -> None:
    _stub_benchmarks(guarded_main, monkeypatch)
    baseline = {
        "schema": 1,
        "tiny": False,
        "benchmarks": {"scale": {"wall_s": 0.1}},  # new stub says 2.0s
    }
    guarded_main.BENCH_FILE.write_text(json.dumps(baseline))
    assert guarded_main.main() == 0
    assert "::warning title=perf regression::" in capsys.readouterr().out


def test_main_warns_on_events_per_s_regression_but_passes(
    guarded_main, monkeypatch, capsys
) -> None:
    """Throughput is guarded directly: a steady-state events/s drop warns
    even when total wall clock looks fine (build noise can mask it)."""
    _stub_benchmarks(guarded_main, monkeypatch)
    baseline = {
        "schema": 1,
        "tiny": False,
        "benchmarks": {
            # stub reports wall_s=2.0 (no wall regression) but only
            # 1000 events/s against a 2000 events/s baseline: -50%.
            "scale": {"wall_s": 2.0, "events_per_s": 2000.0},
        },
    }
    guarded_main.BENCH_FILE.write_text(json.dumps(baseline))
    assert guarded_main.main() == 0
    out = capsys.readouterr().out
    assert "::warning title=perf regression::" in out
    assert "events/s" in out


def test_compare_tolerates_rows_without_events_per_s(guarded_main) -> None:
    """Older trajectory rows (pre-wheel) have no events_per_s key; the
    comparison must not warn or crash on them."""
    assert (
        guarded_main._compare(
            "scale",
            {"wall_s": 1.0, "events_per_s": 500.0},
            {"wall_s": 1.0},
            threshold=0.25,
        )
        == []
    )


def test_main_fails_fast_on_corrupt_baseline(
    guarded_main, monkeypatch
) -> None:
    """A broken trajectory file must error out before any benchmark
    burns minutes of CI time."""

    def exploding_benchmark() -> dict:
        raise AssertionError("benchmarks must not run on a corrupt baseline")

    for name in (
        "_time_fig17",
        "_time_scale",
        "_time_scale_100k",
        "_time_shard_scaleout",
        "_time_campaign",
        "_time_chaos",
        "_time_standing_churn",
    ):
        monkeypatch.setattr(guarded_main, name, exploding_benchmark)
    guarded_main.BENCH_FILE.write_text("{corrupt")
    assert guarded_main.main() == 2
