"""perf_guard baseline handling: never silently reseed the trajectory.

Pins the satellite fix: a full-scale run whose committed
``BENCH_scale.json`` is missing or corrupt must error out (exit
non-zero) instead of quietly writing a fresh baseline -- a silent reseed
would turn a regression into the new normal.  ``--reseed`` makes
re-creation explicit; a missing *tiny* baseline stays fine (it is a CI
artifact, never committed).
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "perf_guard.py"


@pytest.fixture(scope="module")
def perf_guard():
    spec = importlib.util.spec_from_file_location("perf_guard", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules["perf_guard"] = module
    spec.loader.exec_module(module)
    return module


VALID = {
    "schema": 1,
    "tiny": False,
    "benchmarks": {"scale": {"wall_s": 1.0}},
}


def test_missing_full_baseline_is_an_error(perf_guard, tmp_path) -> None:
    with pytest.raises(perf_guard.BaselineError):
        perf_guard.resolve_baseline(
            tmp_path / "BENCH_scale.json", tiny=False, reseed=False
        )


def test_missing_tiny_baseline_just_seeds_one(perf_guard, tmp_path) -> None:
    assert (
        perf_guard.resolve_baseline(
            tmp_path / "BENCH_scale_tiny.json", tiny=True, reseed=False
        )
        is None
    )


def test_reseed_flag_allows_a_missing_full_baseline(
    perf_guard, tmp_path
) -> None:
    assert (
        perf_guard.resolve_baseline(
            tmp_path / "BENCH_scale.json", tiny=False, reseed=True
        )
        is None
    )


@pytest.mark.parametrize("tiny", [False, True])
def test_corrupt_baseline_is_an_error_at_either_scale(
    perf_guard, tmp_path, tiny
) -> None:
    path = tmp_path / "BENCH_scale.json"
    path.write_text("{not json")
    with pytest.raises(perf_guard.BaselineError):
        perf_guard.resolve_baseline(path, tiny=tiny, reseed=False)


def test_wrong_shape_counts_as_corrupt(perf_guard, tmp_path) -> None:
    path = tmp_path / "BENCH_scale.json"
    path.write_text(json.dumps([1, 2, 3]))
    with pytest.raises(perf_guard.BaselineError):
        perf_guard.resolve_baseline(path, tiny=False, reseed=False)
    path.write_text(json.dumps({"schema": 1}))  # no "benchmarks"
    with pytest.raises(perf_guard.BaselineError):
        perf_guard.resolve_baseline(path, tiny=False, reseed=False)


def test_reseed_flag_allows_replacing_a_corrupt_baseline(
    perf_guard, tmp_path
) -> None:
    path = tmp_path / "BENCH_scale.json"
    path.write_text("{not json")
    assert (
        perf_guard.resolve_baseline(path, tiny=False, reseed=True) is None
    )


def test_healthy_baseline_loads(perf_guard, tmp_path) -> None:
    path = tmp_path / "BENCH_scale.json"
    path.write_text(json.dumps(VALID))
    assert (
        perf_guard.resolve_baseline(path, tiny=False, reseed=False) == VALID
    )


def test_committed_baseline_is_healthy(perf_guard) -> None:
    """The repo's own trajectory file must satisfy the loader (otherwise
    every full-scale CI run would fail on a file we committed)."""
    committed = perf_guard.resolve_baseline(
        perf_guard.BENCH_FILE, tiny=False, reseed=False
    )
    assert committed is not None
    assert "benchmarks" in committed and not committed.get("tiny", False)
