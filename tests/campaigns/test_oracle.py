"""Invariant checker unit tests (no campaign execution needed)."""

from __future__ import annotations

import pytest

from repro.campaigns.oracle import InvariantChecker, values_equal
from repro.campaigns.planes import SimPlane
from repro.campaigns.schema import OracleSpec
from repro.core.messages import SIZE_PROBE
from repro.core.parser import parse_query
from repro.core.query import QueryResult


@pytest.fixture(scope="module")
def plane() -> SimPlane:
    plane = SimPlane(8, seed=3, num_frontends=1)
    plane.set_group("g", plane.node_ids[:4])
    plane.quiesce()
    return plane


def _result(text: str, value, **kwargs) -> QueryResult:
    return QueryResult(query=parse_query(text), value=value, **kwargs)


# ----------------------------------------------------------------------
# values_equal
# ----------------------------------------------------------------------


def test_values_equal_numbers_with_float_noise() -> None:
    assert values_equal(0.1 + 0.2, 0.3)
    assert values_equal(4, 4.0)
    assert not values_equal(4, 5)
    assert not values_equal(True, 1.0000000001)  # bools stay exact


def test_values_equal_structures() -> None:
    assert values_equal([1.0, 2.0], (1.0, 2.0 + 1e-12))
    assert values_equal({"a": 0.1 + 0.2}, {"a": 0.3})
    assert not values_equal({"a": 1}, {"b": 1})
    assert values_equal(None, None)
    assert not values_equal(None, 0)


# ----------------------------------------------------------------------
# differential
# ----------------------------------------------------------------------


def test_differential_passes_on_true_answer(plane: SimPlane) -> None:
    checker = InvariantChecker(OracleSpec(sample_rate=1.0), plane)
    text = "SELECT COUNT(*) WHERE g = true"
    before = plane.stats.snapshot()
    results = plane.query_batch([text])
    checker.check_batch("p", [text], results, before, membership_stable=True)
    assert checker.violations == []
    assert checker.sampled == 1


def test_differential_flags_a_wrong_answer(plane: SimPlane) -> None:
    checker = InvariantChecker(OracleSpec(sample_rate=1.0), plane)
    text = "SELECT COUNT(*) WHERE g = true"
    before = plane.stats.snapshot()
    results = plane.query_batch([text])
    results[0].value = (results[0].value or 0) + 1  # inject the fault
    checker.check_batch("p", [text], results, before, membership_stable=True)
    assert [v["invariant"] for v in checker.violations] == ["differential"]
    assert checker.violations[0]["phase"] == "p"


def test_differential_skipped_when_membership_unstable(
    plane: SimPlane,
) -> None:
    checker = InvariantChecker(OracleSpec(sample_rate=1.0), plane)
    text = "SELECT COUNT(*) WHERE g = true"
    before = plane.stats.snapshot()
    results = plane.query_batch([text])
    results[0].value = 999
    checker.check_batch("p", [text], results, before, membership_stable=False)
    assert checker.violations == []
    assert checker.skipped_epoch == 1


# ----------------------------------------------------------------------
# staleness
# ----------------------------------------------------------------------


def test_staleness_within_ttl_is_tolerated(plane: SimPlane) -> None:
    checker = InvariantChecker(
        OracleSpec(check_differential=False), plane, result_cache_ttl=30.0
    )
    text = "SELECT COUNT(*) WHERE g = true"
    result = _result(text, 4, root_cached=True, cache_age=29.0)
    checker.check_batch("p", [text], [result], plane.stats.snapshot(), True)
    assert checker.violations == []


def test_staleness_beyond_ttl_is_flagged(plane: SimPlane) -> None:
    checker = InvariantChecker(
        OracleSpec(check_differential=False), plane, result_cache_ttl=30.0
    )
    text = "SELECT COUNT(*) WHERE g = true"
    result = _result(text, 4, root_cached=True, cache_age=31.0)
    checker.check_batch("p", [text], [result], plane.stats.snapshot(), True)
    assert [v["invariant"] for v in checker.violations] == ["staleness"]


def test_root_cached_answer_without_cache_is_a_violation(
    plane: SimPlane,
) -> None:
    checker = InvariantChecker(
        OracleSpec(check_differential=False), plane, result_cache_ttl=None
    )
    text = "SELECT COUNT(*) WHERE g = true"
    result = _result(text, 4, root_cached=True, cache_age=1.0)
    checker.check_batch("p", [text], [result], plane.stats.snapshot(), True)
    assert [v["invariant"] for v in checker.violations] == ["staleness"]


# ----------------------------------------------------------------------
# probe budget
# ----------------------------------------------------------------------


def test_probe_budget_flags_a_probe_storm(plane: SimPlane) -> None:
    checker = InvariantChecker(
        OracleSpec(check_differential=False, check_staleness=False), plane
    )
    text = "SELECT COUNT(*) WHERE g = true"
    before = plane.stats.snapshot()
    for _ in range(5):  # 5 wire probes for 1 distinct predicate attribute
        plane.stats.record_send(-1, 7, SIZE_PROBE, 0)
    checker.check_batch("p", [text, text, text], [], before, True)
    assert [v["invariant"] for v in checker.violations] == ["probes"]
    violation = checker.violations[0]
    assert violation["probes"] == 5
    assert violation["budget"] == 1


def test_probe_slack_raises_the_budget(plane: SimPlane) -> None:
    checker = InvariantChecker(
        OracleSpec(
            check_differential=False, check_staleness=False, probe_slack=4
        ),
        plane,
    )
    text = "SELECT COUNT(*) WHERE g = true"
    before = plane.stats.snapshot()
    for _ in range(5):
        plane.stats.record_send(-1, 7, SIZE_PROBE, 0)
    checker.check_batch("p", [text], [], before, True)
    assert checker.violations == []


# ----------------------------------------------------------------------
# in-flight leaks
# ----------------------------------------------------------------------


def test_clean_phase_boundary_has_no_leaks(plane: SimPlane) -> None:
    checker = InvariantChecker(OracleSpec(), plane)
    plane.query_batch(["SELECT COUNT(*) WHERE g = true"])
    plane.quiesce()
    checker.check_phase_end("p")
    assert checker.violations == []


def test_leaked_execution_is_flagged(plane: SimPlane) -> None:
    checker = InvariantChecker(OracleSpec(), plane)
    node = next(iter(plane.cluster.nodes.values()))
    node.inflight.open(("leaked", "execution"))
    try:
        checker.check_phase_end("p")
    finally:
        node.inflight.close(("leaked", "execution"))
    assert [v["invariant"] for v in checker.violations] == ["inflight"]
    assert checker.violations[0]["leaked"] == {"node_executions": 1}


def test_summary_counts_by_invariant(plane: SimPlane) -> None:
    checker = InvariantChecker(OracleSpec(), plane)
    checker._record("probes", {"phase": "p"})
    checker._record("probes", {"phase": "q"})
    checker._record("inflight", {"phase": "q"})
    summary = checker.summary()
    assert summary["violations"] == 3
    assert summary["by_invariant"] == {"probes": 2, "inflight": 1}
