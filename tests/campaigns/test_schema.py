"""Schema layer: strict validation, path-anchored errors, file loading."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaigns.schema import (
    CampaignSchemaError,
    all_schema_keys,
    campaign_from_dict,
    load_campaign,
)

REPO = Path(__file__).resolve().parent.parent.parent

yaml = pytest.importorskip("yaml", reason="campaign YAML needs PyYAML")


def _minimal(**overrides) -> dict:
    doc = {
        "name": "t",
        "nodes": 8,
        "phases": [
            {
                "name": "p",
                "duration": 5,
                "queries": [
                    {"text": "SELECT COUNT(*) WHERE g = true", "rate": 1.0}
                ],
            }
        ],
    }
    doc.update(overrides)
    return doc


def test_minimal_document_validates() -> None:
    spec = campaign_from_dict(_minimal())
    assert spec.name == "t"
    assert spec.nodes == 8
    assert len(spec.phases) == 1
    assert spec.phases[0].queries[0].arrival == "poisson"
    assert spec.oracle.check_differential


def test_defaults_are_filled() -> None:
    spec = campaign_from_dict(_minimal())
    assert spec.seed == 0
    assert spec.frontends == 2
    assert spec.latency == "zero"
    assert spec.batch_window == 1.0
    assert spec.oracle.sample_rate == 0.25


@pytest.mark.parametrize(
    "mutation, where",
    [
        ({"bogus_key": 1}, "bogus_key"),
        ({"latency": "carrier-pigeon"}, "latency"),
        ({"nodes": 0}, "nodes"),
        ({"phases": []}, "phase"),
        ({"node_config": {"no_such_knob": 1}}, "no_such_knob"),
        ({"frontend_config": {"no_such_knob": 1}}, "no_such_knob"),
        ({"oracle": {"sample_rate": 2.0}}, "sample_rate"),
    ],
)
def test_top_level_rejections(mutation: dict, where: str) -> None:
    with pytest.raises(CampaignSchemaError, match=where):
        campaign_from_dict(_minimal(**mutation))


def test_unknown_phase_key_names_the_path() -> None:
    doc = _minimal()
    doc["phases"][0]["surprise"] = True
    with pytest.raises(CampaignSchemaError, match=r"phases\[0\]"):
        campaign_from_dict(doc)


def test_query_needs_exactly_one_of_rate_or_count() -> None:
    doc = _minimal()
    doc["phases"][0]["queries"][0].pop("rate")
    with pytest.raises(CampaignSchemaError, match="rate"):
        campaign_from_dict(doc)
    doc["phases"][0]["queries"][0].update(rate=1.0, count=3)
    with pytest.raises(CampaignSchemaError, match="rate"):
        campaign_from_dict(doc)


def test_group_needs_exactly_one_of_size_or_fraction() -> None:
    for bad in ({"attr": "g"}, {"attr": "g", "size": 4, "fraction": 0.5}):
        with pytest.raises(CampaignSchemaError, match="size"):
            campaign_from_dict(_minimal(groups=[bad]))


def test_rack_failure_requires_rack() -> None:
    doc = _minimal()
    doc["phases"][0]["failures"] = [{"kind": "rack", "at": 1.0}]
    with pytest.raises(CampaignSchemaError, match="rack"):
        campaign_from_dict(doc)


def test_failure_past_phase_duration_is_rejected() -> None:
    doc = _minimal()
    doc["phases"][0]["failures"] = [{"kind": "crash", "at": 99.0}]
    with pytest.raises(CampaignSchemaError, match="duration"):
        campaign_from_dict(doc)


def test_load_campaign_json(tmp_path: Path) -> None:
    path = tmp_path / "c.json"
    path.write_text(json.dumps(_minimal()))
    assert load_campaign(path).name == "t"


def test_load_campaign_invalid_json(tmp_path: Path) -> None:
    path = tmp_path / "c.json"
    path.write_text("{nope")
    with pytest.raises(CampaignSchemaError, match="invalid JSON"):
        load_campaign(path)


def test_load_campaign_yaml(tmp_path: Path) -> None:
    path = tmp_path / "c.yaml"
    path.write_text(yaml.safe_dump(_minimal()))
    assert load_campaign(path).name == "t"


def test_load_campaign_invalid_yaml(tmp_path: Path) -> None:
    path = tmp_path / "c.yaml"
    path.write_text("name: [unclosed")
    with pytest.raises(CampaignSchemaError, match="invalid YAML"):
        load_campaign(path)


def test_every_shipped_campaign_validates() -> None:
    shipped = sorted((REPO / "campaigns").glob("*.yaml"))
    assert len(shipped) >= 6, "the campaign library went missing"
    names = {load_campaign(path).name for path in shipped}
    assert len(names) == len(shipped), "campaign names must be unique"
    expected = {
        "cascading_rack_failure",
        "chaos_links",
        "datacenter_rollout",
        "diurnal_load",
        "flash_crowd",
        "memory_pressure",
        "smoke",
        "standing_social",
        "write_heavy_churn",
    }
    assert names == expected


def test_schema_key_union_is_complete() -> None:
    keys = all_schema_keys()
    for expected in (
        "name",
        "phases",
        "batch_window",
        "arrival",
        "detection_delay",
        "sample_rate",
        "result_cache_eviction",
        "dedupe_probes",
        "standing",
        "cancel_at",
        "lease",
        "standing_replan_every",
    ):
        assert expected in keys
