"""System tier: full campaign runs on both planes, plus mutation checks.

The mutation tests are the oracle's own test suite: each one injects a
real fault into the system under test (wrong aggregation at the plane
boundary, a leaking in-flight table, a probe storm) and requires the
campaign run to *catch* it.  A campaign harness that stays green under
mutation isn't checking anything.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaigns import (
    CampaignRunner,
    SimPlane,
    campaign_from_dict,
    load_campaign,
    run_campaign,
)
from repro.core.plan_cache import SharedGroupSizeCache
from repro.core.result_cache import InflightTable

pytestmark = pytest.mark.system

REPO = Path(__file__).resolve().parent.parent.parent
SMOKE = REPO / "campaigns" / "smoke.yaml"

pytest.importorskip("yaml", reason="campaign YAML needs PyYAML")


def _strip_wall(report: dict) -> dict:
    return {key: value for key, value in report.items() if key != "wall_s"}


# ----------------------------------------------------------------------
# cross-plane runs
# ----------------------------------------------------------------------


def test_smoke_campaign_on_sim_plane() -> None:
    report = run_campaign(load_campaign(SMOKE), plane="sim")
    assert report["ok"], report["invariants"]
    assert report["totals"]["queries"] > 0
    assert [p["name"] for p in report["phases"]] == ["steady", "perturbed"]


def test_smoke_campaign_on_loopback_plane() -> None:
    report = run_campaign(load_campaign(SMOKE), plane="loopback")
    assert report["ok"], report["invariants"]
    assert report["plane"] == "loopback"


def test_reports_share_one_schema_across_planes() -> None:
    spec = load_campaign(SMOKE)
    sim = run_campaign(spec, plane="sim")
    loopback = run_campaign(spec, plane="loopback")
    assert sorted(sim) == sorted(loopback)
    assert sorted(sim["totals"]) == sorted(loopback["totals"])
    for sim_phase, loop_phase in zip(sim["phases"], loopback["phases"]):
        assert sorted(sim_phase) == sorted(loop_phase)
    # Same declarative scenario: identical workload volume either way.
    assert sim["totals"]["queries"] == loopback["totals"]["queries"]


def test_campaign_runs_are_deterministic() -> None:
    spec = load_campaign(SMOKE)
    first = _strip_wall(run_campaign(spec, plane="sim"))
    second = _strip_wall(run_campaign(spec, plane="sim"))
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )


def test_run_campaign_cli_writes_report(tmp_path: Path) -> None:
    out = tmp_path / "report.json"
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO / "scripts" / "run_campaign.py"),
            str(SMOKE),
            "--out",
            str(out),
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(out.read_text())
    assert report["schema"] == 1
    assert report["ok"]
    assert "status   : OK" in proc.stdout


# ----------------------------------------------------------------------
# mutation checks: injected faults must be caught
# ----------------------------------------------------------------------


def _mini_campaign(**overrides) -> dict:
    doc = {
        "name": "mutation",
        "nodes": 24,
        "seed": 9,
        "frontends": 2,
        "groups": [{"attr": "g", "size": 10}],
        "phases": [
            {
                "name": "only",
                "duration": 6,
                "queries": [
                    {"text": "SELECT COUNT(*) WHERE g = true", "rate": 2.0}
                ],
            }
        ],
        "oracle": {"sample_rate": 1.0},
    }
    doc.update(overrides)
    return doc


class _CorruptingPlane(SimPlane):
    """A plane whose aggregation is off by one -- the injected fault."""

    def query_batch(self, queries):
        results = super().query_batch(queries)
        for result in results:
            if isinstance(result.value, (int, float)) and not isinstance(
                result.value, bool
            ):
                result.value = result.value + 1
        return results


def test_campaign_catches_wrong_answers() -> None:
    spec = campaign_from_dict(_mini_campaign())
    plane = _CorruptingPlane(spec.nodes, seed=spec.seed, num_frontends=2)
    report = CampaignRunner(spec, plane).run()
    assert not report["ok"]
    assert report["invariants"]["by_invariant"].get("differential", 0) > 0


def test_campaign_catches_leaked_inflight_entries(monkeypatch) -> None:
    def leaky_close(self, key):
        execution = self._executions.get(key)  # never popped: the leak
        return list(execution.subscribers) if execution is not None else []

    monkeypatch.setattr(InflightTable, "close", leaky_close)
    # Distinct query texts throughout: a repeat of a "closed" query would
    # subscribe to the leaked entry and hang, which is not the invariant
    # under test here.
    doc = _mini_campaign(
        phases=[
            {
                "name": "only",
                "duration": 8,
                "queries": [
                    {
                        "text": "SELECT COUNT(*) WHERE g = true",
                        "count": 1,
                        "start": 0.0,
                        "stop": 2.0,
                    },
                    {
                        "text": "SELECT SUM(cpu) WHERE g = true",
                        "count": 1,
                        "start": 2.0,
                        "stop": 4.0,
                    },
                ],
            }
        ],
        attributes=[
            {"name": "cpu", "distribution": "uniform", "low": 0, "high": 9}
        ],
        oracle={"sample_rate": 0.0},
    )
    spec = campaign_from_dict(doc)
    report = run_campaign(spec, plane="sim")
    assert not report["ok"]
    assert report["invariants"]["by_invariant"].get("inflight", 0) > 0


def test_campaign_catches_probe_storms(monkeypatch) -> None:
    # Disable every probe-suppression layer: the shared size tier always
    # misses and never joins an in-flight probe, and the front-ends stop
    # deduping and sharing -- so each query of the batch probes for
    # itself, busting the one-wire-probe-per-attribute budget.
    monkeypatch.setattr(
        SharedGroupSizeCache, "get", lambda self, *a, **k: None
    )
    monkeypatch.setattr(
        SharedGroupSizeCache, "join_probe", lambda self, *a, **k: False
    )
    doc = _mini_campaign(
        groups=[{"attr": "a", "size": 8}, {"attr": "b", "size": 8}],
        frontend_config={
            "dedupe_probes": False,
            "share_subqueries": False,
            "piggyback_sizes": False,
        },
        phases=[
            {
                "name": "storm",
                "duration": 2,
                "queries": [
                    {
                        "text": "SELECT COUNT(*) WHERE a = true OR b = true",
                        "count": 6,
                    }
                ],
            }
        ],
        oracle={"sample_rate": 0.0, "check_inflight": False},
    )
    spec = campaign_from_dict(doc)
    report = run_campaign(spec, plane="sim")
    assert not report["ok"]
    assert report["invariants"]["by_invariant"].get("probes", 0) > 0


# ----------------------------------------------------------------------
# the memory-pressure knob: hot eviction must beat LRU
# ----------------------------------------------------------------------


def test_memory_pressure_campaign_hot_eviction_beats_lru() -> None:
    spec = load_campaign(REPO / "campaigns" / "memory_pressure.yaml")
    assert spec.node_config["result_cache_eviction"] == "hot"
    hot = run_campaign(spec, plane="sim")
    lru_config = dict(spec.node_config, result_cache_eviction="lru")
    lru_spec = type(spec)(**{**spec.__dict__, "node_config": lru_config})
    lru = run_campaign(lru_spec, plane="sim")
    assert hot["ok"] and lru["ok"]
    # The hot dashboard keeps its entry resident under "hot" eviction;
    # plain LRU lets the one-off scan queries evict it every cycle.
    assert hot["totals"]["root_cache_hits"] > lru["totals"]["root_cache_hits"]


# ----------------------------------------------------------------------
# the standing-query plane under a scripted social scenario
# ----------------------------------------------------------------------


def test_standing_campaign_on_both_planes() -> None:
    spec = load_campaign(REPO / "campaigns" / "standing_social.yaml")
    for plane in ("sim", "loopback"):
        report = run_campaign(spec, plane=plane)
        assert report["ok"], (plane, report["invariants"])
        assert report["invariants"]["standing_checked"] > 0
        totals = report["totals"]["standing"]
        assert totals["registered"] == 4
        assert totals["updates"] > 0
        assert totals["expired"] >= 1, "the never-renewed lease must lapse"
        assert totals["cancelled"] >= 1
        for phase in report["phases"]:
            assert "standing_active" in phase


def test_campaign_catches_corrupted_standing_folds(monkeypatch) -> None:
    """Mutation: a front-end that folds deltas into the wrong value must
    trip the ``standing`` invariant at the next quiesced checkpoint."""
    import dataclasses

    from repro.standing.manager import StandingQueryManager

    original = StandingQueryManager._fold

    def corrupt(self, sub, now):
        original(self, sub, now)
        seq, result = sub.handle.updates[-1]
        if isinstance(result.value, (int, float)):
            sub.handle.updates[-1] = (
                seq, dataclasses.replace(result, value=result.value + 17)
            )

    monkeypatch.setattr(StandingQueryManager, "_fold", corrupt)
    report = run_campaign(
        load_campaign(REPO / "campaigns" / "standing_social.yaml"),
        plane="sim",
    )
    assert not report["ok"]
    assert report["invariants"]["by_invariant"].get("standing", 0) > 0
