"""Smoke tests: the fast example scripts run end to end.

The slower, latency-model-heavy examples (planetlab_slices, dashboard,
adaptive_maintenance, datacenter_monitoring) are exercised indirectly by
the benchmarks that share their code paths; here we execute the quick ones
outright so a broken public API cannot ship.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_quickstart_runs(capsys) -> None:
    output = run_example("quickstart", capsys)
    assert "avg CPU over ServiceX nodes" in output
    assert "machines in the system      : 100" in output
    assert "after one node joins group  : count = 13" in output


def test_composite_queries_runs(capsys) -> None:
    output = run_example("composite_queries", capsys)
    assert "cover #0" in output
    assert "provably empty" in output
    assert "cover actually queried   : ['(small = true)']" in output
