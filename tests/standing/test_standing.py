"""Unit tests for the standing-query plane (repro.standing).

Covers the lifecycle contract documented in docs/STANDING_QUERIES.md:
register → deltas → cancel / lease expiry, the ordering contract
(monotone ``update_seq``), enmeshed OR-cover dedup, planner-degenerate
covers (global, unsatisfiable), churn (crash/join/leave) convergence,
and subscription-table hygiene (no leaks anywhere after teardown).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.baselines import centralized_answer
from repro.campaigns import values_equal
from repro.core import MoaraCluster

NUM_NODES = 30


def _live_stores(cluster: MoaraCluster):
    return [
        (node_id, node.attributes)
        for node_id, node in cluster.nodes.items()
        if node_id in cluster.overlay and cluster.network.is_alive(node_id)
    ]


def _assert_matches(cluster: MoaraCluster, handle) -> None:
    expected = centralized_answer(handle.query, _live_stores(cluster))
    assert values_equal(handle.current_value(), expected), handle.query.canonical()


def _node_leaks(cluster: MoaraCluster) -> dict:
    return {
        node_id: node.standing.sub_ids()
        for node_id, node in cluster.nodes.items()
        if len(node.standing)
    }


@pytest.fixture
def cluster() -> MoaraCluster:
    cluster = MoaraCluster(NUM_NODES, seed=11)
    for index, node_id in enumerate(cluster.node_ids):
        cluster.set_attribute(node_id, "load", float(index % 9))
        cluster.set_attribute(
            node_id, "dc", "east" if index % 3 == 0 else "west"
        )
    cluster.run_until_idle()
    return cluster


def test_register_folds_to_centralized_answer(cluster) -> None:
    frontend = cluster.frontends[0]
    handle = frontend.subscribe("SELECT COUNT(*) WHERE load >= 4")
    cluster.run_until_idle()
    assert handle.active and handle.update_seq >= 1
    _assert_matches(cluster, handle)


def test_attribute_churn_pushes_deltas(cluster) -> None:
    frontend = cluster.frontends[0]
    handle = frontend.subscribe("SELECT SUM(load) WHERE dc = 'east'")
    cluster.run_until_idle()
    seq_before = handle.update_seq
    for node_id in cluster.node_ids[:5]:
        cluster.set_attribute(node_id, "load", 7.5)
    cluster.run_until_idle()
    assert handle.update_seq > seq_before
    _assert_matches(cluster, handle)


def test_update_seq_is_strictly_monotone(cluster) -> None:
    frontend = cluster.frontends[0]
    handle = frontend.subscribe("SELECT AVG(load) WHERE dc = 'west'")
    for step in range(8):
        cluster.set_attribute(
            cluster.node_ids[step], "load", float(step * 2)
        )
        cluster.run_until_idle()
    seqs = [seq for seq, _ in handle.updates]
    assert seqs == sorted(set(seqs)), "update_seq must be strictly monotone"


def test_enmeshed_or_cover_deduplicates_contributions(cluster) -> None:
    # Nodes satisfying both disjuncts must contribute exactly once.
    frontend = cluster.frontends[0]
    handle = frontend.subscribe(
        "SELECT COUNT(*) WHERE dc = 'east' OR load >= 3"
    )
    cluster.run_until_idle()
    assert len(handle.cover) == 2
    _assert_matches(cluster, handle)


def test_global_group_cover(cluster) -> None:
    frontend = cluster.frontends[0]
    handle = frontend.subscribe("SELECT AVG(load)")
    cluster.run_until_idle()
    _assert_matches(cluster, handle)


def test_unsatisfiable_predicate_is_static(cluster) -> None:
    frontend = cluster.frontends[0]
    handle = frontend.subscribe(
        "SELECT COUNT(*) WHERE load < 2 AND load > 8"
    )
    cluster.run_until_idle()
    assert handle.static
    assert handle.current().short_circuited
    assert handle.current_value() == 0
    assert _node_leaks(cluster) == {}, "static handles install nothing"
    frontend.standing.cancel(handle)
    assert not handle.active


def test_cancel_clears_every_node_table(cluster) -> None:
    frontend = cluster.frontends[0]
    handle = frontend.subscribe("SELECT COUNT(*) WHERE dc = 'east'")
    cluster.run_until_idle()
    assert any(len(node.standing) for node in cluster.nodes.values())
    frontend.standing.cancel(handle)
    cluster.run_until_idle()
    assert not handle.active
    assert _node_leaks(cluster) == {}
    assert frontend.standing.active_sub_ids() == set()


def test_crash_and_join_converge(cluster) -> None:
    frontend = cluster.frontends[0]
    handle = frontend.subscribe(
        "SELECT SUM(load) WHERE dc = 'east' OR load > 5"
    )
    cluster.run_until_idle()
    for node_id in cluster.node_ids[3:6]:
        cluster.crash_node(node_id, detection_delay=0.5)
    cluster.run_until_idle()
    _assert_matches(cluster, handle)
    joined = cluster.join_node()
    cluster.set_attribute(joined, "dc", "east")
    cluster.set_attribute(joined, "load", 9.0)
    cluster.run_until_idle()
    _assert_matches(cluster, handle)


def test_graceful_leave_converges(cluster) -> None:
    frontend = cluster.frontends[0]
    handle = frontend.subscribe("SELECT COUNT(*) WHERE load >= 2")
    cluster.run_until_idle()
    for node_id in list(cluster.node_ids)[2:5]:
        if node_id != frontend.node_id:
            cluster.leave_node(node_id)
    cluster.run_until_idle()
    _assert_matches(cluster, handle)


def test_lease_expires_lazily_and_cleans_up(cluster) -> None:
    frontend = cluster.frontends[0]
    handle = frontend.subscribe("SELECT COUNT(*) WHERE load > 3", lease=5.0)
    cluster.run_until_idle()
    assert handle.active
    cluster.run(10.0)
    # Lazy enforcement: the root notices on its next standing message.
    for node_id in cluster.node_ids[:3]:
        cluster.set_attribute(node_id, "load", 8.0)
    cluster.run_until_idle()
    assert handle.expired and not handle.active
    assert _node_leaks(cluster) == {}
    assert cluster.stats.standing_expired >= 1


def test_renew_extends_the_lease(cluster) -> None:
    frontend = cluster.frontends[0]
    handle = frontend.subscribe("SELECT COUNT(*) WHERE load > 3", lease=5.0)
    cluster.run_until_idle()
    cluster.run(4.0)
    frontend.standing.renew(handle)
    cluster.run_until_idle()
    cluster.run(4.0)  # past the original deadline, inside the renewed one
    for node_id in cluster.node_ids[:3]:
        cluster.set_attribute(node_id, "load", 8.0)
    cluster.run_until_idle()
    assert handle.active and not handle.expired
    _assert_matches(cluster, handle)


def test_replan_switches_cover_and_stays_correct() -> None:
    cluster = MoaraCluster(NUM_NODES, seed=5)
    for index, node_id in enumerate(cluster.node_ids):
        cluster.set_attribute(node_id, "load", float(index % 9))
        cluster.set_attribute(
            node_id, "dc", "east" if index % 2 == 0 else "west"
        )
    cluster.run_until_idle()
    frontend = cluster.frontends[0]
    frontend.config = dataclasses.replace(
        frontend.config, standing_replan_every=4
    )
    handle = frontend.subscribe(
        "SELECT SUM(load) WHERE dc = 'east' AND load > 2"
    )
    cluster.run_until_idle()
    ids = cluster.node_ids
    for step in range(120):
        cluster.set_attribute(ids[(step * 7) % len(ids)], "load",
                              float((step * 3) % 9))
        if step % 10 == 0:
            cluster.run_until_idle()
    cluster.run_until_idle()
    assert cluster.stats.standing_replans >= 1
    _assert_matches(cluster, handle)
    frontend.standing.cancel(handle)
    cluster.run_until_idle()
    assert _node_leaks(cluster) == {}


def test_on_update_callback_fires(cluster) -> None:
    seen: list = []
    frontend = cluster.frontends[0]
    frontend.subscribe(
        "SELECT COUNT(*) WHERE dc = 'east'", on_update=seen.append
    )
    cluster.run_until_idle()
    assert seen, "registration pushes must produce at least one fold"
    assert seen[-1].value == centralized_answer(
        seen[-1].query, _live_stores(cluster)
    )


def test_standing_messages_stay_untagged(cluster) -> None:
    # Standing payloads carry sub_id, never qid: the per-query accounting
    # tags are drained by pop_tag at query completion, which standing
    # subscriptions never reach -- a tagged standing message would grow
    # per_query unboundedly.
    frontend = cluster.frontends[0]
    handle = frontend.subscribe("SELECT COUNT(*) WHERE dc = 'east'")
    cluster.run_until_idle()
    assert not cluster.stats.per_query, "standing traffic must be untagged"
    frontend.standing.cancel(handle)
    cluster.run_until_idle()
