"""Property-based differential testing of the standing-query plane.

Hypothesis generates churn schedules -- interleaved attribute writes,
group flips, crashes, joins, and graceful leaves -- and after every
quiesce the folded standing answers must equal the centralized
recompute over live membership (the campaign oracle's ``standing``
invariant), for several simultaneously registered enmeshed queries.
Teardown extends the PR 7 leak invariant to subscription tables: after
cancelling every handle, no node-side subscription entry survives on
any live node and no front-end considers anything active.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import centralized_answer
from repro.campaigns import values_equal
from repro.core import MoaraCluster

NUM_NODES = 24

QUERIES = [
    "SELECT COUNT(*) WHERE svc = true",
    "SELECT SUM(cpu) WHERE svc = true OR cpu >= 60",
    "SELECT AVG(cpu) WHERE svc = true AND cpu < 80",
    "SELECT MAX(cpu)",
]

#: one churn step: (kind, node-rank, value-rank)
_STEPS = st.lists(
    st.tuples(
        st.sampled_from(["write", "flip", "crash", "join", "leave"]),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=100),
    ),
    min_size=1,
    max_size=12,
)


def _live_stores(cluster: MoaraCluster):
    return [
        (node_id, node.attributes)
        for node_id, node in cluster.nodes.items()
        if node_id in cluster.overlay and cluster.network.is_alive(node_id)
    ]


def _live_ids(cluster: MoaraCluster) -> list[int]:
    return [
        node_id
        for node_id in cluster.node_ids
        if node_id in cluster.overlay and cluster.network.is_alive(node_id)
    ]


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=10_000), steps=_STEPS)
def test_folded_answers_track_centralized_under_generated_churn(
    seed: int, steps: list[tuple[str, int, int]]
) -> None:
    cluster = MoaraCluster(NUM_NODES, seed=31)
    rng = random.Random(f"standing-{seed}")
    for node_id in cluster.node_ids:
        cluster.set_attribute(node_id, "cpu", float(rng.randrange(0, 100)))
        cluster.set_attribute(node_id, "svc", rng.random() < 0.4)
    cluster.run_until_idle()

    frontends = cluster.frontends
    handles = [
        frontends[index % len(frontends)].subscribe(text)
        for index, text in enumerate(QUERIES)
    ]
    cluster.run_until_idle()

    frontend_ids = {fe.node_id for fe in frontends}
    for kind, node_rank, value_rank in steps:
        live = [n for n in _live_ids(cluster) if n not in frontend_ids]
        if kind == "write" and live:
            cluster.set_attribute(
                live[node_rank % len(live)], "cpu", float(value_rank)
            )
        elif kind == "flip" and live:
            node_id = live[node_rank % len(live)]
            current = bool(
                cluster.nodes[node_id].attributes.get("svc", False)
            )
            cluster.set_attribute(node_id, "svc", not current)
        elif kind == "crash" and len(live) > 3:
            cluster.crash_node(
                live[node_rank % len(live)],
                detection_delay=(value_rank % 3) * 0.25,
            )
        elif kind == "join":
            joined = cluster.join_node()
            cluster.set_attribute(joined, "cpu", float(value_rank))
            cluster.set_attribute(joined, "svc", value_rank % 2 == 0)
        elif kind == "leave" and len(live) > 3:
            cluster.leave_node(live[node_rank % len(live)])
        cluster.run_until_idle()
        # Quiesced checkpoint: folded == centralized for every handle.
        stores = _live_stores(cluster)
        for handle in handles:
            expected = centralized_answer(handle.query, stores)
            assert values_equal(handle.current_value(), expected), (
                handle.query.canonical(),
                handle.current_value(),
                expected,
            )

    # Teardown: the subscription-leak extension of the oracle invariant.
    for index, handle in enumerate(handles):
        frontends[index % len(frontends)].standing.cancel(handle)
    cluster.run_until_idle()
    for node_id, node in cluster.nodes.items():
        if node_id in cluster.overlay and cluster.network.is_alive(node_id):
            assert len(node.standing) == 0, (
                f"node {node_id} leaked {node.standing.sub_ids()}"
            )
    for fe in frontends:
        assert fe.standing.active_sub_ids() == set()
