"""Tests for the continuous (aggregate-on-write) SDIMS mode."""

from __future__ import annotations

import pytest

from repro.core.aggregation import get_function
from repro.sdims import ContinuousAggregationSystem


def test_sum_aggregates_continuously() -> None:
    system = ContinuousAggregationSystem(32, seed=1)
    system.install("load", get_function("sum"))
    for i, node_id in enumerate(system.node_ids):
        system.set_value(node_id, "load", float(i))
    system.settle()
    assert system.read("load") == sum(range(32))


def test_updates_refresh_the_root() -> None:
    system = ContinuousAggregationSystem(16, seed=2)
    system.install("x", get_function("max"))
    for node_id in system.node_ids:
        system.set_value(node_id, "x", 1.0)
    system.settle()
    assert system.read("x") == 1.0
    system.set_value(system.node_ids[3], "x", 99.0)
    system.settle()
    assert system.read("x") == 99.0


def test_reads_are_cheap_updates_are_not() -> None:
    """The trade-off Moara's design argues about: each write costs O(depth)
    messages, but reads are O(1)."""
    system = ContinuousAggregationSystem(64, seed=3)
    system.install("v", get_function("sum"))
    for node_id in system.node_ids:
        system.set_value(node_id, "v", 1.0)
    system.settle()
    write_messages = system.stats.total_messages
    assert write_messages >= 63  # at least one message per non-root node
    before = system.stats.total_messages
    for _ in range(10):
        system.read("v")
    assert system.stats.total_messages - before == 20  # 2 per read


def test_unchanged_partials_suppressed() -> None:
    system = ContinuousAggregationSystem(16, seed=4)
    system.install("x", get_function("max"))
    root = system.overlay.root(system.overlay.space.hash_name("x"))
    for node_id in system.node_ids:
        system.set_value(node_id, "x", 5.0)
    system.settle()
    before = system.stats.total_messages
    # Setting a smaller value on a non-root node cannot change any subtree
    # max, so (almost) no propagation should occur.
    victim = next(n for n in system.node_ids if n != root)
    system.set_value(victim, "x", 1.0)
    system.settle()
    assert system.stats.total_messages - before <= 1


def test_read_on_uninstalled_attribute_fails() -> None:
    system = ContinuousAggregationSystem(8, seed=5)
    with pytest.raises(KeyError):
        system.read("missing")
