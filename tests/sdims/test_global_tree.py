"""Tests for the SDIMS global-broadcast baseline."""

from __future__ import annotations

from repro.core import messages as mt
from repro.sdims import SDIMSCluster


def test_queries_are_correct() -> None:
    cluster = SDIMSCluster(64, seed=1)
    cluster.set_group("g", cluster.node_ids[:7])
    assert cluster.query("SELECT COUNT(*) WHERE g = true").value == 7


def test_every_query_is_a_global_broadcast() -> None:
    cluster = SDIMSCluster(64, seed=2)
    cluster.set_group("g", cluster.node_ids[:3])
    costs = []
    for _ in range(4):
        costs.append(cluster.query("SELECT COUNT(*) WHERE g = true").message_cost)
    for cost in costs:
        # query + response for all 64 nodes, plus front-end round trip
        assert cost >= 2 * 64
    # No adaptation: the cost never shrinks.
    assert max(costs) - min(costs) <= 2


def test_no_maintenance_traffic_ever() -> None:
    cluster = SDIMSCluster(64, seed=3)
    cluster.set_group("g", cluster.node_ids[:3])
    cluster.query("SELECT COUNT(*) WHERE g = true")
    for node_id in cluster.node_ids:
        cluster.set_attribute(node_id, "g", True)
    cluster.run_until_idle()
    assert cluster.stats.by_type.get(mt.STATUS_UPDATE, 0) == 0
    assert cluster.stats.by_type.get(mt.SIZE_PROBE, 0) == 0


def test_composite_queries_still_work() -> None:
    cluster = SDIMSCluster(48, seed=4)
    cluster.set_group("a", cluster.node_ids[:10])
    cluster.set_group("b", cluster.node_ids[5:20])
    result = cluster.query("SELECT COUNT(*) WHERE a = true AND b = true")
    assert result.value == 5
