"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.pastry import IdSpace, Overlay
from repro.sim import Engine, MessageStats, Network, ZeroLatencyModel


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def network(engine: Engine) -> Network:
    return Network(engine, ZeroLatencyModel(), MessageStats())


@pytest.fixture
def small_space() -> IdSpace:
    """The paper's Figure 3 configuration: 3-bit IDs, 1-bit digits."""
    return IdSpace(bits=3, digit_bits=1)


@pytest.fixture
def default_space() -> IdSpace:
    return IdSpace()


def build_overlay(num_nodes: int, seed: int = 0, space: IdSpace | None = None) -> Overlay:
    """Construct an overlay with ``num_nodes`` random distinct IDs."""
    overlay = Overlay(space or IdSpace())
    overlay.bulk_join(overlay.generate_ids(num_nodes, seed=seed))
    return overlay


@pytest.fixture
def overlay_64() -> Overlay:
    return build_overlay(64, seed=7)
