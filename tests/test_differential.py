"""Differential testing: Moara vs the baselines on identical workloads.

All three systems -- Moara (adaptive group trees), SDIMS (global broadcast
trees), and the centralized aggregator -- must return the *same answers*
for the same attribute population; they differ only in cost.  These tests
randomize attribute populations and query shapes and require answer
equality across systems, plus the expected cost ordering.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import CentralizedSystem, centralized_answer
from repro.campaigns import values_equal
from repro.core import MoaraCluster
from repro.sdims import SDIMSCluster

NUM_NODES = 48


def _populate(system, node_ids, seed: int) -> None:
    rng = random.Random(f"diff-{seed}")
    for rank, node_id in enumerate(node_ids):
        system.set_attribute(node_id, "cpu", float(rng.randrange(0, 100)))
        system.set_attribute(node_id, "svc", rng.random() < 0.4)
        system.set_attribute(node_id, "os", rng.choice(["Linux", "BSD"]))


QUERIES = [
    "SELECT COUNT(*) WHERE svc = true",
    "SELECT COUNT(*) WHERE cpu >= 50",
    "SELECT SUM(cpu) WHERE svc = true AND cpu < 80",
    "SELECT MAX(cpu) WHERE os = 'Linux' OR svc = true",
    "SELECT AVG(cpu) WHERE NOT os = 'BSD'",
    "SELECT COUNT(*)",
]


@settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_all_three_systems_agree(seed: int) -> None:
    moara = MoaraCluster(NUM_NODES, seed=104)
    sdims = SDIMSCluster(NUM_NODES, seed=104)
    central = CentralizedSystem(NUM_NODES, seed=104)
    _populate(moara, moara.node_ids, seed)
    _populate(sdims, sdims.node_ids, seed)
    _populate(central, central.node_ids, seed)
    for text in QUERIES:
        values = [
            moara.query(text).value,
            sdims.query(text).value,
            central.query(text).value,
        ]
        floats = [v for v in values if isinstance(v, float)]
        if len(floats) == 3:
            assert values[1] == pytest.approx(values[0])
            assert values[2] == pytest.approx(values[0])
        else:
            assert values[0] == values[1] == values[2], text


def test_cost_ordering_on_small_groups() -> None:
    """For a small group and repeated queries: Moara < SDIMS ~= Central."""
    moara = MoaraCluster(96, seed=105)
    sdims = SDIMSCluster(96, seed=105)
    central = CentralizedSystem(96, seed=105)
    for system in (moara, sdims):
        system.set_group("g", system.node_ids[:6])
    for node_id in central.node_ids[:6]:
        central.set_attribute(node_id, "g", True)
    for node_id in central.node_ids[6:]:
        central.set_attribute(node_id, "g", False)

    text = "SELECT COUNT(*) WHERE g = true"
    for _ in range(6):  # converge Moara's tree
        moara.query(text)
    moara_cost = moara.query(text).message_cost
    sdims_cost = sdims.query(text).message_cost
    central_cost = central.query(text).message_cost
    assert moara.query(text).value == 6
    assert moara_cost * 4 < sdims_cost
    assert moara_cost * 4 < central_cost
    # Broadcast and centralized costs are both ~2N.
    assert abs(sdims_cost - central_cost) < central_cost


# ----------------------------------------------------------------------
# property-based differential suite: generated queries under generated
# churn, Moara vs the zero-message centralized oracle
# ----------------------------------------------------------------------

_AGGREGATES = [
    "COUNT(*)",
    "SUM(cpu)",
    "AVG(cpu)",
    "MIN(cpu)",
    "MAX(cpu)",
    "SUM(mem)",
]
_ATOMS = [
    "svc = true",
    "web = true",
    "cpu >= 50",
    "cpu < 30",
    "os = 'Linux'",
    "NOT web = true",
]


@st.composite
def _query_texts(draw) -> str:
    """A generated query: any aggregate over a 1-3 atom predicate.

    Multi-atom predicates exercise the composite planner (cover
    selection, size probes); single atoms exercise plain group trees.
    """
    aggregate = draw(st.sampled_from(_AGGREGATES))
    atoms = draw(
        st.lists(st.sampled_from(_ATOMS), min_size=1, max_size=3, unique=True)
    )
    op = draw(st.sampled_from([" AND ", " OR "]))
    return f"SELECT {aggregate} WHERE {op.join(atoms)}"


def _oracle_answer(cluster: MoaraCluster, text: str):
    return centralized_answer(
        text,
        [
            (node_id, node.attributes)
            for node_id, node in cluster.nodes.items()
            if node_id in cluster.overlay
        ],
    )


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    population_seed=st.integers(min_value=0, max_value=10_000),
    queries=st.lists(_query_texts(), min_size=1, max_size=4, unique=True),
    churn_rounds=st.integers(min_value=0, max_value=3),
    churn_seed=st.integers(min_value=0, max_value=10_000),
)
def test_moara_matches_oracle_under_random_churn(
    population_seed: int,
    queries: list[str],
    churn_rounds: int,
    churn_seed: int,
) -> None:
    """Seeded property: for ANY generated query set and ANY random churn
    schedule, a quiesced Moara plane answers exactly like the
    centralized oracle.  Failures shrink to a minimal (seed, queries,
    rounds) triple that reproduces deterministically."""
    cluster = MoaraCluster(32, seed=108, num_frontends=2)
    rng = random.Random(f"prop-{population_seed}")
    for node_id in cluster.node_ids:
        cluster.set_attribute(node_id, "cpu", float(rng.randrange(0, 100)))
        cluster.set_attribute(node_id, "mem", float(rng.randrange(0, 64)))
        cluster.set_attribute(node_id, "svc", rng.random() < 0.4)
        cluster.set_attribute(node_id, "web", rng.random() < 0.3)
        cluster.set_attribute(node_id, "os", rng.choice(["Linux", "BSD"]))

    churn_rng = random.Random(churn_seed)
    for _round in range(churn_rounds + 1):  # round 0: pristine population
        for text in queries:
            got = cluster.query(text).value
            want = _oracle_answer(cluster, text)
            assert values_equal(got, want), (
                f"{text}: moara={got!r} oracle={want!r} "
                f"(population_seed={population_seed}, "
                f"churn_seed={churn_seed}, round={_round})"
            )
        # Apply one churn wave, then quiesce so trees finish repairing
        # before the next comparison round.
        node_ids = cluster.node_ids
        for node_id in churn_rng.sample(node_ids, 6):
            attr = churn_rng.choice(["svc", "web"])
            current = bool(cluster.nodes[node_id].attributes.get(attr, False))
            cluster.set_attribute(node_id, attr, not current)
        cluster.run_until_idle()


def test_agreement_survives_group_churn() -> None:
    moara = MoaraCluster(NUM_NODES, seed=106)
    central = CentralizedSystem(NUM_NODES, seed=106)
    rng = random.Random(7)
    moara_ids, central_ids = moara.node_ids, central.node_ids
    for node_id in moara_ids:
        moara.set_attribute(node_id, "hot", False)
    for node_id in central_ids:
        central.set_attribute(node_id, "hot", False)
    text = "SELECT COUNT(*) WHERE hot = true"
    for _round in range(5):
        flips = rng.sample(range(NUM_NODES), 8)
        for index in flips:
            current = moara.nodes[moara_ids[index]].attributes["hot"]
            moara.set_attribute(moara_ids[index], "hot", not current)
            central.set_attribute(central_ids[index], "hot", not current)
        moara.run_until_idle()
        assert moara.query(text).value == central.query(text).value
