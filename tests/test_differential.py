"""Differential testing: Moara vs the baselines on identical workloads.

All three systems -- Moara (adaptive group trees), SDIMS (global broadcast
trees), and the centralized aggregator -- must return the *same answers*
for the same attribute population; they differ only in cost.  These tests
randomize attribute populations and query shapes and require answer
equality across systems, plus the expected cost ordering.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import CentralizedSystem
from repro.core import MoaraCluster
from repro.sdims import SDIMSCluster

NUM_NODES = 48


def _populate(system, node_ids, seed: int) -> None:
    rng = random.Random(f"diff-{seed}")
    for rank, node_id in enumerate(node_ids):
        system.set_attribute(node_id, "cpu", float(rng.randrange(0, 100)))
        system.set_attribute(node_id, "svc", rng.random() < 0.4)
        system.set_attribute(node_id, "os", rng.choice(["Linux", "BSD"]))


QUERIES = [
    "SELECT COUNT(*) WHERE svc = true",
    "SELECT COUNT(*) WHERE cpu >= 50",
    "SELECT SUM(cpu) WHERE svc = true AND cpu < 80",
    "SELECT MAX(cpu) WHERE os = 'Linux' OR svc = true",
    "SELECT AVG(cpu) WHERE NOT os = 'BSD'",
    "SELECT COUNT(*)",
]


@settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_all_three_systems_agree(seed: int) -> None:
    moara = MoaraCluster(NUM_NODES, seed=104)
    sdims = SDIMSCluster(NUM_NODES, seed=104)
    central = CentralizedSystem(NUM_NODES, seed=104)
    _populate(moara, moara.node_ids, seed)
    _populate(sdims, sdims.node_ids, seed)
    _populate(central, central.node_ids, seed)
    for text in QUERIES:
        values = [
            moara.query(text).value,
            sdims.query(text).value,
            central.query(text).value,
        ]
        floats = [v for v in values if isinstance(v, float)]
        if len(floats) == 3:
            assert values[1] == pytest.approx(values[0])
            assert values[2] == pytest.approx(values[0])
        else:
            assert values[0] == values[1] == values[2], text


def test_cost_ordering_on_small_groups() -> None:
    """For a small group and repeated queries: Moara < SDIMS ~= Central."""
    moara = MoaraCluster(96, seed=105)
    sdims = SDIMSCluster(96, seed=105)
    central = CentralizedSystem(96, seed=105)
    for system in (moara, sdims):
        system.set_group("g", system.node_ids[:6])
    for node_id in central.node_ids[:6]:
        central.set_attribute(node_id, "g", True)
    for node_id in central.node_ids[6:]:
        central.set_attribute(node_id, "g", False)

    text = "SELECT COUNT(*) WHERE g = true"
    for _ in range(6):  # converge Moara's tree
        moara.query(text)
    moara_cost = moara.query(text).message_cost
    sdims_cost = sdims.query(text).message_cost
    central_cost = central.query(text).message_cost
    assert moara.query(text).value == 6
    assert moara_cost * 4 < sdims_cost
    assert moara_cost * 4 < central_cost
    # Broadcast and centralized costs are both ~2N.
    assert abs(sdims_cost - central_cost) < central_cost


def test_agreement_survives_group_churn() -> None:
    moara = MoaraCluster(NUM_NODES, seed=106)
    central = CentralizedSystem(NUM_NODES, seed=106)
    rng = random.Random(7)
    moara_ids, central_ids = moara.node_ids, central.node_ids
    for node_id in moara_ids:
        moara.set_attribute(node_id, "hot", False)
    for node_id in central_ids:
        central.set_attribute(node_id, "hot", False)
    text = "SELECT COUNT(*) WHERE hot = true"
    for _round in range(5):
        flips = rng.sample(range(NUM_NODES), 8)
        for index in flips:
            current = moara.nodes[moara_ids[index]].attributes["hot"]
            moara.set_attribute(moara_ids[index], "hot", not current)
            central.set_attribute(central_ids[index], "hot", not current)
        moara.run_until_idle()
        assert moara.query(text).value == central.query(text).value
