"""Tests for the centralized-aggregator baseline (Figure 15's "Central")."""

from __future__ import annotations

import pytest

from repro.baselines import CentralizedSystem
from repro.sim import WANLatencyModel


def test_query_all_nodes() -> None:
    system = CentralizedSystem(40, seed=1)
    for i, node_id in enumerate(system.node_ids):
        system.set_attribute(node_id, "x", float(i))
        system.set_attribute(node_id, "g", i < 10)
    result = system.query("SELECT COUNT(*) WHERE g = true")
    assert result.value == 10
    # Centralized always pays 2N regardless of group size.
    assert result.message_cost == 2 * 40


def test_sum_over_subgroup() -> None:
    system = CentralizedSystem(20, seed=2)
    for i, node_id in enumerate(system.node_ids):
        system.set_attribute(node_id, "v", 2.0)
        system.set_attribute(node_id, "g", i % 2 == 0)
    assert system.query("SELECT SUM(v) WHERE g = true").value == 20.0


def test_arrival_profile_recorded() -> None:
    nodes = [1000 + i for i in range(30)]
    system = CentralizedSystem(
        30,
        seed=3,
        latency_model=WANLatencyModel(nodes + [-2], seed=3),
        node_ids=nodes,
    )
    for node_id in system.node_ids:
        system.set_attribute(node_id, "g", True)
    result = system.query("SELECT COUNT(*) WHERE g = true")
    profile = system.last_arrival_profile()
    assert len(profile) == 30
    assert profile == sorted(profile)
    assert result.latency == pytest.approx(profile[-1])
    assert profile[0] > 0.0


def test_straggler_dominates_completion() -> None:
    """The "tortoise and hare" effect: completion waits for the slowest
    node even though most responses arrive quickly."""
    nodes = [1000 + i for i in range(50)]
    model = WANLatencyModel(
        nodes + [-2], straggler_fraction=0.1, seed=4,
        straggler_service=(1.0, 2.0),
    )
    system = CentralizedSystem(50, seed=4, latency_model=model, node_ids=nodes)
    for node_id in system.node_ids:
        system.set_attribute(node_id, "g", True)
    system.query("SELECT COUNT(*) WHERE g = true")
    profile = system.last_arrival_profile()
    median = profile[len(profile) // 2]
    assert profile[-1] > 5 * median


def test_missing_attribute_no_contribution() -> None:
    system = CentralizedSystem(10, seed=5)
    for node_id in system.node_ids[:5]:
        system.set_attribute(node_id, "g", True)
    result = system.query("SELECT SUM(v) WHERE g = true")  # v missing
    assert result.value is None
    assert result.contributors == 0
