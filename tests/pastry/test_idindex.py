"""Unit and property tests for the sorted ID index."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pastry import IdIndex, IdSpace

SPACE = IdSpace(bits=16, digit_bits=4)
id_sets = st.sets(
    st.integers(min_value=0, max_value=SPACE.size - 1), min_size=1, max_size=40
)
ids = st.integers(min_value=0, max_value=SPACE.size - 1)


def test_add_remove_contains() -> None:
    index = IdIndex(SPACE)
    index.add(5)
    index.add(10)
    assert 5 in index and 10 in index and 7 not in index
    assert len(index) == 2
    index.remove(5)
    assert 5 not in index
    with pytest.raises(KeyError):
        index.remove(5)
    with pytest.raises(ValueError):
        index.add(10)


def test_version_bumps_on_mutation() -> None:
    index = IdIndex(SPACE)
    v0 = index.version
    index.add(1)
    assert index.version == v0 + 1
    index.remove(1)
    assert index.version == v0 + 2


def test_ids_in_range() -> None:
    index = IdIndex(SPACE, [1, 5, 9, 12])
    assert index.ids_in_range(2, 10) == [5, 9]
    assert index.count_in_range(0, 100) == 4
    assert index.ids_in_range(6, 6) == []


@given(id_sets, ids)
def test_closest_to_is_global_argmin(members: set[int], key: int) -> None:
    index = IdIndex(SPACE, members)
    closest = index.closest_to(key)
    expected = min(members, key=lambda m: (SPACE.ring_distance(m, key), m))
    assert closest == expected


@given(id_sets, ids)
def test_closest_to_with_exclusion(members: set[int], key: int) -> None:
    index = IdIndex(SPACE, members)
    excluded = index.closest_to(key)
    rest = members - {excluded}
    result = index.closest_to(key, exclude=excluded)
    if not rest:
        assert result is None or result == excluded  # singleton: nothing else
    else:
        expected = min(rest, key=lambda m: (SPACE.ring_distance(m, key), m))
        assert result == expected


def test_closest_to_empty_index() -> None:
    assert IdIndex(SPACE).closest_to(5) is None


@given(id_sets, ids, st.integers(min_value=0, max_value=SPACE.num_digits))
def test_closest_with_prefix_brute_force(
    members: set[int], key: int, prefix_len: int
) -> None:
    index = IdIndex(SPACE, members)
    near = key  # arbitrary reference point
    result = index.closest_with_prefix(key, prefix_len, near=near)
    candidates = [
        m for m in members if SPACE.common_prefix_len(m, key) >= prefix_len
    ]
    if not candidates:
        assert result is None
    else:
        expected = min(
            candidates, key=lambda m: (SPACE.ring_distance(m, near), m)
        )
        assert result == expected


@given(id_sets, st.integers(min_value=0, max_value=SPACE.num_digits))
def test_any_with_prefix_consistent(members: set[int], prefix_len: int) -> None:
    index = IdIndex(SPACE, members)
    key = next(iter(members))
    assert index.any_with_prefix(key, prefix_len) is True  # key itself matches
    others = [
        m
        for m in members
        if m != key and SPACE.common_prefix_len(m, key) >= prefix_len
    ]
    assert index.any_with_prefix(key, prefix_len, exclude=key) == bool(others)


def test_ring_neighbors() -> None:
    index = IdIndex(SPACE, [10, 20, 30, 40])
    assert index.neighbors_clockwise(20, 2) == [30, 40]
    assert index.neighbors_counterclockwise(20, 2) == [10, 40]
    # Wraparound.
    assert index.neighbors_clockwise(40, 2) == [10, 20]
    # Never include the node itself, never loop past all members.
    assert index.neighbors_clockwise(10, 10) == [20, 30, 40]
    assert index.neighbors_counterclockwise(10, 10) == [40, 30, 20]


def test_neighbors_for_nonmember_key() -> None:
    index = IdIndex(SPACE, [10, 20, 30])
    assert index.neighbors_clockwise(25, 2) == [30, 10]
    assert index.neighbors_counterclockwise(25, 2) == [20, 10]


def test_neighbors_empty_index() -> None:
    index = IdIndex(SPACE)
    assert index.neighbors_clockwise(5, 3) == []
    assert index.neighbors_counterclockwise(5, 3) == []
