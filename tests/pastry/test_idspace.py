"""Unit and property tests for identifier-space arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pastry import IdSpace

SPACE = IdSpace(bits=64, digit_bits=4)
ids = st.integers(min_value=0, max_value=SPACE.size - 1)


def test_dimensions() -> None:
    assert SPACE.size == 2**64
    assert SPACE.num_digits == 16
    assert SPACE.digit_base == 16


def test_invalid_configuration_rejected() -> None:
    with pytest.raises(ValueError):
        IdSpace(bits=10, digit_bits=4)
    with pytest.raises(ValueError):
        IdSpace(bits=0, digit_bits=1)


def test_validate_range() -> None:
    SPACE.validate(0)
    SPACE.validate(SPACE.size - 1)
    with pytest.raises(ValueError):
        SPACE.validate(-1)
    with pytest.raises(ValueError):
        SPACE.validate(SPACE.size)


def test_digit_extraction() -> None:
    space = IdSpace(bits=8, digit_bits=2)
    # 0b11_01_00_10
    value = 0b11010010
    assert [space.digit(value, i) for i in range(4)] == [3, 1, 0, 2]
    with pytest.raises(IndexError):
        space.digit(value, 4)


def test_common_prefix_examples() -> None:
    space = IdSpace(bits=8, digit_bits=2)
    assert space.common_prefix_len(0b11010010, 0b11010010) == 4
    assert space.common_prefix_len(0b11010010, 0b11010001) == 3
    assert space.common_prefix_len(0b11010010, 0b00010010) == 0
    assert space.common_prefix_len(0b11010010, 0b11110010) == 1


@given(ids, ids)
def test_common_prefix_matches_digitwise_scan(a: int, b: int) -> None:
    expected = 0
    for i in range(SPACE.num_digits):
        if SPACE.digit(a, i) != SPACE.digit(b, i):
            break
        expected += 1
    assert SPACE.common_prefix_len(a, b) == expected


@given(ids, st.integers(min_value=0, max_value=SPACE.num_digits))
def test_prefix_range_contains_exactly_prefix_sharers(a: int, p: int) -> None:
    lo, hi = SPACE.prefix_range(a, p)
    assert lo <= a < hi
    # Boundary IDs share the prefix; the ones just outside do not.
    assert SPACE.common_prefix_len(a, lo) >= p
    assert SPACE.common_prefix_len(a, hi - 1) >= p
    if lo > 0:
        assert SPACE.common_prefix_len(a, lo - 1) < p
    if hi < SPACE.size:
        assert SPACE.common_prefix_len(a, hi) < p


@given(ids, ids)
def test_ring_distance_symmetric_and_bounded(a: int, b: int) -> None:
    d = SPACE.ring_distance(a, b)
    assert d == SPACE.ring_distance(b, a)
    assert 0 <= d <= SPACE.size // 2
    assert (d == 0) == (a == b)


@given(ids, ids)
def test_clockwise_plus_counterclockwise_is_full_circle(a: int, b: int) -> None:
    if a == b:
        assert SPACE.clockwise_distance(a, b) == 0
    else:
        assert (
            SPACE.clockwise_distance(a, b) + SPACE.clockwise_distance(b, a)
            == SPACE.size
        )


@given(
    ids,
    st.integers(min_value=0, max_value=SPACE.num_digits - 1),
    st.integers(min_value=0, max_value=SPACE.digit_base - 1),
)
def test_with_digit_sets_exactly_one_digit(a: int, index: int, digit: int) -> None:
    modified = SPACE.with_digit(a, index, digit)
    assert SPACE.digit(modified, index) == digit
    for i in range(SPACE.num_digits):
        if i != index:
            assert SPACE.digit(modified, i) == SPACE.digit(a, i)


def test_hash_name_stable_and_in_range() -> None:
    h1 = SPACE.hash_name("ServiceX")
    h2 = SPACE.hash_name("ServiceX")
    h3 = SPACE.hash_name("Apache")
    assert h1 == h2
    assert h1 != h3
    assert 0 <= h1 < SPACE.size


def test_format_id_small_space() -> None:
    space = IdSpace(bits=3, digit_bits=1)
    assert space.format_id(0b000) == "000"
    assert space.format_id(0b101) == "101"


def test_format_id_hex_space() -> None:
    space = IdSpace(bits=16, digit_bits=4)
    assert space.format_id(0xBEEF) == "beef"
