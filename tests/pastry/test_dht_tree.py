"""Tests for the implicit DHT aggregation tree (paper Section 3.2, Fig. 3)."""

from __future__ import annotations


import pytest

from repro.pastry import IdSpace, Overlay
from tests.conftest import build_overlay


def test_tree_spans_all_nodes() -> None:
    overlay = build_overlay(128, seed=1)
    key = overlay.space.hash_name("ServiceX")
    tree = overlay.tree(key)
    assert sorted(tree.nodes) == overlay.node_ids
    assert tree.root == overlay.root(key)
    # Every node reaches the root: the parent map is a spanning tree.
    for node in tree.nodes:
        assert tree.path_to_root(node)[-1] == tree.root


def test_tree_is_acyclic_with_single_root() -> None:
    overlay = build_overlay(200, seed=2)
    tree = overlay.tree(overlay.space.hash_name("Apache"))
    roots = [n for n in tree.nodes if tree.parent_of(n) is None]
    assert roots == [tree.root]
    # node count = edges + 1 for a tree
    edges = sum(len(tree.children_of(n)) for n in tree.nodes)
    assert edges == len(tree.nodes) - 1


def test_children_inverse_of_parent() -> None:
    overlay = build_overlay(64, seed=3)
    tree = overlay.tree(12345)
    for node in tree.nodes:
        for child in tree.children_of(node):
            assert tree.parent_of(child) == node


def test_depth_and_height() -> None:
    overlay = build_overlay(256, seed=4)
    tree = overlay.tree(9999)
    assert tree.depth_of(tree.root) == 0
    assert tree.height() >= 1
    # Pastry trees are logarithmically shallow.
    assert tree.height() <= overlay.space.num_digits + 1


def test_subtree_nodes_partition() -> None:
    overlay = build_overlay(64, seed=5)
    tree = overlay.tree(4242)
    all_from_root = tree.subtree_nodes(tree.root)
    assert sorted(all_from_root) == sorted(tree.nodes)
    # Sibling subtrees are disjoint.
    children = tree.children_of(tree.root)
    seen: set[int] = set()
    for child in children:
        sub = set(tree.subtree_nodes(child))
        assert not (sub & seen)
        seen |= sub


def test_tree_cache_and_invalidation() -> None:
    overlay = build_overlay(32, seed=6)
    key = 777
    t1 = overlay.tree(key)
    assert overlay.tree(key) is t1  # cached
    newcomer = overlay.generate_ids(1, seed=99)[0]
    overlay.add_node(newcomer)
    t2 = overlay.tree(key)
    assert t2 is not t1
    assert newcomer in t2


def test_parent_children_helpers_match_tree() -> None:
    overlay = build_overlay(50, seed=7)
    key = 31337
    tree = overlay.tree(key)
    for node in overlay.node_ids:
        assert overlay.parent(node, key) == tree.parent_of(node)
        assert overlay.children(node, key) == tree.children_of(node)


def test_paper_figure3_topology() -> None:
    """Structural reproduction of Figure 3: the tree for key 000 over the
    8-node, 1-bit-digit overlay.

    We check the properties the figure illustrates: the tree is rooted at
    000, spans all 8 nodes, and every edge climbs toward the key by fixing
    at least one more prefix bit (one-bit prefix correction), except for a
    possible final numeric hop into the root's neighborhood.
    """
    space = IdSpace(bits=3, digit_bits=1)
    overlay = Overlay(space)
    overlay.bulk_join(range(8))
    key = 0b000
    tree = overlay.tree(key)
    assert tree.root == 0b000
    assert len(tree) == 8
    for node in tree.nodes:
        parent = tree.parent_of(node)
        if parent is None or parent == tree.root:
            continue
        assert space.common_prefix_len(parent, key) > space.common_prefix_len(
            node, key
        )
    # With one-bit correction the tree is at most 3+1 levels deep.
    assert tree.height() <= 4


def test_different_keys_give_different_roots() -> None:
    """Root load-balancing: distinct group attributes hash to distinct
    roots with high probability (this is why SDIMS/Moara scale with the
    number of attributes)."""
    overlay = build_overlay(128, seed=8)
    roots = {
        overlay.root(overlay.space.hash_name(f"attribute-{i}"))
        for i in range(64)
    }
    assert len(roots) > 30  # well spread over 128 nodes


def test_cycle_detection_guard() -> None:
    overlay = build_overlay(8, seed=9)
    tree = overlay.tree(1)
    # Corrupt the parent map to force a cycle and ensure we detect it.
    nodes = tree.nodes
    tree._parent[nodes[0]] = nodes[1]
    tree._parent[nodes[1]] = nodes[0]
    with pytest.raises(RuntimeError):
        tree.depth_of(nodes[0])
    with pytest.raises(RuntimeError):
        tree.path_to_root(nodes[0])
