"""Routing correctness and scaling tests for the overlay."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pastry import IdSpace, Overlay
from tests.conftest import build_overlay


def test_empty_overlay_cannot_route() -> None:
    overlay = Overlay()
    with pytest.raises(RuntimeError):
        overlay.root(123)


def test_singleton_overlay_routes_to_self() -> None:
    overlay = Overlay()
    overlay.add_node(42)
    assert overlay.root(999) == 42
    assert overlay.next_hop(42, 999) is None
    assert overlay.route(42, 999) == [42]


def test_root_is_ring_closest(overlay_64: Overlay) -> None:
    space = overlay_64.space
    rng = random.Random(1)
    for _ in range(50):
        key = space.random_id(rng)
        root = overlay_64.root(key)
        expected = min(
            overlay_64.node_ids,
            key=lambda n: (space.ring_distance(n, key), n),
        )
        assert root == expected


def test_route_always_terminates_at_root(overlay_64: Overlay) -> None:
    space = overlay_64.space
    rng = random.Random(2)
    for _ in range(100):
        key = space.random_id(rng)
        src = rng.choice(overlay_64.node_ids)
        path = overlay_64.route(src, key)
        assert path[0] == src
        assert path[-1] == overlay_64.root(key)
        assert len(path) == len(set(path)), "route must be loop-free"


def test_prefix_improves_along_route(overlay_64: Overlay) -> None:
    """Every hop except possibly the final numeric hop extends the prefix."""
    space = overlay_64.space
    rng = random.Random(3)
    for _ in range(100):
        key = space.random_id(rng)
        src = rng.choice(overlay_64.node_ids)
        path = overlay_64.route(src, key)
        for i in range(len(path) - 2):  # all but the last hop
            p_here = space.common_prefix_len(path[i], key)
            p_next = space.common_prefix_len(path[i + 1], key)
            assert p_next > p_here


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=0, max_value=10_000),
)
def test_routing_from_every_node_reaches_same_root(num_nodes: int, seed: int) -> None:
    overlay = build_overlay(num_nodes, seed=seed)
    rng = random.Random(seed + 1)
    key = overlay.space.random_id(rng)
    root = overlay.root(key)
    for src in overlay.node_ids:
        assert overlay.route(src, key)[-1] == root


def test_hop_count_scales_logarithmically() -> None:
    """Average route length grows ~log_16(N), the Pastry guarantee."""
    rng = random.Random(9)
    avg_hops = {}
    for num_nodes in (64, 1024):
        overlay = build_overlay(num_nodes, seed=4)
        key_samples = [overlay.space.random_id(rng) for _ in range(20)]
        hops = [
            len(overlay.route(src, key)) - 1
            for key in key_samples
            for src in rng.sample(overlay.node_ids, 20)
        ]
        avg_hops[num_nodes] = sum(hops) / len(hops)
    # 16x more nodes should cost about one extra digit of routing, not 16x.
    assert avg_hops[1024] < avg_hops[64] + 2.0
    assert avg_hops[1024] <= 4.0


def test_route_caps_at_digit_budget() -> None:
    overlay = build_overlay(512, seed=6)
    rng = random.Random(7)
    for _ in range(50):
        key = overlay.space.random_id(rng)
        src = rng.choice(overlay.node_ids)
        assert len(overlay.route(src, key)) <= overlay.space.num_digits + 2


def test_membership_changes_update_routing() -> None:
    overlay = build_overlay(16, seed=8)
    key = overlay.space.hash_name("ServiceX")
    old_root = overlay.root(key)
    overlay.remove_node(old_root)
    new_root = overlay.root(key)
    assert new_root != old_root
    # All remaining nodes route to the new root.
    for src in overlay.node_ids:
        assert overlay.route(src, key)[-1] == new_root


def test_listener_notified_on_join_and_leave() -> None:
    overlay = Overlay()
    events: list[tuple[set[int], set[int]]] = []
    overlay.add_listener(lambda joined, left: events.append((joined, left)))
    overlay.add_node(5)
    overlay.remove_node(5)
    overlay.bulk_join([1, 2, 3])
    assert events == [({5}, set()), (set(), {5}), ({1, 2, 3}, set())]


def test_generate_ids_distinct_and_seeded() -> None:
    overlay = Overlay()
    ids_a = overlay.generate_ids(100, seed=3)
    ids_b = overlay.generate_ids(100, seed=3)
    assert ids_a == ids_b
    assert len(set(ids_a)) == 100


def test_small_space_paper_figure3_routing() -> None:
    """The Figure 3 configuration: 8 nodes, 3-bit IDs, 1-bit digits."""
    space = IdSpace(bits=3, digit_bits=1)
    overlay = Overlay(space)
    overlay.bulk_join(range(8))
    key = 0b000
    assert overlay.root(key) == 0b000
    # 111 shares no prefix with 000: its next hop must fix the first bit.
    hop = overlay.next_hop(0b111, key)
    assert hop is not None and space.digit(hop, 0) == 0
