"""Tests for node-local (table-based) routing vs. index-based routing."""

from __future__ import annotations

import random

from repro.pastry import PastryNode, RoutingTable
from tests.conftest import build_overlay


def test_routing_table_slots_hold_correct_prefixes() -> None:
    overlay = build_overlay(128, seed=11)
    space = overlay.space
    owner = overlay.node_ids[0]
    table = RoutingTable.build(overlay.index, owner)
    for row in range(space.num_digits):
        for col in range(space.digit_base):
            entry = table.entry(row, col)
            if entry is None:
                continue
            assert space.common_prefix_len(entry, owner) >= row
            assert space.digit(entry, row) == col
            assert space.digit(owner, row) != col


def test_routing_table_lookup_matches_prefix_rule() -> None:
    overlay = build_overlay(64, seed=12)
    space = overlay.space
    owner = overlay.node_ids[5]
    table = RoutingTable.build(overlay.index, owner)
    rng = random.Random(0)
    for _ in range(50):
        key = space.random_id(rng)
        entry = table.lookup(key)
        if entry is not None:
            assert space.common_prefix_len(entry, key) > space.common_prefix_len(
                owner, key
            )


def test_populated_slots_scale_with_overlay() -> None:
    small = build_overlay(16, seed=13)
    large = build_overlay(512, seed=13)
    owner_small = small.node_ids[0]
    owner_large = large.node_ids[0]
    slots_small = RoutingTable.build(small.index, owner_small).populated_slots()
    slots_large = RoutingTable.build(large.index, owner_large).populated_slots()
    assert slots_large > slots_small


def test_local_routing_reaches_same_root_as_index_routing() -> None:
    overlay = build_overlay(100, seed=14)
    space = overlay.space
    nodes = {
        node_id: PastryNode(space, node_id, overlay.index)
        for node_id in overlay.node_ids
    }
    rng = random.Random(1)
    for _ in range(30):
        key = space.random_id(rng)
        expected_root = overlay.root(key)
        current = rng.choice(overlay.node_ids)
        for _ in range(space.num_digits + 4):
            nxt = nodes[current].local_next_hop(key)
            if nxt is None:
                break
            current = nxt
        else:
            raise AssertionError("local routing did not converge")
        assert current == expected_root


def test_local_state_rebuilds_after_churn() -> None:
    overlay = build_overlay(32, seed=15)
    node_id = overlay.node_ids[0]
    node = PastryNode(overlay.space, node_id, overlay.index)
    before = node.routing_table.known_nodes()
    # Remove every known neighbor that isn't the owner.
    for neighbor in list(before)[:5]:
        overlay.remove_node(neighbor)
    after = node.routing_table.known_nodes()
    assert not (set(list(before)[:5]) & after)


def test_known_nodes_excludes_owner() -> None:
    overlay = build_overlay(64, seed=16)
    owner = overlay.node_ids[3]
    table = RoutingTable.build(overlay.index, owner)
    assert owner not in table.known_nodes()
