"""Tests for the materialized leaf set."""

from __future__ import annotations

import pytest

from repro.pastry import IdIndex, IdSpace, LeafSet

SPACE = IdSpace(bits=16, digit_bits=4)


def test_build_collects_both_sides() -> None:
    index = IdIndex(SPACE, [100, 200, 300, 400, 500])
    leafset = LeafSet.build(index, 300, size=4)
    assert leafset.smaller == [200, 100]
    assert leafset.larger == [400, 500]
    assert leafset.members() == {100, 200, 400, 500}


def test_build_wraps_around_ring() -> None:
    index = IdIndex(SPACE, [10, 20, SPACE.size - 10, SPACE.size - 20])
    leafset = LeafSet.build(index, 10, size=2)
    assert leafset.smaller == [SPACE.size - 10]
    assert leafset.larger == [20]


def test_invalid_size_rejected() -> None:
    index = IdIndex(SPACE, [1, 2])
    with pytest.raises(ValueError):
        LeafSet.build(index, 1, size=3)
    with pytest.raises(ValueError):
        LeafSet.build(index, 1, size=0)


def test_small_overlay_leafset_covers_everything() -> None:
    index = IdIndex(SPACE, [100, 200, 300])
    leafset = LeafSet.build(index, 200, size=16)
    for key in (0, 150, 250, 65535):
        assert leafset.covers(key)


def test_covers_limited_span_in_large_overlay() -> None:
    members = list(range(0, SPACE.size, SPACE.size // 64))  # 64 evenly spaced
    index = IdIndex(SPACE, members)
    owner = members[32]
    leafset = LeafSet.build(index, owner, size=4)
    assert leafset.covers(owner + 1)
    far_key = (owner + SPACE.size // 2) % SPACE.size
    assert not leafset.covers(far_key)


def test_closest_to_prefers_true_nearest() -> None:
    index = IdIndex(SPACE, [100, 200, 300, 400, 500])
    leafset = LeafSet.build(index, 300, size=4)
    assert leafset.closest_to(290) == 300
    assert leafset.closest_to(210) == 200
    assert leafset.closest_to(460) == 500


def test_singleton_owner_covers_all() -> None:
    index = IdIndex(SPACE, [42])
    leafset = LeafSet.build(index, 42, size=8)
    assert leafset.members() == set()
    assert leafset.covers(0) and leafset.covers(SPACE.size - 1)
    assert leafset.closest_to(7) == 42
