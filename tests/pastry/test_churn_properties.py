"""Property tests: overlay invariants survive arbitrary churn sequences."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pastry import IdSpace, Overlay

churn_ops = st.lists(
    st.one_of(
        st.tuples(st.just("join"), st.integers(min_value=0, max_value=2**32 - 1)),
        st.tuples(st.just("leave"), st.integers(min_value=0, max_value=63)),
    ),
    max_size=40,
)


@settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(ops=churn_ops)
def test_trees_stay_valid_under_arbitrary_churn(ops) -> None:
    space = IdSpace(bits=32, digit_bits=4)
    overlay = Overlay(space)
    overlay.bulk_join(overlay.generate_ids(16, seed=1))
    key = space.hash_name("churn-prop")
    for op in ops:
        if op[0] == "join":
            candidate = op[1] % space.size
            if candidate not in overlay:
                overlay.add_node(candidate)
        else:
            ids = overlay.node_ids
            if len(ids) > 2:
                overlay.remove_node(ids[op[1] % len(ids)])
        tree = overlay.tree(key)
        # Invariants after every single membership change:
        assert sorted(tree.nodes) == overlay.node_ids
        assert tree.root == overlay.root(key)
        roots = [n for n in tree.nodes if tree.parent_of(n) is None]
        assert roots == [tree.root]
        for node in tree.nodes:
            assert tree.path_to_root(node)[-1] == tree.root


@settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(seed=st.integers(min_value=0, max_value=9999))
def test_root_changes_only_when_affected(seed: int) -> None:
    """Removing a non-root node never changes a key's root."""
    overlay = Overlay(IdSpace())
    overlay.bulk_join(overlay.generate_ids(24, seed=seed))
    key = overlay.space.hash_name(f"k{seed}")
    root = overlay.root(key)
    victim = next(n for n in overlay.node_ids if n != root)
    overlay.remove_node(victim)
    assert overlay.root(key) == root
