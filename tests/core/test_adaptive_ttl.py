"""Churn-adaptive TTLs: estimator behaviour and min/max clamping.

The satellite checklist pins the clamping contract: zero observed churn
reproduces the fixed TTL exactly (every entry gets the max bound), and a
churn storm can shrink entries to the min bound but never below.
"""

from __future__ import annotations

import pytest

from repro.core import (
    AdaptationConfig,
    FrontendConfig,
    MaintenancePolicy,
    MoaraCluster,
    MoaraConfig,
)
from repro.core.adaptive_ttl import AdaptiveTTL, ChurnTracker
from repro.core.moara_node import group_attribute
from repro.core.parser import parse_predicate
from repro.core.plan_cache import GroupSizeCache
from repro.core.result_cache import ResultCache


# ----------------------------------------------------------------------
# ChurnTracker unit behaviour
# ----------------------------------------------------------------------


def test_tracker_rate_is_zero_for_unseen_keys() -> None:
    tracker = ChurnTracker(window=10.0)
    assert tracker.rate("g", now=0.0) == 0.0


def test_tracker_rate_builds_with_events_and_decays_after() -> None:
    tracker = ChurnTracker(window=10.0)
    for i in range(20):
        tracker.record("g", now=float(i))  # one event per second
    busy = tracker.rate("g", now=20.0)
    assert busy == pytest.approx(1.0, rel=0.5)  # converging toward 1/s
    quiet = tracker.rate("g", now=60.0)  # four windows of silence
    assert quiet < busy / 10


def test_global_events_raise_every_key() -> None:
    tracker = ChurnTracker(window=10.0)
    tracker.record_global(now=0.0)
    assert tracker.rate("anything", now=0.0) > 0.0
    assert tracker.rate("else", now=0.0) > 0.0


def test_tracker_rejects_bad_window() -> None:
    with pytest.raises(ValueError):
        ChurnTracker(window=0.0)


def test_tracker_prunes_to_bound() -> None:
    tracker = ChurnTracker(window=10.0, maxsize=8)
    for i in range(50):
        tracker.record(f"k{i}", now=float(i))
    assert len(tracker) <= 8


# ----------------------------------------------------------------------
# AdaptiveTTL clamping (the satellite contract)
# ----------------------------------------------------------------------


def test_zero_churn_yields_exactly_the_max_bound() -> None:
    policy = AdaptiveTTL(2.0, 30.0)
    assert policy.ttl_for("g", now=0.0) == 30.0


def test_extreme_churn_clamps_to_the_min_bound() -> None:
    policy = AdaptiveTTL(2.0, 30.0, ChurnTracker(window=10.0))
    for _ in range(1000):  # a storm: rate far above 1/min
        policy.observe("g", now=0.0)
    assert policy.ttl_for("g", now=0.0) == 2.0
    # An unrelated key is unaffected by per-key churn.
    assert policy.ttl_for("other", now=0.0) == 30.0


def test_moderate_churn_interpolates_between_the_bounds() -> None:
    policy = AdaptiveTTL(1.0, 60.0, ChurnTracker(window=10.0))
    for i in range(100):
        policy.observe("g", now=float(i) * 0.1)  # ~10 events/sec... decays
    ttl = policy.ttl_for("g", now=10.0)
    assert 1.0 <= ttl <= 60.0
    # The mapping is 1/rate inside the bounds.
    rate = policy.tracker.rate("g", now=10.0)
    assert ttl == pytest.approx(
        min(60.0, max(1.0, 1.0 / rate))
    )


def test_min_above_max_uses_the_intersection() -> None:
    policy = AdaptiveTTL(50.0, 10.0)
    assert policy.ttl_min == 10.0
    assert policy.ttl_for("g", now=0.0) == 10.0


def test_bad_bounds_are_rejected() -> None:
    with pytest.raises(ValueError):
        AdaptiveTTL(1.0, 0.0)
    with pytest.raises(ValueError):
        AdaptiveTTL(-1.0, 10.0)


# ----------------------------------------------------------------------
# cache integration: per-entry TTLs
# ----------------------------------------------------------------------


def _entry_ttl(cache: GroupSizeCache, key: str) -> float:
    cost, expires_at = cache._entries[key]
    return expires_at


def test_size_cache_assigns_per_entry_ttls() -> None:
    assigned: list[float] = []
    policy = AdaptiveTTL(5.0, 60.0, ChurnTracker(window=10.0))
    cache = GroupSizeCache(
        ttl=60.0, ttl_policy=policy, on_ttl=assigned.append
    )
    cache.put("stable", 10.0, now=0.0)
    assert _entry_ttl(cache, "stable") == 60.0  # zero churn: max bound
    # A fresh estimate that moved counts as churn for that key...
    for i in range(200):
        cache.put("flappy", 10.0 + i, now=0.0)
    assert _entry_ttl(cache, "flappy") == 5.0  # storm: min bound
    # ...while the stable key's next refresh keeps the max.
    cache.put("stable", 10.0, now=0.0)
    assert _entry_ttl(cache, "stable") == 60.0
    assert assigned and min(assigned) == 5.0 and max(assigned) == 60.0


def test_result_cache_assigns_per_entry_ttls_by_group() -> None:
    policy = AdaptiveTTL(1.0, 20.0, ChurnTracker(window=10.0))
    cache = ResultCache(ttl=20.0, maxsize=8, ttl_policy=policy)
    for _ in range(500):
        policy.observe("(flappy = true)", now=0.0)
    cache.put(
        ("cpu", "SUM", "(flappy = true)", "(flappy = true)"),
        1.0,
        1,
        group_key="(flappy = true)",
        attrs=frozenset({"flappy"}),
        now=0.0,
    )
    cache.put(
        ("cpu", "SUM", "(stable = true)", "(stable = true)"),
        2.0,
        1,
        group_key="(stable = true)",
        attrs=frozenset({"stable"}),
        now=0.0,
    )
    flappy = cache._entries[("cpu", "SUM", "(flappy = true)", "(flappy = true)")]
    stable = cache._entries[("cpu", "SUM", "(stable = true)", "(stable = true)")]
    assert flappy.expires_at - flappy.cached_at == 1.0  # clamped to min
    assert stable.expires_at - stable.cached_at == 20.0  # full max


# ----------------------------------------------------------------------
# end-to-end: node-side churn shortens root-cache TTLs
# ----------------------------------------------------------------------

TTL = 10.0
TEXT = "SELECT COUNT(*) WHERE g = true"


def _cluster(frontend_config=None, **config_kwargs) -> MoaraCluster:
    # ALWAYS_UPDATE maintenance so group-membership flaps generate the
    # STATUS_UPDATE traffic the root's churn tracker feeds on (under the
    # adaptive policy a pruned member's flap is a *silent* update, which
    # is by contract only TTL-bounded, not churn-visible).
    config_kwargs.setdefault(
        "adaptation",
        AdaptationConfig(policy=MaintenancePolicy.ALWAYS_UPDATE),
    )
    c = MoaraCluster(
        32,
        seed=96,
        config=MoaraConfig(
            result_cache_ttl=TTL, result_cache_ttl_min=1.0, **config_kwargs
        ),
        frontend_config=frontend_config,
    )
    c.set_group("g", c.node_ids[:8])
    return c


def _g_tree_key(c: MoaraCluster) -> int:
    return c.overlay.space.hash_name(
        group_attribute(parse_predicate("g = true"))
    )


def _root_entry_ttl(c: MoaraCluster) -> float:
    root = c.nodes[c.overlay.root(_g_tree_key(c))]
    entry = next(iter(root.result_cache._entries.values()))
    return entry.expires_at - entry.cached_at


def test_stable_group_gets_the_full_ttl() -> None:
    c = _cluster()
    c.query(TEXT)
    assert _root_entry_ttl(c) == TTL
    # And the histogram recorded the assignment.
    assert sum(c.stats.adaptive_ttl_hist.values()) >= 1


def test_group_churn_storm_shrinks_the_cached_ttl_to_the_min() -> None:
    c = _cluster()
    # Flap a *direct DHT child* of the g-tree root in and out of the
    # group, so every flap's STATUS_UPDATE lands at the root (a deeper
    # member's report can be absorbed mid-tree by set compression).
    tree_key = _g_tree_key(c)
    root_id = c.overlay.root(tree_key)
    flapper = c.overlay.children(root_id, tree_key)[0]
    for i in range(60):
        # Cache a result, then flap the group: the STATUS_UPDATE that
        # invalidates it is a churn observation at the root.
        c.query(TEXT)
        c.set_attribute(flapper, "g", i % 2 == 1)
        c.run_until_idle()
    c.query(TEXT)
    assert _root_entry_ttl(c) == 1.0  # clamped at result_cache_ttl_min
    buckets = c.stats.adaptive_ttl_hist
    assert buckets.get("<=1s", 0) >= 1


def test_adaptive_off_reproduces_the_fixed_ttl() -> None:
    c = _cluster(
        adaptive_result_ttl=False,
        # Also pin the frontend size tier, so the histogram assertion
        # below sees no adaptive assignments from either side.
        frontend_config=FrontendConfig(adaptive_size_ttl=False),
    )
    flapper = c.node_ids[0]
    for i in range(20):
        c.query(TEXT)
        c.set_attribute(flapper, "g", i % 2 == 1)
        c.run_until_idle()
    c.query(TEXT)
    assert _root_entry_ttl(c) == TTL  # fixed, churn-blind
    assert sum(c.stats.adaptive_ttl_hist.values()) == 0


def test_uncached_configs_reproduce_the_seed() -> None:
    fc = FrontendConfig.uncached()
    assert fc.size_cache_ttl == 0.0 and not fc.adaptive_size_ttl
    mc = MoaraConfig.uncached()
    assert mc.result_cache_ttl == 0.0 and not mc.adaptive_result_ttl
    c = MoaraCluster(
        16, seed=97, config=mc, frontend_config=fc
    )
    c.set_group("g", c.node_ids[:4])
    assert c.query(TEXT).value == 4
    assert sum(c.stats.adaptive_ttl_hist.values()) == 0
