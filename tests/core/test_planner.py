"""Unit and property tests for the composite-query planner (Section 6)."""

from __future__ import annotations

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import PlanningError
from repro.core.planner import (
    SemanticContext,
    choose_cover,
    plan_predicate,
)
from repro.core.predicates import (
    And,
    Comparison,
    Or,
    SimplePredicate,
    TruePredicate,
)
from repro.core.relations import Relation


def sp(attr: str, op: str = "=", value=True) -> SimplePredicate:
    return SimplePredicate(attr, Comparison(op), value)


A, B, C, D = sp("A"), sp("B"), sp("C"), sp("D")


def canon(clauses):
    return {frozenset(p.canonical() for p in clause) for clause in clauses}


# ----------------------------------------------------------------------
# structural covers (Section 6.2 / 6.3)
# ----------------------------------------------------------------------


def test_simple_predicate_single_cover() -> None:
    plan = plan_predicate(A)
    assert canon(plan.clauses) == {frozenset({A.canonical()})}
    assert not plan.needs_probes()


def test_intersection_two_candidate_covers() -> None:
    """cover(A and B) = {A} or {B}: query whichever is cheaper."""
    plan = plan_predicate(And(A, B))
    assert canon(plan.clauses) == {
        frozenset({A.canonical()}),
        frozenset({B.canonical()}),
    }
    assert plan.needs_probes()


def test_union_single_cover_with_both() -> None:
    """cover(A or B) = {A, B}: both groups must be contacted."""
    plan = plan_predicate(Or(A, B))
    assert canon(plan.clauses) == {
        frozenset({A.canonical(), B.canonical()})
    }
    assert not plan.needs_probes()


def test_paper_figure6_covers() -> None:
    """((A or B) and (A or C)) or D -> {A,B,D} and {A,C,D}."""
    pred = Or(And(Or(A, B), Or(A, C)), D)
    plan = plan_predicate(pred)
    assert canon(plan.clauses) == {
        frozenset({A.canonical(), B.canonical(), D.canonical()}),
        frozenset({A.canonical(), C.canonical(), D.canonical()}),
    }


def test_global_group() -> None:
    plan = plan_predicate(TruePredicate())
    assert plan.global_group and not plan.clauses


# ----------------------------------------------------------------------
# Figure 7 semantic optimizations
# ----------------------------------------------------------------------


def test_disjoint_intersection_is_unsatisfiable() -> None:
    """Figure 7 row 1: (A and B) with A ∩ B = ∅ -> cover {}."""
    low = sp("cpu", "<", 20)
    high = sp("cpu", ">", 80)
    plan = plan_predicate(And(low, high))
    assert plan.unsatisfiable


def test_equivalent_groups_collapse() -> None:
    """Figure 7 row 2: A = B -> single cover {A} for both or/and."""
    a = sp("cpu", "<", 50)
    b = sp("cpu", "<", 50)
    for pred in (And(a, b), Or(a, b)):
        plan = plan_predicate(pred)
        assert len(plan.clauses) == 1
        assert len(plan.clauses[0]) == 1


def test_inclusion_in_or_keeps_superset() -> None:
    """Figure 7 row 3: (A or B) with B ⊆ A -> {A}."""
    big = sp("cpu", "<", 50)
    small = sp("cpu", "<", 20)
    plan = plan_predicate(Or(big, small))
    assert canon(plan.clauses) == {frozenset({big.canonical()})}


def test_inclusion_in_and_keeps_subset() -> None:
    """Figure 7 row 3: (A and B) with B ⊆ A -> {B}."""
    big = sp("cpu", "<", 50)
    small = sp("cpu", "<", 20)
    plan = plan_predicate(And(big, small))
    assert canon(plan.clauses) == {frozenset({small.canonical()})}


def test_tautological_or_clause_dropped() -> None:
    """(cpu < 50 or cpu >= 50) and A  ->  cover {A}."""
    pred = And(Or(sp("cpu", "<", 50), sp("cpu", ">=", 50)), A)
    plan = plan_predicate(pred)
    assert canon(plan.clauses) == {frozenset({A.canonical()})}


def test_whole_predicate_tautology_is_global() -> None:
    plan = plan_predicate(Or(sp("cpu", "<", 50), sp("cpu", ">=", 50)))
    assert plan.global_group


def test_paper_not_rule_one() -> None:
    """(A or B) and (A or C) = A, if C = not B."""
    b = sp("cpu", "<", 50)
    c = sp("cpu", ">=", 50)
    plan = plan_predicate(And(Or(A, b), Or(A, c)))
    assert canon(plan.clauses) == {frozenset({A.canonical()})}


def test_paper_not_rule_two() -> None:
    """(A or C) and B = A and B, if C = not B."""
    b = sp("cpu", "<", 50)
    c = sp("cpu", ">=", 50)
    plan = plan_predicate(And(Or(A, c), b))
    assert canon(plan.clauses) == {
        frozenset({A.canonical()}),
        frozenset({b.canonical()}),
    }


def test_paper_not_rule_three() -> None:
    """(A or B) and C = A and not(B), if C = not B -> covers {A}, {C}."""
    b = sp("cpu", "<", 50)
    c = sp("cpu", ">=", 50)
    plan = plan_predicate(And(Or(A, b), c))
    assert canon(plan.clauses) == {
        frozenset({A.canonical()}),
        frozenset({c.canonical()}),
    }


def test_user_supplied_semantics() -> None:
    """Slices declared disjoint by the operator shrink covers."""
    slice_a, slice_b = sp("sliceA"), sp("sliceB")
    semantics = SemanticContext()
    semantics.declare(slice_a, slice_b, Relation.DISJOINT)
    plan = plan_predicate(And(slice_a, slice_b), semantics)
    assert plan.unsatisfiable


def test_user_semantics_inclusion() -> None:
    parent_group, child_group = sp("org"), sp("team")
    semantics = SemanticContext()
    semantics.declare(child_group, parent_group, Relation.SUBSET)
    plan = plan_predicate(Or(parent_group, child_group), semantics)
    assert canon(plan.clauses) == {frozenset({parent_group.canonical()})}


# ----------------------------------------------------------------------
# cover choice (cost model)
# ----------------------------------------------------------------------


def test_choose_cover_minimizes_cost() -> None:
    plan = plan_predicate(And(A, B))
    cover = choose_cover(plan, {A.canonical(): 100, B.canonical(): 10})
    assert {p.canonical() for p in cover} == {B.canonical()}
    cover = choose_cover(plan, {A.canonical(): 5, B.canonical(): 10})
    assert {p.canonical() for p in cover} == {A.canonical()}


def test_choose_cover_figure6_example() -> None:
    """min(|A| + |B| + |D|, |A| + |C| + |D|)."""
    plan = plan_predicate(Or(And(Or(A, B), Or(A, C)), D))
    costs = {
        A.canonical(): 10,
        B.canonical(): 50,
        C.canonical(): 20,
        D.canonical(): 5,
    }
    cover = choose_cover(plan, costs)
    assert {p.canonical() for p in cover} == {
        A.canonical(),
        C.canonical(),
        D.canonical(),
    }


def test_choose_cover_ties_prefer_fewer_groups() -> None:
    plan = plan_predicate(And(Or(A, B), C))
    cover = choose_cover(
        plan, {A.canonical(): 1, B.canonical(): 1, C.canonical(): 2}
    )
    assert {p.canonical() for p in cover} == {C.canonical()}


def test_choose_cover_requires_candidates() -> None:
    plan = plan_predicate(TruePredicate())
    with pytest.raises(PlanningError):
        choose_cover(plan, {})


def test_unknown_costs_default() -> None:
    plan = plan_predicate(And(A, B))
    cover = choose_cover(plan, {})  # both default: deterministic tie-break
    assert len(cover) == 1


# ----------------------------------------------------------------------
# property: covers are complete (any satisfying node is reachable)
# ----------------------------------------------------------------------

attr_pool = ["p", "q", "r"]
simple_preds = st.builds(
    SimplePredicate,
    attr=st.sampled_from(attr_pool),
    op=st.sampled_from([Comparison.LT, Comparison.GE, Comparison.EQ, Comparison.NE]),
    value=st.integers(min_value=0, max_value=3),
)


def predicates(depth: int):
    if depth == 0:
        return simple_preds
    sub = predicates(depth - 1)
    return st.one_of(
        simple_preds,
        st.builds(lambda ps: And(*ps), st.lists(sub, min_size=1, max_size=3)),
        st.builds(lambda ps: Or(*ps), st.lists(sub, min_size=1, max_size=3)),
    )


@settings(max_examples=300, deadline=None)
@given(pred=predicates(2))
def test_every_clause_is_a_complete_cover(pred) -> None:
    """For every attribute assignment satisfying the predicate, every
    candidate cover contains at least one group the node belongs to --
    i.e., the query would reach that node.  Also: unsatisfiable plans are
    truly unsatisfiable over the test domain."""
    plan = plan_predicate(pred)
    domain = [0, 1, 2, 3, 0.5, 1.5, 2.5, -1.0]
    satisfying = [
        dict(zip(attr_pool, combo))
        for combo in product(domain, repeat=len(attr_pool))
        if pred.evaluate(dict(zip(attr_pool, combo)))
    ]
    if plan.unsatisfiable:
        assert not satisfying
        return
    if plan.global_group:
        return  # trivially complete
    for attrs in satisfying:
        for clause in plan.clauses:
            assert any(literal.evaluate(attrs) for literal in clause), (
                f"cover {sorted(p.canonical() for p in clause)} misses "
                f"satisfying node {attrs} for {pred.canonical()}"
            )
