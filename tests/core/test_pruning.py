"""Bandwidth behaviour of dynamic tree maintenance (Section 4).

These tests assert the *economic* properties of Figure 9: pruned trees make
repeat queries cheap, the Global policy pays per query but nothing for
churn, Always-Update pays per churn event but little per query, and the
adaptive policy tracks the better of the two.
"""

from __future__ import annotations

import random


from repro.core import MoaraCluster
from repro.core.adapt import AdaptationConfig, MaintenancePolicy
from repro.core.moara_node import MoaraConfig
from repro.core import messages as mt


def make_cluster(policy: MaintenancePolicy, num_nodes: int = 128, **kwargs) -> MoaraCluster:
    config = MoaraConfig(adaptation=AdaptationConfig(policy=policy), **kwargs)
    cluster = MoaraCluster(num_nodes, seed=20, config=config)
    cluster.set_group("A", cluster.node_ids[:8], 1, 0)
    return cluster


QUERY = "SELECT COUNT(*) WHERE A = 1"


def test_first_query_reaches_everyone_then_prunes() -> None:
    cluster = make_cluster(MaintenancePolicy.ADAPTIVE)
    first = cluster.query(QUERY)
    assert first.value == 8
    # Every node received the first query (no pruning state existed).
    assert first.message_cost >= 2 * len(cluster)
    second = cluster.query(QUERY)
    assert second.value == 8
    # After pruning, cost is proportional to the group, not the system.
    assert second.message_cost < len(cluster) // 2
    assert second.message_cost >= 2 * 8


def test_global_policy_never_prunes() -> None:
    cluster = make_cluster(MaintenancePolicy.NEVER_UPDATE)
    costs = [cluster.query(QUERY).message_cost for _ in range(3)]
    for cost in costs:
        assert cost >= 2 * len(cluster)
    # ... and sends no maintenance traffic at all.
    assert cluster.stats.by_type.get(mt.STATUS_UPDATE, 0) == 0


def test_global_policy_churn_is_free() -> None:
    cluster = make_cluster(MaintenancePolicy.NEVER_UPDATE)
    cluster.query(QUERY)
    before = cluster.stats.total_messages
    rng = random.Random(1)
    for _ in range(50):
        node = rng.choice(cluster.node_ids)
        current = cluster.nodes[node].attributes.get("A", 0)
        cluster.set_attribute(node, "A", 1 - current)
    cluster.run_until_idle()
    assert cluster.stats.total_messages == before


def test_always_update_pays_for_churn() -> None:
    cluster = make_cluster(MaintenancePolicy.ALWAYS_UPDATE)
    cluster.query(QUERY)
    before = cluster.stats.total_messages
    node = cluster.node_ids[0]  # a group member: flipping changes its state
    cluster.set_attribute(node, "A", 0)
    cluster.run_until_idle()
    assert cluster.stats.total_messages > before


def test_adaptive_suppresses_repeated_churn() -> None:
    """A node whose attribute flaps falls silent (NO-UPDATE) instead of
    spamming its parent (the CPU-util-fluctuating-around-50% example)."""
    cluster = make_cluster(MaintenancePolicy.ADAPTIVE)
    cluster.query(QUERY)
    cluster.query(QUERY)
    flapper = cluster.node_ids[0]
    # Flap the attribute many times with no intervening queries.
    costs = []
    for i in range(12):
        before = cluster.stats.total_messages
        cluster.set_attribute(flapper, "A", i % 2)
        cluster.run_until_idle()
        costs.append(cluster.stats.total_messages - before)
    # The first flap may send updates; later flaps must go quiet.
    assert sum(costs[-6:]) <= 2, f"churn kept costing messages: {costs}"


def test_trees_go_silent_when_queries_stop() -> None:
    """Section 6.1: "Moara trees become silent and incur zero bandwidth
    cost if not used".

    Each node still in UPDATE state pays for its *first* post-query change
    (flipping to NO-UPDATE, possibly announcing NO-PRUNE so it keeps
    receiving queries); after every node has seen a change, continued churn
    must cost exactly nothing.
    """
    cluster = make_cluster(MaintenancePolicy.ADAPTIVE)
    for _ in range(3):
        cluster.query(QUERY)
    costs = []
    for _round in range(5):
        before = cluster.stats.total_messages
        for node in cluster.node_ids:  # churn touches every node
            current = cluster.nodes[node].attributes.get("A", 0)
            cluster.set_attribute(node, "A", 1 - current)
        cluster.run_until_idle()
        costs.append(cluster.stats.total_messages - before)
    assert costs[-1] == 0, f"churn traffic did not die out: {costs}"
    assert costs[-2] == 0, f"churn traffic did not die out: {costs}"


def test_adaptive_beats_global_under_query_heavy_load() -> None:
    adaptive = make_cluster(MaintenancePolicy.ADAPTIVE)
    global_ = make_cluster(MaintenancePolicy.NEVER_UPDATE)
    for cluster in (adaptive, global_):
        cluster.stats.reset()
        for _ in range(20):
            cluster.query(QUERY)
    assert adaptive.stats.total_messages < global_.stats.total_messages / 2


def test_global_beats_always_update_under_churn_heavy_load() -> None:
    always = make_cluster(MaintenancePolicy.ALWAYS_UPDATE)
    global_ = make_cluster(MaintenancePolicy.NEVER_UPDATE)
    rng = random.Random(3)
    flips = [
        (rng.choice(always.node_ids), i % 2) for i in range(100)
    ]
    for cluster in (always, global_):
        cluster.query(QUERY)  # create state everywhere
        cluster.stats.reset()
        for node_index, value in flips:
            cluster.set_attribute(node_index, "A", value)
            cluster.run_until_idle()
    assert global_.stats.total_messages == 0
    assert always.stats.total_messages > 0


def test_status_updates_flow_to_parents_only() -> None:
    """Maintenance traffic is strictly child->parent along the tree."""
    cluster = make_cluster(MaintenancePolicy.ADAPTIVE, num_nodes=32)
    cluster.query(QUERY)
    key = cluster.overlay.space.hash_name("A")
    tree = cluster.overlay.tree(key)
    for node_id, node in cluster.nodes.items():
        for state in node.states.values():
            if state.sent_update_set is not None:
                assert state.known_parent == tree.parent_of(node_id)
