"""Eventual completeness (the paper's correctness guarantee, Section 4).

"when the set of predicate-satisfying nodes as well as the underlying DHT
overlay do not change for a sufficiently long time after a query injection,
a query to the group will eventually return answers from all such nodes."

The property tests drive a cluster through arbitrary interleavings of
attribute churn, queries, and (in the strongest variant) overlay churn,
then let the system quiesce and assert the next query returns *exactly* the
satisfying set.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MoaraCluster
from repro.core.moara_node import MoaraConfig
from repro.core.adapt import AdaptationConfig

QUERY = "SELECT LIST(A) WHERE A = 1"

# An event is either a query, or an attribute flip on node index i.
events = st.lists(
    st.one_of(
        st.just(("query",)),
        st.tuples(st.just("flip"), st.integers(min_value=0, max_value=31)),
    ),
    max_size=40,
)


def answered_nodes(cluster: MoaraCluster) -> set[int]:
    result = cluster.query(QUERY)
    return {node for node, _value in result.value}


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    evts=events,
    k_update=st.integers(min_value=1, max_value=3),
    k_no_update=st.integers(min_value=1, max_value=3),
    threshold=st.integers(min_value=1, max_value=3),
)
def test_eventual_completeness_under_group_churn(
    evts, k_update, k_no_update, threshold
) -> None:
    config = MoaraConfig(
        adaptation=AdaptationConfig(k_update=k_update, k_no_update=k_no_update),
        threshold=threshold,
    )
    cluster = MoaraCluster(32, seed=50, config=config)
    ids = cluster.node_ids
    for node_id in ids:
        cluster.set_attribute(node_id, "A", 0)
    for event in evts:
        if event[0] == "query":
            cluster.query(QUERY)
        else:
            node = ids[event[1]]
            current = cluster.nodes[node].attributes["A"]
            cluster.set_attribute(node, "A", 1 - current)
    cluster.run_until_idle()  # churn stops; the system quiesces
    expected = cluster.members_satisfying("A = 1")
    assert answered_nodes(cluster) == expected


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    evts=st.lists(
        st.one_of(
            st.just(("query",)),
            st.tuples(st.just("flip"), st.integers(min_value=0, max_value=23)),
            st.just(("leave",)),
            st.just(("join",)),
        ),
        max_size=25,
    ),
)
def test_eventual_completeness_under_overlay_churn(evts) -> None:
    """Group churn *and* node join/leave interleaved with queries."""
    cluster = MoaraCluster(24, seed=51)
    for node_id in cluster.node_ids:
        cluster.set_attribute(node_id, "A", 0)
    for event in evts:
        ids = cluster.node_ids
        if event[0] == "query":
            cluster.query(QUERY)
        elif event[0] == "flip":
            node = ids[event[1] % len(ids)]
            current = cluster.nodes[node].attributes.get("A", 0)
            cluster.set_attribute(node, "A", 1 - current)
        elif event[0] == "leave" and len(ids) > 4:
            cluster.leave_node(ids[len(ids) // 2])
        elif event[0] == "join":
            new_node = cluster.join_node()
            cluster.set_attribute(new_node, "A", 1)
        cluster.run_until_idle()
    expected = cluster.members_satisfying("A = 1")
    assert answered_nodes(cluster) == expected


def test_completeness_after_heavy_flapping() -> None:
    """A pathological flapper (the CPU-around-50% example) must still be
    included/excluded correctly once it settles."""
    cluster = MoaraCluster(48, seed=52)
    for node_id in cluster.node_ids:
        cluster.set_attribute(node_id, "A", 0)
    flapper = cluster.node_ids[7]
    cluster.query(QUERY)
    for i in range(30):
        cluster.set_attribute(flapper, "A", (i + 1) % 2)
        if i % 7 == 0:
            cluster.query(QUERY)
    # Settles at A=0 (30 flips: last value written is 0... make explicit):
    cluster.set_attribute(flapper, "A", 0)
    cluster.run_until_idle()
    assert flapper not in answered_nodes(cluster)
    cluster.set_attribute(flapper, "A", 1)
    cluster.run_until_idle()
    assert flapper in answered_nodes(cluster)


def test_completeness_with_all_nodes_satisfying() -> None:
    cluster = MoaraCluster(40, seed=53)
    for node_id in cluster.node_ids:
        cluster.set_attribute(node_id, "A", 1)
    assert answered_nodes(cluster) == set(cluster.node_ids)
    # Everyone leaves the group; answers must become empty.
    for node_id in cluster.node_ids:
        cluster.set_attribute(node_id, "A", 0)
    cluster.run_until_idle()
    assert answered_nodes(cluster) == set()
    # And back again.
    for node_id in cluster.node_ids:
        cluster.set_attribute(node_id, "A", 1)
    cluster.run_until_idle()
    assert answered_nodes(cluster) == set(cluster.node_ids)


def test_state_machine_invariant_update_or_receive() -> None:
    """The Section 4 invariant: every node either (a) keeps its parent
    up to date (UPDATE), or (b) is routed all queries (its effective sent
    set contains its own id)."""
    cluster = MoaraCluster(64, seed=54)
    cluster.set_group("A", cluster.node_ids[:9], 1, 0)
    for _ in range(3):
        cluster.query("SELECT COUNT(*) WHERE A = 1")
    # Churn to push nodes through state transitions.
    for node_id in cluster.node_ids[::3]:
        current = cluster.nodes[node_id].attributes["A"]
        cluster.set_attribute(node_id, "A", 1 - current)
    cluster.run_until_idle()
    for node_id, node in cluster.nodes.items():
        for state in node.states.values():
            receives = state.would_receive_queries()
            updates = state.adaptor.update
            assert updates or receives, (
                f"node {node_id} neither updates nor receives queries"
            )
