"""Tests for the histogram aggregation function."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Histogram, MoaraCluster
from repro.core.aggregation import merge_partials
from repro.core.parser import parse_predicate
from repro.core.query import Query


def test_bucketing() -> None:
    fn = Histogram(0.0, 100.0, buckets=10)
    data = [5.0, 15.0, 15.5, 95.0, -3.0, 150.0]
    partial = merge_partials(fn, [fn.lift(v, i) for i, v in enumerate(data)])
    result = fn.finalize(partial)
    assert result["total"] == 6
    assert result["underflow"] == 1
    assert result["overflow"] == 1
    assert result["counts"][0] == 1  # [0, 10)
    assert result["counts"][1] == 2  # [10, 20)
    assert result["counts"][9] == 1  # [90, 100)


def test_empty_histogram() -> None:
    fn = Histogram(0.0, 10.0, buckets=5)
    result = fn.finalize(None)
    assert result["total"] == 0
    assert result["approx_median"] is None


def test_approx_median_centers_on_mass() -> None:
    fn = Histogram(0.0, 100.0, buckets=10)
    data = [42.0] * 9 + [90.0]
    partial = merge_partials(fn, [fn.lift(v, i) for i, v in enumerate(data)])
    median = fn.finalize(partial)["approx_median"]
    assert 40.0 <= median <= 50.0


def test_validation() -> None:
    with pytest.raises(ValueError):
        Histogram(0.0, 10.0, buckets=0)
    with pytest.raises(ValueError):
        Histogram(10.0, 10.0)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-50, max_value=150, allow_nan=False),
        min_size=1,
        max_size=40,
    )
)
def test_merge_order_invariant(values) -> None:
    fn = Histogram(0.0, 100.0, buckets=7)
    partials = [fn.lift(v, i) for i, v in enumerate(values)]
    forward = merge_partials(fn, partials)
    backward = merge_partials(fn, list(reversed(partials)))
    assert forward == backward
    assert fn.finalize(forward)["total"] == len(values)


def test_histogram_over_cluster() -> None:
    cluster = MoaraCluster(40, seed=103)
    for rank, node_id in enumerate(cluster.node_ids):
        cluster.set_attribute(node_id, "cpu", float(rank * 2.5))
        cluster.set_attribute(node_id, "g", rank % 2 == 0)
    query = Query(
        attr="cpu",
        function=Histogram(0.0, 100.0, buckets=4),
        predicate=parse_predicate("g = true"),
    )
    result = cluster.query(query)
    assert result.value["total"] == 20
    assert sum(result.value["counts"]) + result.value["overflow"] == 20
