"""End-to-end query correctness over simulated deployments."""

from __future__ import annotations

import pytest

from repro.core import MoaraCluster
from repro.core.query import Query
from repro.core.aggregation import get_function
from repro.core.parser import parse_predicate


@pytest.fixture(scope="module")
def cluster() -> MoaraCluster:
    """A 64-node deployment with a varied attribute population."""
    c = MoaraCluster(64, seed=10)
    ids = c.node_ids
    for rank, node_id in enumerate(ids):
        c.set_attribute(node_id, "rank", rank)
        c.set_attribute(node_id, "cpu", float(rank % 10) * 10.0)
        c.set_attribute(node_id, "os", "Linux" if rank % 3 else "BSD")
        c.set_attribute(node_id, "ServiceX", rank < 12)
        c.set_attribute(node_id, "Apache", rank % 2 == 0)
    return c


def expected_members(cluster: MoaraCluster, text: str) -> set[int]:
    return cluster.members_satisfying(parse_predicate(text))


def test_count_group(cluster: MoaraCluster) -> None:
    result = cluster.query("SELECT COUNT(*) WHERE ServiceX = true")
    assert result.value == 12
    assert result.contributors == 12


def test_count_all_nodes(cluster: MoaraCluster) -> None:
    result = cluster.query("SELECT COUNT(*)")
    assert result.value == 64


def test_sum_and_avg(cluster: MoaraCluster) -> None:
    members = expected_members(cluster, "ServiceX = true")
    ranks = {n: list(cluster.node_ids).index(n) for n in members}
    expected_sum = sum(float(r % 10) * 10.0 for r in ranks.values())
    result = cluster.query("SELECT SUM(cpu) WHERE ServiceX = true")
    assert result.value == pytest.approx(expected_sum)
    result = cluster.query("SELECT AVG(cpu) WHERE ServiceX = true")
    assert result.value == pytest.approx(expected_sum / len(members))


def test_min_max(cluster: MoaraCluster) -> None:
    assert cluster.query("SELECT MIN(rank) WHERE os = 'Linux'").value == 1
    assert cluster.query("SELECT MAX(rank) WHERE os = 'BSD'").value == 63


def test_numeric_range_predicate(cluster: MoaraCluster) -> None:
    result = cluster.query("SELECT COUNT(*) WHERE cpu >= 50")
    expected = len(expected_members(cluster, "cpu >= 50"))
    assert result.value == expected


def test_topk(cluster: MoaraCluster) -> None:
    result = cluster.query("SELECT TOP3(rank) WHERE Apache = true")
    values = [v for v, _node in result.value]
    assert values == [62, 60, 58]


def test_enumeration(cluster: MoaraCluster) -> None:
    result = cluster.query("SELECT LIST(os) WHERE rank < 4")
    assert len(result.value) == 4
    assert {os for _n, os in result.value} == {"Linux", "BSD"}


def test_triple_form_query(cluster: MoaraCluster) -> None:
    result = cluster.query("(cpu, max, ServiceX = true and Apache = true)")
    members = expected_members(cluster, "ServiceX = true and Apache = true")
    ranks = {list(cluster.node_ids).index(n) for n in members}
    assert result.value == max(float(r % 10) * 10.0 for r in ranks)


def test_query_object_api(cluster: MoaraCluster) -> None:
    query = Query(
        attr="cpu",
        function=get_function("avg"),
        predicate=parse_predicate("os = 'BSD'"),
    )
    result = cluster.query(query)
    members = expected_members(cluster, "os = 'BSD'")
    ranks = {list(cluster.node_ids).index(n) for n in members}
    assert result.value == pytest.approx(
        sum(float(r % 10) * 10.0 for r in ranks) / len(ranks)
    )


def test_empty_group_returns_identity(cluster: MoaraCluster) -> None:
    result = cluster.query("SELECT COUNT(*) WHERE cpu > 1000")
    assert result.value == 0
    result = cluster.query("SELECT MAX(cpu) WHERE cpu > 1000")
    assert result.value is None
    result = cluster.query("SELECT TOP3(cpu) WHERE cpu > 1000")
    assert result.value == []


def test_missing_query_attribute_contributes_nothing(cluster: MoaraCluster) -> None:
    # Nodes satisfy the predicate but lack the queried attribute.
    result = cluster.query("SELECT SUM(no-such-attr) WHERE ServiceX = true")
    assert result.value is None
    assert result.contributors == 0


def test_not_operator(cluster: MoaraCluster) -> None:
    result = cluster.query("SELECT COUNT(*) WHERE NOT os = 'Linux'")
    expected = len(expected_members(cluster, "os != 'Linux'"))
    assert result.value == expected


def test_repeat_queries_consistent(cluster: MoaraCluster) -> None:
    first = cluster.query("SELECT COUNT(*) WHERE Apache = true")
    for _ in range(3):
        again = cluster.query("SELECT COUNT(*) WHERE Apache = true")
        assert again.value == first.value


def test_latency_and_message_cost_reported(cluster: MoaraCluster) -> None:
    result = cluster.query("SELECT COUNT(*) WHERE ServiceX = true")
    assert result.message_cost > 0
    assert result.latency >= 0.0


def test_single_node_cluster() -> None:
    c = MoaraCluster(1, seed=3)
    c.set_attribute(c.node_ids[0], "x", 5)
    assert c.query("SELECT SUM(x) WHERE x = 5").value == 5
    assert c.query("SELECT COUNT(*)").value == 1


def test_two_node_cluster() -> None:
    c = MoaraCluster(2, seed=4)
    for n in c.node_ids:
        c.set_attribute(n, "x", 1)
    assert c.query("SELECT COUNT(*) WHERE x = 1").value == 2


def test_attribute_updates_reflected_in_answers() -> None:
    c = MoaraCluster(16, seed=5)
    c.set_group("g", c.node_ids[:4])
    assert c.query("SELECT COUNT(*) WHERE g = true").value == 4
    c.set_attribute(c.node_ids[10], "g", True)
    c.run_until_idle()
    assert c.query("SELECT COUNT(*) WHERE g = true").value == 5
    c.set_attribute(c.node_ids[0], "g", False)
    c.run_until_idle()
    assert c.query("SELECT COUNT(*) WHERE g = true").value == 4
