"""Unit and property tests for the predicate AST and CNF conversion."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import PlanningError
from repro.core.predicates import (
    And,
    Comparison,
    Or,
    SimplePredicate,
    TruePredicate,
    evaluate_cnf,
    to_cnf,
)

P = SimplePredicate


def sp(attr: str, op: str, value) -> SimplePredicate:
    return SimplePredicate(attr, Comparison(op), value)


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------


def test_simple_evaluation_all_ops() -> None:
    attrs = {"x": 5}
    assert sp("x", "<", 6).evaluate(attrs)
    assert not sp("x", "<", 5).evaluate(attrs)
    assert sp("x", "<=", 5).evaluate(attrs)
    assert sp("x", ">", 4).evaluate(attrs)
    assert sp("x", ">=", 5).evaluate(attrs)
    assert sp("x", "=", 5).evaluate(attrs)
    assert sp("x", "!=", 4).evaluate(attrs)
    assert not sp("x", "!=", 5).evaluate(attrs)


def test_missing_attribute_is_false() -> None:
    assert not sp("missing", "=", 1).evaluate({"x": 1})
    # ... even for != (the node is simply not in the group).
    assert not sp("missing", "!=", 1).evaluate({"x": 1})


def test_cross_type_comparison_is_false_not_an_error() -> None:
    assert not sp("x", "<", 5).evaluate({"x": "a-string"})
    assert not sp("x", ">=", 5).evaluate({"x": "a-string"})
    # equality across types is well-defined (just unequal)
    assert not sp("x", "=", 5).evaluate({"x": "a-string"})
    assert sp("x", "!=", 5).evaluate({"x": "a-string"})


def test_boolean_and_or() -> None:
    pred = And(sp("a", "=", True), Or(sp("b", ">", 3), sp("c", "=", "x")))
    assert pred.evaluate({"a": True, "b": 5, "c": "y"})
    assert pred.evaluate({"a": True, "b": 0, "c": "x"})
    assert not pred.evaluate({"a": True, "b": 0, "c": "y"})
    assert not pred.evaluate({"a": False, "b": 5, "c": "x"})


def test_true_predicate_matches_everything() -> None:
    assert TruePredicate().evaluate({})
    assert TruePredicate().evaluate({"anything": 1})


def test_empty_connectives_rejected() -> None:
    with pytest.raises(ValueError):
        And()
    with pytest.raises(ValueError):
        Or()


# ----------------------------------------------------------------------
# structure: flattening, canonical forms, negation
# ----------------------------------------------------------------------


def test_nested_connectives_flatten() -> None:
    pred = And(And(sp("a", "=", 1), sp("b", "=", 2)), sp("c", "=", 3))
    assert len(pred.parts) == 3
    pred2 = Or(Or(sp("a", "=", 1)), Or(sp("b", "=", 2)))
    assert len(pred2.parts) == 2


def test_duplicate_parts_removed() -> None:
    pred = And(sp("a", "=", 1), sp("a", "=", 1), sp("b", "=", 2))
    assert len(pred.parts) == 2


def test_canonical_is_order_insensitive() -> None:
    p1 = And(sp("a", "=", 1), sp("b", "=", 2))
    p2 = And(sp("b", "=", 2), sp("a", "=", 1))
    assert p1.canonical() == p2.canonical()


def test_canonical_formats_values() -> None:
    assert sp("svc", "=", True).canonical() == "(svc = true)"
    assert sp("svc", "=", "x y").canonical() == "(svc = 'x y')"
    assert sp("cpu", "<", 50).canonical() == "(cpu < 50)"


def test_negation_flips_operators() -> None:
    assert sp("x", "<", 5).negate() == sp("x", ">=", 5)
    assert sp("x", "=", 5).negate() == sp("x", "!=", 5)
    assert sp("x", ">=", 5).negate() == sp("x", "<", 5)


def test_negation_de_morgan() -> None:
    pred = And(sp("a", "=", 1), sp("b", "<", 2))
    negated = pred.negate()
    assert isinstance(negated, Or)
    assert set(negated.parts) == {sp("a", "!=", 1), sp("b", ">=", 2)}


def test_attributes_and_simple_predicates() -> None:
    pred = Or(And(sp("a", "=", 1), sp("b", "=", 2)), sp("a", ">", 5))
    assert pred.attributes() == {"a", "b"}
    assert pred.simple_predicates() == {
        sp("a", "=", 1),
        sp("b", "=", 2),
        sp("a", ">", 5),
    }


# ----------------------------------------------------------------------
# CNF conversion
# ----------------------------------------------------------------------


def test_cnf_simple() -> None:
    assert to_cnf(sp("a", "=", 1)) == [frozenset([sp("a", "=", 1)])]


def test_cnf_true_predicate_is_empty() -> None:
    assert to_cnf(TruePredicate()) == []


def test_cnf_of_and() -> None:
    clauses = to_cnf(And(sp("a", "=", 1), sp("b", "=", 2)))
    assert sorted(clauses, key=len) == [
        frozenset([sp("a", "=", 1)]),
        frozenset([sp("b", "=", 2)]),
    ] or len(clauses) == 2


def test_cnf_of_or() -> None:
    clauses = to_cnf(Or(sp("a", "=", 1), sp("b", "=", 2)))
    assert clauses == [frozenset([sp("a", "=", 1), sp("b", "=", 2)])]


def test_cnf_paper_figure6_example() -> None:
    """((A or B) and (A or C)) or D  ->  (A or B or D) and (A or C or D)."""
    a, b, c, d = (sp(x, "=", True) for x in "ABCD")
    clauses = to_cnf(Or(And(Or(a, b), Or(a, c)), d))
    assert set(clauses) == {
        frozenset([a, b, d]),
        frozenset([a, c, d]),
    }


def test_cnf_absorption() -> None:
    """(A) and (A or B) -> just (A)."""
    a, b = sp("A", "=", 1), sp("B", "=", 1)
    clauses = to_cnf(And(a, Or(a, b)))
    assert clauses == [frozenset([a])]


def test_cnf_blowup_guard() -> None:
    # OR of many ANDs: CNF size is the product of the AND arities.
    terms = [
        And(sp(f"a{i}", "=", 1), sp(f"b{i}", "=", 1), sp(f"c{i}", "=", 1), sp(f"d{i}", "=", 1))
        for i in range(8)
    ]
    with pytest.raises(PlanningError):
        to_cnf(Or(*terms))


# ----------------------------------------------------------------------
# property: CNF is logically equivalent to the original predicate
# ----------------------------------------------------------------------

attr_names = st.sampled_from(["a", "b", "c"])
simple_preds = st.builds(
    SimplePredicate,
    attr=attr_names,
    op=st.sampled_from(list(Comparison)),
    value=st.integers(min_value=0, max_value=4),
)


def predicates(depth: int):
    if depth == 0:
        return simple_preds
    sub = predicates(depth - 1)
    return st.one_of(
        simple_preds,
        st.builds(lambda ps: And(*ps), st.lists(sub, min_size=1, max_size=3)),
        st.builds(lambda ps: Or(*ps), st.lists(sub, min_size=1, max_size=3)),
    )


assignments = st.dictionaries(
    attr_names, st.integers(min_value=-1, max_value=5), min_size=0, max_size=3
)

# Assignments where every referenced attribute is present.  Needed for the
# complement property: a node *missing* the attribute satisfies neither a
# predicate nor its negation (it is simply in no group), so negation is a
# complement only over nodes that carry the attribute.
complete_assignments = st.fixed_dictionaries(
    {name: st.integers(min_value=-1, max_value=5) for name in ("a", "b", "c")}
)


@settings(max_examples=300, deadline=None)
@given(pred=predicates(2), attrs=assignments)
def test_cnf_equivalent_to_original(pred, attrs) -> None:
    clauses = to_cnf(pred)
    assert evaluate_cnf(clauses, attrs) == pred.evaluate(attrs)


@settings(max_examples=200, deadline=None)
@given(pred=predicates(2), attrs=complete_assignments)
def test_negation_is_complement(pred, attrs) -> None:
    assert pred.negate().evaluate(attrs) == (not pred.evaluate(attrs))


@settings(max_examples=100, deadline=None)
@given(pred=predicates(2))
def test_double_negation_is_identity_semantically(pred) -> None:
    double = pred.negate().negate()
    # Not syntactic identity (flattening may reorder), but same canonical.
    assert double.canonical() == pred.canonical() or True  # semantic check:
    for attrs in ({}, {"a": 0}, {"a": 3, "b": 1}, {"a": 5, "b": 5, "c": 5}):
        assert double.evaluate(attrs) == pred.evaluate(attrs)
