"""Unit tests for the query-language parser."""

from __future__ import annotations

import pytest

from repro.core.aggregation import Average, Maximum, TopK
from repro.core.errors import ParseError, UnknownAggregateError
from repro.core.parser import parse_predicate, parse_query
from repro.core.predicates import And, Comparison, Or, SimplePredicate, TruePredicate


def test_basic_select() -> None:
    q = parse_query("SELECT AVG(Mem-Util) WHERE ServiceX = true")
    assert q.attr == "Mem-Util"
    assert isinstance(q.function, Average)
    assert q.predicate == SimplePredicate("ServiceX", Comparison.EQ, True)


def test_select_keyword_optional() -> None:
    q = parse_query("max(CPU-Usage) where ServiceX = true")
    assert q.attr == "CPU-Usage"
    assert isinstance(q.function, Maximum)


def test_no_where_targets_all_nodes() -> None:
    q = parse_query("SELECT COUNT(*)")
    assert q.attr == "*"
    assert isinstance(q.predicate, TruePredicate)
    assert q.targets_all_nodes()


def test_paper_intro_query() -> None:
    """"find top-3 loaded hosts where (ServiceX = true) and (Apache = true)"."""
    q = parse_query(
        "SELECT TOP3(Load) WHERE (ServiceX = true) AND (Apache = true)"
    )
    assert isinstance(q.function, TopK)
    assert q.function.k == 3
    assert isinstance(q.predicate, And)
    assert len(q.predicate.parts) == 2


def test_triple_form() -> None:
    q = parse_query("(CPU-Usage, MAX, ServiceX = true)")
    assert q.attr == "CPU-Usage"
    assert isinstance(q.function, Maximum)
    assert q.predicate == SimplePredicate("ServiceX", Comparison.EQ, True)


def test_triple_form_with_composite_predicate() -> None:
    q = parse_query("(Mem-Util, avg, ServiceX = true and Apache = true)")
    assert isinstance(q.predicate, And)


def test_triple_form_star() -> None:
    q = parse_query("(*, count, CPU-Util > 90)")
    assert q.attr == "*"


def test_operators() -> None:
    cases = {
        "a < 1": Comparison.LT,
        "a > 1": Comparison.GT,
        "a <= 1": Comparison.LE,
        "a >= 1": Comparison.GE,
        "a = 1": Comparison.EQ,
        "a == 1": Comparison.EQ,
        "a != 1": Comparison.NE,
        "a <> 1": Comparison.NE,
    }
    for text, op in cases.items():
        pred = parse_predicate(text)
        assert isinstance(pred, SimplePredicate)
        assert pred.op is op


def test_value_types() -> None:
    assert parse_predicate("a = 5").value == 5
    assert parse_predicate("a = 5.5").value == 5.5
    assert parse_predicate("a = -3").value == -3
    assert parse_predicate("a = true").value is True
    assert parse_predicate("a = FALSE").value is False
    assert parse_predicate("a = 'hello world'").value == "hello world"
    assert parse_predicate('a = "dq"').value == "dq"
    assert parse_predicate("a = Linux").value == "Linux"  # bare word


def test_precedence_and_binds_tighter_than_or() -> None:
    pred = parse_predicate("a = 1 or b = 2 and c = 3")
    assert isinstance(pred, Or)
    assert len(pred.parts) == 2
    and_part = next(p for p in pred.parts if isinstance(p, And))
    assert len(and_part.parts) == 2


def test_parentheses_override_precedence() -> None:
    pred = parse_predicate("(a = 1 or b = 2) and c = 3")
    assert isinstance(pred, And)


def test_not_pushed_into_leaves() -> None:
    pred = parse_predicate("not a < 5")
    assert pred == SimplePredicate("a", Comparison.GE, 5)
    pred = parse_predicate("not (a = 1 and b = 2)")
    assert isinstance(pred, Or)
    assert set(pred.parts) == {
        SimplePredicate("a", Comparison.NE, 1),
        SimplePredicate("b", Comparison.NE, 2),
    }
    pred = parse_predicate("not not a = 1")
    assert pred == SimplePredicate("a", Comparison.EQ, 1)


def test_dashed_attribute_names() -> None:
    pred = parse_predicate("CPU-Util < 50")
    assert pred.attr == "CPU-Util"


def test_errors() -> None:
    with pytest.raises(ParseError):
        parse_query("")
    with pytest.raises(ParseError):
        parse_query("SELECT WHERE a = 1")
    with pytest.raises(ParseError):
        parse_query("SELECT COUNT(*) WHERE")
    with pytest.raises(ParseError):
        parse_query("COUNT(*) trailing garbage")
    with pytest.raises(ParseError):
        parse_predicate("a = ")
    with pytest.raises(ParseError):
        parse_predicate("a ! 5")
    with pytest.raises(ParseError):
        parse_predicate("= 5")
    with pytest.raises(ParseError):
        parse_predicate("a = and")
    with pytest.raises(UnknownAggregateError):
        parse_query("SELECT MEDIAN(x) WHERE a = 1")


def test_error_position_reported() -> None:
    try:
        parse_predicate("a @ 5")
    except ParseError as exc:
        assert exc.position == 2
    else:  # pragma: no cover
        raise AssertionError("expected ParseError")


def test_keywords_case_insensitive() -> None:
    q = parse_query("select count(*) WHERE a = 1 AND b = 2 Or c = 3")
    assert isinstance(q.predicate, Or)


def test_keyword_cannot_be_value() -> None:
    with pytest.raises(ParseError):
        parse_predicate("a = where")
