"""State garbage collection (Section 4, "State Maintenance")."""

from __future__ import annotations

from repro.core import MoaraCluster

QUERY = "SELECT COUNT(*) WHERE A = 1"


def build() -> MoaraCluster:
    cluster = MoaraCluster(32, seed=80)
    cluster.set_group("A", cluster.node_ids[:5], 1, 0)
    for _ in range(2):
        cluster.query(QUERY)
    return cluster


def test_gc_refused_while_in_update_state() -> None:
    cluster = build()
    refused = 0
    for node in cluster.nodes.values():
        state = node.states.get("(A = 1)")
        if state is not None and state.adaptor.update:
            assert node.garbage_collect("(A = 1)") is False
            refused += 1
    assert refused > 0


def test_gc_of_no_update_receiving_nodes_is_safe() -> None:
    """Nodes in NO-UPDATE that still receive queries can drop state; the
    next query recreates it and answers stay correct."""
    cluster = build()
    collected = 0
    for node in cluster.nodes.values():
        state = node.states.get("(A = 1)")
        if state is None:
            continue
        if not state.adaptor.update and state.would_receive_queries():
            assert node.garbage_collect("(A = 1)") is True
            collected += 1
    assert cluster.query(QUERY).value == 5
    assert cluster.query(QUERY).value == 5


def test_gc_refused_when_pruned_out() -> None:
    """A node whose parent prunes it must NOT drop state while silent --
    it would never hear queries again and could miss becoming relevant."""
    cluster = build()
    for node in cluster.nodes.values():
        state = node.states.get("(A = 1)")
        if state is None:
            continue
        if not state.adaptor.update and not state.would_receive_queries():
            assert node.garbage_collect("(A = 1)") is False


def test_gc_unknown_predicate() -> None:
    cluster = build()
    node = cluster.nodes[cluster.node_ids[0]]
    assert node.garbage_collect("(no-such-pred = 1)") is False


def test_answers_correct_after_mass_gc_and_churn() -> None:
    cluster = build()
    for node in cluster.nodes.values():
        node.garbage_collect("(A = 1)")
    # Group changes while many nodes have no state at all.
    cluster.set_group("A", cluster.node_ids[10:22], 1, 0)
    cluster.run_until_idle()
    assert cluster.query(QUERY).value == 12
