"""Unit tests for the dynamic-maintenance adaptation policy (Figure 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adapt import AdaptationConfig, Adaptor, MaintenancePolicy


def adaptor(k_update: int = 1, k_no_update: int = 3, policy=MaintenancePolicy.ADAPTIVE) -> Adaptor:
    return Adaptor(
        AdaptationConfig(policy=policy, k_update=k_update, k_no_update=k_no_update)
    )


def test_starts_in_no_update() -> None:
    """Procedure 2: "in the beginning, a node receives every query"."""
    assert adaptor().update is False


def test_always_update_policy_pins_true() -> None:
    a = adaptor(policy=MaintenancePolicy.ALWAYS_UPDATE)
    assert a.update is True
    for _ in range(10):
        a.record_change()
    assert a.update is True


def test_never_update_policy_pins_false() -> None:
    a = adaptor(policy=MaintenancePolicy.NEVER_UPDATE)
    for _ in range(10):
        a.record_query(contributing=False)
    assert a.update is False


def test_query_moves_to_update() -> None:
    """Figure 4(b): (NO-UPDATE, NO-SAT) + query -> UPDATE (2*qn > c)."""
    a = adaptor(k_update=1, k_no_update=1)
    flipped = a.record_query(contributing=False)
    assert flipped and a.update is True


def test_change_moves_to_no_update() -> None:
    """Figure 4(b): a change in UPDATE with k_UPDATE=1 -> NO-UPDATE."""
    a = adaptor(k_update=1, k_no_update=1)
    a.record_query(contributing=False)  # enter UPDATE
    flipped = a.record_change()
    assert flipped and a.update is False


def test_sat_node_receiving_queries_stays_no_update() -> None:
    """Figure 4(b): with k=1, (UPDATE, SAT) is unreachable -- a node that
    contributes receives queries anyway, so sending updates buys nothing
    (2*qn = 0 = c: no transition)."""
    a = adaptor(k_update=1, k_no_update=1)
    assert a.record_query(contributing=True) is False
    assert a.update is False


def test_paper_example_update_node_goes_silent_on_change() -> None:
    """"for kUPDATE = 1, when a node in UPDATE undergoes a local change,
    it immediately switches to NO-UPDATE, and sends no more messages"."""
    a = adaptor(k_update=1, k_no_update=3)
    a.record_query(contributing=False)  # enter UPDATE
    assert a.update is True
    assert a.record_change() is True  # window of 1: [change] -> 0 < 1
    assert a.update is False


def test_no_update_with_default_window_needs_queries_to_dominate() -> None:
    a = adaptor(k_update=1, k_no_update=3)
    # Alternate change/query: within a window of 3, 2*qn vs c hovers.
    a.record_change()  # window [c]: 2*0 < 1 -> stays NO-UPDATE
    assert a.update is False
    a.record_query(contributing=False)  # [c, q]: 2*1 > 1 -> UPDATE
    assert a.update is True


def test_equality_means_no_transition() -> None:
    # Construct 2*qn == c exactly: window [q, c, c] with k_no_update=3.
    a = adaptor(k_update=10, k_no_update=3)
    a.record_query(contributing=False)
    assert a.update is True  # 2 > 0
    # k_update=10 window: add changes until 2*qn < c flips it back.
    a.record_change()  # [q, c]: 2 > 1, stays UPDATE
    assert a.update is True
    a.record_change()  # [q, c, c]: 2*1 == 2 -> no change (hysteresis-free)
    assert a.update is True
    a.record_change()  # [q, c, c, c]: 2 < 3 -> NO-UPDATE
    assert a.update is False


def test_missed_queries_count_as_qn() -> None:
    """Sequence-number gaps from pruned periods feed qn (Section 4)."""
    a = adaptor(k_update=1, k_no_update=3)
    a.record_query(contributing=False)
    # Three changes with k_update=1: flip to NO-UPDATE.
    a.record_change()
    assert a.update is False
    # A query with a gap of 5 missed queries: qn dominates instantly.
    a.record_query(contributing=True, missed=5)
    assert a.update is True


def test_missed_gap_capped_at_window() -> None:
    a = adaptor(k_update=2, k_no_update=2)
    a.record_query(contributing=False, missed=10_000)  # must not blow up
    qn, qs, c = a.counts()
    assert qn + qs + c <= 2


def test_counts_reflect_current_window() -> None:
    a = adaptor(k_update=2, k_no_update=4)
    a.record_query(contributing=True)
    a.record_query(contributing=False)
    a.record_change()
    qn, qs, c = a.counts()  # UPDATE state after queries: window = last 2
    assert a.update is True
    assert (qn, qs, c) == (1, 0, 1)


def test_window_length_validation() -> None:
    with pytest.raises(ValueError):
        AdaptationConfig(k_update=0)
    with pytest.raises(ValueError):
        AdaptationConfig(k_no_update=0)


class _ReferenceAdaptor:
    """An independent, deliberately naive re-implementation of Procedure 2
    used as an oracle: keep the full event history, look at the last-k slice
    for the *current* state, apply the 2*qn-vs-c rule once per event."""

    def __init__(self, k_update: int, k_no_update: int) -> None:
        self.k_update = k_update
        self.k_no_update = k_no_update
        self.update = False
        self.history: list[str] = []
        self.maxlen = max(k_update, k_no_update)

    def record(self, event: str) -> None:
        self.history.append(event)
        self.history = self.history[-self.maxlen :]
        k = self.k_update if self.update else self.k_no_update
        window = self.history[-k:]
        qn = window.count("qn")
        c = window.count("c")
        if 2 * qn < c:
            self.update = False
        elif 2 * qn > c:
            self.update = True


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("q"), st.booleans()),
            st.tuples(st.just("c"), st.booleans()),
        ),
        max_size=50,
    ),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
)
def test_matches_reference_model(events, k_update, k_no_update) -> None:
    """The windowed deque bookkeeping agrees with a naive oracle."""
    a = adaptor(k_update=k_update, k_no_update=k_no_update)
    ref = _ReferenceAdaptor(k_update, k_no_update)
    for kind, flag in events:
        if kind == "q":
            a.record_query(contributing=flag)
            ref.record("qs" if flag else "qn")
        else:
            a.record_change()
            ref.record("c")
        assert a.update == ref.update
