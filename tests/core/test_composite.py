"""Composite-query execution (Section 6): covers, probes, deduplication."""

from __future__ import annotations

import pytest

from repro.core import MoaraCluster
from repro.core import messages as mt
from repro.core.frontend import FrontendConfig, ProbePolicy
from repro.core.planner import SemanticContext
from repro.core.relations import Relation
from repro.core.parser import parse_predicate


@pytest.fixture
def cluster() -> MoaraCluster:
    c = MoaraCluster(96, seed=40)
    ids = c.node_ids
    c.set_group("big", ids[:40])  # 40 members
    c.set_group("small", ids[30:38])  # 8 members, overlapping big by 8
    c.set_group("other", ids[60:80])  # disjoint from small
    for rank, node_id in enumerate(ids):
        c.set_attribute(node_id, "load", float(rank))
    return c


def test_intersection_queries_single_cheaper_group(cluster: MoaraCluster) -> None:
    # Warm both trees so size probes see real costs.
    cluster.query("SELECT COUNT(*) WHERE big = true")
    cluster.query("SELECT COUNT(*) WHERE small = true")
    result = cluster.query("SELECT COUNT(*) WHERE big = true AND small = true")
    assert result.value == 8
    assert result.cover == ["(small = true)"]  # the cheaper group
    assert result.probed_costs["(small = true)"] < result.probed_costs["(big = true)"]


def test_intersection_correct_even_when_probing_cold_trees(cluster: MoaraCluster) -> None:
    result = cluster.query("SELECT COUNT(*) WHERE big = true AND other = true")
    assert result.value == len(
        cluster.members_satisfying("big = true AND other = true")
    )


def test_union_contacts_all_groups_and_deduplicates(cluster: MoaraCluster) -> None:
    """Nodes in both groups must answer exactly once (Section 6.2)."""
    result = cluster.query("SELECT COUNT(*) WHERE big = true OR small = true")
    # big ∪ small = 40 (small ⊂ big by construction)
    assert result.value == 40
    assert set(result.cover) == {"(big = true)", "(small = true)"}


def test_union_sum_not_double_counted(cluster: MoaraCluster) -> None:
    expected = sum(
        float(rank)
        for rank, node_id in enumerate(cluster.node_ids)
        if node_id in cluster.members_satisfying("big = true OR small = true")
    )
    result = cluster.query("SELECT SUM(load) WHERE big = true OR small = true")
    assert result.value == pytest.approx(expected)


def test_complex_nested_query(cluster: MoaraCluster) -> None:
    text = (
        "SELECT COUNT(*) WHERE (big = true OR other = true) "
        "AND (small = true OR other = true)"
    )
    expected = len(
        cluster.members_satisfying(
            "(big = true OR other = true) AND (small = true OR other = true)"
        )
    )
    result = cluster.query(text)
    assert result.value == expected


def test_unsatisfiable_query_short_circuits(cluster: MoaraCluster) -> None:
    before = cluster.stats.total_messages
    result = cluster.query("SELECT COUNT(*) WHERE load < 10 AND load > 90")
    assert result.value == 0
    assert result.short_circuited
    assert cluster.stats.total_messages == before  # zero network traffic


def test_numeric_range_composite(cluster: MoaraCluster) -> None:
    result = cluster.query("SELECT COUNT(*) WHERE load >= 10 AND load < 20")
    assert result.value == 10
    # The planner must have chosen exactly one of the two range groups.
    assert len(result.cover) == 1


def test_probe_traffic_accounted() -> None:
    """With caching disabled, every composite query pays 2 probes (paper)."""
    c = MoaraCluster(96, seed=40, frontend_config=FrontendConfig.uncached())
    ids = c.node_ids
    c.set_group("big", ids[:40])
    c.set_group("small", ids[30:38])
    c.query("SELECT COUNT(*) WHERE big = true")
    before = c.stats.snapshot()
    c.query("SELECT COUNT(*) WHERE big = true AND small = true")
    delta = c.stats.delta_since(before)
    assert delta.messages_of(mt.SIZE_PROBE) == 2
    assert delta.messages_of(mt.SIZE_RESPONSE) == 2


def test_size_cache_skips_probes_on_repeat(cluster: MoaraCluster) -> None:
    """Warm single-group queries feed the size cache via piggybacked costs,
    so a later composite query needs no probe round-trip at all."""
    cluster.query("SELECT COUNT(*) WHERE big = true")
    cluster.query("SELECT COUNT(*) WHERE small = true")
    before = cluster.stats.snapshot()
    result = cluster.query("SELECT COUNT(*) WHERE big = true AND small = true")
    delta = cluster.stats.delta_since(before)
    assert delta.messages_of(mt.SIZE_PROBE) == 0
    assert result.value == 8
    assert result.probe_latency == 0.0
    # The cover choice still used real (cached) cost estimates.
    assert result.probed_costs["(small = true)"] < result.probed_costs["(big = true)"]


def test_probe_policy_never(cluster_factory=None) -> None:
    c = MoaraCluster(48, seed=41, probe_policy=ProbePolicy.NEVER)
    c.set_group("x", c.node_ids[:5])
    c.set_group("y", c.node_ids[3:20])
    result = c.query("SELECT COUNT(*) WHERE x = true AND y = true")
    assert result.value == 2
    assert c.stats.by_type.get(mt.SIZE_PROBE, 0) == 0


def test_probe_policy_multi_cover_skips_pure_unions() -> None:
    c = MoaraCluster(
        48,
        seed=42,
        probe_policy=ProbePolicy.MULTI_COVER,
        frontend_config=FrontendConfig.uncached(),
    )
    c.set_group("x", c.node_ids[:5])
    c.set_group("y", c.node_ids[10:20])
    c.query("SELECT COUNT(*) WHERE x = true OR y = true")
    assert c.stats.by_type.get(mt.SIZE_PROBE, 0) == 0
    c.query("SELECT COUNT(*) WHERE x = true AND y = true")
    assert c.stats.by_type.get(mt.SIZE_PROBE, 0) == 2


def test_user_semantics_prune_cover(cluster: MoaraCluster) -> None:
    semantics = SemanticContext()
    semantics.declare(
        parse_predicate("small = true"),
        parse_predicate("other = true"),
        Relation.DISJOINT,
    )
    c = MoaraCluster(48, seed=43, semantics=semantics)
    c.set_group("small", c.node_ids[:4])
    c.set_group("other", c.node_ids[10:20])
    before = c.stats.total_messages
    result = c.query("SELECT COUNT(*) WHERE small = true AND other = true")
    assert result.value == 0
    assert result.short_circuited
    assert c.stats.total_messages == before


def test_three_way_intersection(cluster: MoaraCluster) -> None:
    result = cluster.query(
        "SELECT COUNT(*) WHERE big = true AND small = true AND other = true"
    )
    assert result.value == 0  # small and other are disjoint by construction
    assert len(result.cover) <= 1


def test_results_match_ground_truth_on_many_shapes(cluster: MoaraCluster) -> None:
    texts = [
        "big = true AND (small = true OR other = true)",
        "(big = true AND small = true) OR other = true",
        "big = true OR (small = true AND other = true)",
        "NOT big = true AND load < 50",
        "(load < 30 OR load >= 70) AND big = true",
    ]
    for text in texts:
        expected = len(cluster.members_satisfying(text))
        result = cluster.query(f"SELECT COUNT(*) WHERE {text}")
        assert result.value == expected, text
