"""Tests for derived attributes (Section 3.1's query-model extension)."""

from __future__ import annotations

import pytest

from repro.core import AttributeStore, DerivedAttribute, MoaraCluster, install_derived


def test_derived_materializes_and_tracks_inputs() -> None:
    store = AttributeStore({"cpu-available": 4.0, "cpu-needed": 2.0})
    derived = DerivedAttribute(
        "can-host-app",
        inputs=["cpu-available", "cpu-needed"],
        program=lambda a: a["cpu-available"] > a["cpu-needed"],
    )
    install_derived(store, derived)
    assert store["can-host-app"] is True
    store.set("cpu-available", 1.0)
    assert store["can-host-app"] is False
    store.set("cpu-needed", 0.5)
    assert store["can-host-app"] is True


def test_missing_inputs_mean_undefined() -> None:
    store = AttributeStore({"a": 1})
    derived = DerivedAttribute(
        "ratio", inputs=["a", "b"], program=lambda at: at["a"] / at["b"]
    )
    install_derived(store, derived)
    assert "ratio" not in store  # KeyError inside the program -> undefined
    store.set("b", 4)
    assert store["ratio"] == 0.25
    store.delete("b")
    assert "ratio" not in store


def test_unrelated_changes_do_not_recompute() -> None:
    calls = {"n": 0}

    def program(attrs):
        calls["n"] += 1
        return attrs["x"] * 2

    store = AttributeStore({"x": 1})
    install_derived(store, DerivedAttribute("double", ["x"], program))
    baseline = calls["n"]
    store.set("unrelated", 99)
    assert calls["n"] == baseline


def test_validation() -> None:
    with pytest.raises(ValueError):
        DerivedAttribute("d", [], lambda a: 1)
    with pytest.raises(ValueError):
        DerivedAttribute("d", ["d"], lambda a: 1)


def test_derived_group_predicate_end_to_end() -> None:
    """The paper's example: att = (CPU-Available > CPU-Needed-For-App-A),
    then att used as a group predicate."""
    cluster = MoaraCluster(32, seed=95)
    derived = DerivedAttribute(
        "fits-app-a",
        inputs=["cpu-available"],
        program=lambda a: a["cpu-available"] > 2.0,
    )
    for rank, node_id in enumerate(cluster.node_ids):
        node = cluster.nodes[node_id]
        node.attributes.set("cpu-available", float(rank % 8))
        install_derived(node.attributes, derived)
    expected = sum(1 for rank in range(32) if float(rank % 8) > 2.0)
    result = cluster.query("SELECT COUNT(*) WHERE fits-app-a = true")
    assert result.value == expected

    # Changing a *base* attribute moves nodes between derived groups --
    # ordinary group churn as far as the protocol is concerned.
    victim = cluster.node_ids[0]  # rank 0: cpu 0.0, not in group
    cluster.set_attribute(victim, "cpu-available", 7.0)
    cluster.run_until_idle()
    result = cluster.query("SELECT COUNT(*) WHERE fits-app-a = true")
    assert result.value == expected + 1


def test_derived_as_query_attribute() -> None:
    """A derived value can also be the aggregated quantity."""
    cluster = MoaraCluster(16, seed=96)
    headroom = DerivedAttribute(
        "headroom",
        inputs=["capacity", "load"],
        program=lambda a: a["capacity"] - a["load"],
    )
    for rank, node_id in enumerate(cluster.node_ids):
        node = cluster.nodes[node_id]
        node.attributes.set("capacity", 10.0)
        node.attributes.set("load", float(rank))
        install_derived(node.attributes, headroom)
    result = cluster.query("SELECT SUM(headroom) WHERE headroom > 0")
    expected = sum(10.0 - r for r in range(16) if 10.0 - r > 0)
    assert result.value == pytest.approx(expected)
