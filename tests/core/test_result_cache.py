"""Unit tests for the root-side ResultCache and InflightTable."""

from __future__ import annotations

import pytest

from repro.core.moara_node import MoaraConfig
from repro.core.parser import parse_query
from repro.core.result_cache import (
    InflightTable,
    ResultCache,
    execution_key,
)


def _key(n: int = 0) -> tuple:
    return ("cpu", "avg", f"(pred-{n})", f"(group-{n})")


def _put(cache: ResultCache, key: tuple, now: float, partial=7) -> None:
    cache.put(
        key,
        partial,
        contributors=3,
        group_key=key[3],
        attrs=frozenset({"cpu", "g"}),
        now=now,
    )


class TestExecutionKey:
    def test_single_group_cover_is_reusable(self) -> None:
        query = parse_query("SELECT COUNT(*) WHERE g = true")
        key = execution_key(query, "(g = true)", ("(g = true)",))
        assert key is not None
        assert key[3] == "(g = true)"

    def test_multi_group_cover_is_not_reusable(self) -> None:
        """Multi-tree covers dedup contributions per query id across
        trees (Section 6.2); partials from different executions must not
        be mixed, so they are never cached."""
        query = parse_query("SELECT COUNT(*) WHERE g = true OR h = true")
        cover = ("(g = true)", "(h = true)")
        assert execution_key(query, "(g = true)", cover) is None

    def test_unannounced_cover_is_not_reusable(self) -> None:
        query = parse_query("SELECT COUNT(*) WHERE g = true")
        assert execution_key(query, "(g = true)", None) is None

    def test_key_distinguishes_function_parameters(self) -> None:
        from repro.core.aggregation import Histogram
        from repro.core.parser import parse_predicate
        from repro.core.query import Query

        pred = parse_predicate("g = true")
        wide = Query(attr="cpu", function=Histogram(0.0, 100.0, 4), predicate=pred)
        narrow = Query(attr="cpu", function=Histogram(0.0, 10.0, 4), predicate=pred)
        cover = (pred.canonical(),)
        assert execution_key(wide, cover[0], cover) != execution_key(
            narrow, cover[0], cover
        )


class TestResultCache:
    def test_hit_within_ttl(self) -> None:
        cache = ResultCache(ttl=5.0)
        _put(cache, _key(), now=0.0)
        entry = cache.get(_key(), now=4.9)
        assert entry is not None
        assert entry.partial == 7
        assert entry.contributors == 3
        assert cache.stats.hits == 1

    def test_miss_after_ttl(self) -> None:
        cache = ResultCache(ttl=5.0)
        _put(cache, _key(), now=0.0)
        assert cache.get(_key(), now=5.1) is None
        assert cache.stats.expirations == 1
        assert cache.stats.misses == 1
        assert len(cache) == 0

    def test_disabled_cache_never_stores(self) -> None:
        cache = ResultCache(ttl=0.0)
        assert not cache.enabled
        _put(cache, _key(), now=0.0)
        assert len(cache) == 0
        assert cache.get(_key(), now=0.0) is None

    def test_lru_eviction(self) -> None:
        cache = ResultCache(ttl=100.0, maxsize=2)
        _put(cache, _key(0), now=0.0)
        _put(cache, _key(1), now=0.0)
        cache.get(_key(0), now=0.0)  # refresh 0; 1 becomes LRU
        _put(cache, _key(2), now=0.0)
        assert cache.get(_key(1), now=0.0) is None
        assert cache.get(_key(0), now=0.0) is not None
        assert cache.stats.evictions == 1

    def test_hot_eviction_keeps_the_most_hit_entry(self) -> None:
        """Metrics-driven eviction: the hot dashboard's entry survives a
        scan that would evict it under plain LRU."""
        cache = ResultCache(ttl=100.0, maxsize=2, eviction="hot")
        _put(cache, _key(0), now=0.0)
        _put(cache, _key(1), now=0.0)
        for _ in range(3):
            cache.get(_key(1), now=0.0)  # key 1 is the hot dashboard
        _put(cache, _key(2), now=0.0)  # overflow: evicts cold key 0
        assert cache.get(_key(0), now=0.0) is None
        assert cache.get(_key(1), now=0.0) is not None
        assert cache.stats.evictions == 1

    def test_hot_eviction_prefers_the_newcomer_when_all_cold(self) -> None:
        """With no hits anywhere, 'hot' degenerates to insertion order
        (min() over equal counts takes the oldest entry)."""
        cache = ResultCache(ttl=100.0, maxsize=2, eviction="hot")
        _put(cache, _key(0), now=0.0)
        _put(cache, _key(1), now=0.0)
        _put(cache, _key(2), now=0.0)
        assert cache.get(_key(0), now=0.0) is None
        assert cache.get(_key(1), now=0.0) is not None

    def test_hit_counts_track_gets_and_evictions(self) -> None:
        cache = ResultCache(ttl=100.0, maxsize=2, eviction="hot")
        _put(cache, _key(0), now=0.0)
        cache.get(_key(0), now=0.0)
        cache.get(_key(0), now=0.0)
        assert cache.hit_counts()[_key(0)] == 2
        _put(cache, _key(1), now=0.0)
        _put(cache, _key(2), now=0.0)  # evicts key 1 (0 hits)
        assert _key(1) not in cache.hit_counts()

    def test_unknown_eviction_policy_is_rejected(self) -> None:
        with pytest.raises(ValueError, match="eviction"):
            ResultCache(ttl=1.0, eviction="random")
        with pytest.raises(ValueError, match="result_cache_eviction"):
            MoaraConfig(result_cache_eviction="random")

    def test_invalidate_attr_drops_fed_entries_only(self) -> None:
        cache = ResultCache(ttl=100.0)
        _put(cache, _key(0), now=0.0)
        cache.put(
            _key(1),
            1,
            contributors=1,
            group_key="(h = true)",
            attrs=frozenset({"mem"}),
            now=0.0,
        )
        assert cache.invalidate_attr("cpu") == 1
        assert cache.get(_key(0), now=0.0) is None
        assert cache.get(_key(1), now=0.0) is not None
        assert cache.stats.invalidations == 1

    def test_invalidate_group_drops_that_tree(self) -> None:
        cache = ResultCache(ttl=100.0)
        _put(cache, _key(0), now=0.0)
        _put(cache, _key(1), now=0.0)
        assert cache.invalidate_group(_key(0)[3]) == 1
        assert cache.get(_key(0), now=0.0) is None
        assert cache.get(_key(1), now=0.0) is not None

    def test_clear_drops_everything_and_counts(self) -> None:
        cache = ResultCache(ttl=100.0)
        _put(cache, _key(0), now=0.0)
        _put(cache, _key(1), now=0.0)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.stats.invalidations == 2

    def test_purge_drops_only_expired(self) -> None:
        cache = ResultCache(ttl=5.0)
        _put(cache, _key(0), now=0.0)
        _put(cache, _key(1), now=3.0)
        assert cache.purge(now=6.0) == 1
        assert len(cache) == 1

    def test_served_partials_do_not_alias_the_cache(self) -> None:
        """Mutable aggregates (top-k tuples, histogram buckets) handed to
        one consumer must not corrupt later hits."""
        cache = ResultCache(ttl=100.0)
        _put(cache, _key(), now=0.0, partial=[3, 2, 1])
        first = cache.get(_key(), now=0.0)
        first.partial.clear()
        second = cache.get(_key(), now=0.0)
        assert second.partial == [3, 2, 1]

    def test_stats_reset_clears_invalidations(self) -> None:
        cache = ResultCache(ttl=100.0)
        _put(cache, _key(), now=0.0)
        cache.clear()
        cache.stats.reset()
        assert cache.stats.invalidations == 0
        assert cache.stats.lookups == 0


class TestInflightTable:
    def test_subscribe_requires_open_execution(self) -> None:
        table = InflightTable()
        assert not table.subscribe(_key(), 5, "q1")
        table.open(_key())
        assert table.subscribe(_key(), 5, "q1")
        assert table.subscriptions == 1

    def test_close_returns_subscribers_in_order(self) -> None:
        table = InflightTable()
        table.open(_key())
        table.subscribe(_key(), 5, "q1")
        table.subscribe(_key(), 6, "q2")
        assert table.close(_key()) == [(5, "q1"), (6, "q2")]
        assert _key() not in table
        assert len(table) == 0

    def test_close_unknown_key_is_empty(self) -> None:
        assert InflightTable().close(_key()) == []

    def test_open_is_idempotent(self) -> None:
        table = InflightTable()
        table.open(_key())
        table.subscribe(_key(), 5, "q1")
        table.open(_key())
        assert table.close(_key()) == [(5, "q1")]
