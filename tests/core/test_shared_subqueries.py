"""Shared sub-query fan-out: identical concurrent queries batch into one
sub-query per cover group, and every subscriber gets the correct answer."""

from __future__ import annotations

import pytest

from repro.core import MoaraCluster
from repro.core import messages as mt
from repro.core.frontend import FrontendConfig


@pytest.fixture
def cluster() -> MoaraCluster:
    c = MoaraCluster(64, seed=80)
    c.set_group("g", c.node_ids[:12])
    c.set_group("h", c.node_ids[8:20])
    for rank, node_id in enumerate(c.node_ids):
        c.set_attribute(node_id, "load", float(rank))
    return c


def test_identical_concurrent_queries_share_one_subquery(
    cluster: MoaraCluster,
) -> None:
    before = cluster.stats.snapshot()
    results = cluster.query_concurrent(
        ["SELECT COUNT(*) WHERE g = true"] * 5
    )
    delta = cluster.stats.delta_since(before)
    # One cover group, five subscribers -> exactly one FRONTEND_QUERY.
    assert delta.messages_of(mt.FRONTEND_QUERY) == 1
    assert delta.messages_of(mt.FRONTEND_RESPONSE) == 1
    assert [r.value for r in results] == [12] * 5
    assert [r.shared for r in results] == [False, True, True, True, True]


def test_union_share_is_one_subquery_per_cover_group(
    cluster: MoaraCluster,
) -> None:
    before = cluster.stats.snapshot()
    results = cluster.query_concurrent(
        ["SELECT COUNT(*) WHERE g = true OR h = true"] * 3
    )
    delta = cluster.stats.delta_since(before)
    # Two cover groups shared by three queries -> two FRONTEND_QUERYs.
    assert delta.messages_of(mt.FRONTEND_QUERY) == 2
    expected = len(cluster.members_satisfying("g = true OR h = true"))
    assert [r.value for r in results] == [expected] * 3


def test_fanned_out_results_match_sequential_baseline(
    cluster: MoaraCluster,
) -> None:
    text = "SELECT SUM(load) WHERE g = true OR h = true"
    concurrent = cluster.query_concurrent([text] * 4)

    sequential = MoaraCluster(64, seed=80)
    sequential.set_group("g", sequential.node_ids[:12])
    sequential.set_group("h", sequential.node_ids[8:20])
    for rank, node_id in enumerate(sequential.node_ids):
        sequential.set_attribute(node_id, "load", float(rank))
    baseline = sequential.query(text)

    for result in concurrent:
        assert result.value == pytest.approx(baseline.value)
        assert result.contributors == baseline.contributors


def test_different_queries_do_not_share(cluster: MoaraCluster) -> None:
    before = cluster.stats.snapshot()
    results = cluster.query_concurrent(
        [
            "SELECT COUNT(*) WHERE g = true",
            "SELECT SUM(load) WHERE g = true",  # same group, different query
        ]
    )
    delta = cluster.stats.delta_since(before)
    assert delta.messages_of(mt.FRONTEND_QUERY) == 2
    assert results[0].value == 12
    assert results[1].value == pytest.approx(sum(range(12)))
    assert not results[0].shared and not results[1].shared


def test_sharing_disabled_dispatches_per_query() -> None:
    c = MoaraCluster(
        48, seed=81, frontend_config=FrontendConfig(share_subqueries=False)
    )
    c.set_group("g", c.node_ids[:10])
    before = c.stats.snapshot()
    results = c.query_concurrent(["SELECT COUNT(*) WHERE g = true"] * 4)
    delta = c.stats.delta_since(before)
    assert delta.messages_of(mt.FRONTEND_QUERY) == 4
    assert [r.value for r in results] == [10] * 4


def test_concurrent_composite_queries_share_probes(
    cluster: MoaraCluster,
) -> None:
    """Cold composite queries deduplicate the probe round-trip too."""
    before = cluster.stats.snapshot()
    results = cluster.query_concurrent(
        ["SELECT COUNT(*) WHERE g = true AND h = true"] * 3
    )
    delta = cluster.stats.delta_since(before)
    # Two candidate groups probed once each, not once per query.
    assert delta.messages_of(mt.SIZE_PROBE) == 2
    assert delta.messages_of(mt.FRONTEND_QUERY) == 1
    expected = len(cluster.members_satisfying("g = true AND h = true"))
    assert [r.value for r in results] == [expected] * 3


def test_marginal_message_accounting_sums_to_tagged_traffic(
    cluster: MoaraCluster,
) -> None:
    """The initiator pays the shared sub-query's traffic; joiners pay 0, so
    per-query costs sum to the real query-plane message total."""
    before = cluster.stats.snapshot()
    results = cluster.query_concurrent(["SELECT COUNT(*) WHERE g = true"] * 5)
    delta = cluster.stats.delta_since(before)
    query_plane = delta.messages_of(
        mt.SIZE_PROBE,
        mt.SIZE_RESPONSE,
        mt.FRONTEND_QUERY,
        mt.FRONTEND_RESPONSE,
        mt.QUERY,
        mt.QUERY_RESPONSE,
    )
    assert sum(r.message_cost for r in results) == query_plane
    initiator, *joiners = results
    assert initiator.message_cost > 0
    assert all(j.message_cost == 0 for j in joiners)


def test_query_ledger_records_every_completion(cluster: MoaraCluster) -> None:
    cluster.query_concurrent(["SELECT COUNT(*) WHERE g = true"] * 3)
    cluster.query("SELECT COUNT(*)")
    log = cluster.stats.query_log
    assert len(log) == 4
    assert sum(1 for r in log if r.shared) == 2
    assert cluster.stats.avg_messages_per_query() > 0


def test_interleaved_share_and_callback_delivery(cluster: MoaraCluster) -> None:
    """Callback consumers and polled consumers can share one sub-query."""
    seen: list[float] = []
    cluster.frontend.submit(
        "SELECT COUNT(*) WHERE g = true", callback=lambda r: seen.append(r.value)
    )
    qid = cluster.query_async("SELECT COUNT(*) WHERE g = true")
    cluster.run_until_idle()
    assert seen == [12]
    assert cluster.result(qid).value == 12


def test_lost_subquery_does_not_poison_future_queries() -> None:
    """A sub-query lost to a crashed root must not wedge later identical
    queries: the stale share/probe entries are bypassed, not joined."""
    c = MoaraCluster(24, seed=82)
    c.set_group("g", c.node_ids[:8])
    c.set_group("h", c.node_ids[4:12])
    text = "SELECT COUNT(*) WHERE g = true AND h = true"
    first = c.query(text)  # warms trees; identifies the roots involved

    # Crash the g-tree root so the next submission's messages drop,
    # then let the failed query go idle unanswered.
    from repro.core.moara_node import group_attribute
    from repro.core.parser import parse_predicate
    victim = c.overlay.root(
        c.overlay.space.hash_name(group_attribute(parse_predicate("g = true")))
    )
    c.network.crash(victim)
    qid = c.query_async(text)
    c.run_until_idle()
    assert c.result(qid) is None  # the in-flight query was lost

    # Recover; a fresh identical query must dispatch anew and succeed.
    c.network.recover(victim)
    c.run(61.0)  # idle past the size-cache TTL so stale costs expire too
    result = c.query(text)
    assert result.value == first.value


def test_parameterized_functions_with_same_name_do_not_share() -> None:
    """Two histograms differing only in bounds share a display name; the
    share key must still tell them apart (function signature, not name)."""
    from repro.core import Query
    from repro.core.aggregation import Histogram
    from repro.core.parser import parse_predicate

    c = MoaraCluster(32, seed=84)
    c.set_group("g", c.node_ids[:10])
    for rank, node_id in enumerate(c.node_ids):
        c.set_attribute(node_id, "cpu", float(rank))
    pred = parse_predicate("g = true")
    wide = Query(attr="cpu", function=Histogram(0.0, 100.0, 4), predicate=pred)
    narrow = Query(attr="cpu", function=Histogram(0.0, 10.0, 4), predicate=pred)
    wide_result, narrow_result = c.query_concurrent([wide, narrow])
    assert wide_result.value["edges"] != narrow_result.value["edges"]
    assert not narrow_result.shared  # distinct shares despite equal names


def test_fanned_out_mutable_values_do_not_alias() -> None:
    """Each subscriber owns its result value; mutating one must not
    corrupt another's."""
    c = MoaraCluster(32, seed=85)
    c.set_group("g", c.node_ids[:10])
    for rank, node_id in enumerate(c.node_ids):
        c.set_attribute(node_id, "cpu", float(rank))
    first, second = c.query_concurrent(["SELECT TOP3(cpu) WHERE g = true"] * 2)
    assert second.shared
    expected = list(second.value)
    first.value.clear()  # a consumer trashing its own copy
    assert second.value == expected


def test_detected_root_failure_resolves_inflight_queries() -> None:
    """Section 7 at the front-end: once the failure detector removes a
    crashed tree root, stuck sub-queries resolve with a NULL answer and
    the front-end returns to idle (no leaked shares, probes, or tags)."""
    c = MoaraCluster(24, seed=83)
    c.set_group("g", c.node_ids[:8])
    c.query("SELECT COUNT(*) WHERE g = true")  # warm

    from repro.core.moara_node import group_attribute
    from repro.core.parser import parse_predicate
    root = c.overlay.root(
        c.overlay.space.hash_name(group_attribute(parse_predicate("g = true")))
    )
    qids = [c.query_async("SELECT COUNT(*) WHERE g = true") for _ in range(3)]
    c.crash_node(root, detection_delay=0.1)
    c.run_until_idle()
    results = [c.result(qid) for qid in qids]
    # The queries terminate (possibly with partial data) instead of hanging.
    assert all(r is not None for r in results)
    assert c.frontend.is_idle()
    assert not c.stats.per_query  # all tags drained


def test_frontend_idle_after_concurrent_burst(cluster: MoaraCluster) -> None:
    cluster.query_concurrent(
        ["SELECT COUNT(*) WHERE g = true AND h = true"] * 4
    )
    assert cluster.frontend.is_idle()
    assert cluster.frontend.inflight == 0
