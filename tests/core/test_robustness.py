"""Edge-case and robustness tests across the protocol stack."""

from __future__ import annotations

import random

import pytest

from repro.core import MoaraCluster
from repro.core.moara_node import group_attribute
from repro.core.predicates import And, Comparison, SimplePredicate, TruePredicate
from repro.pastry.idspace import IdSpace


def test_group_attribute_mapping() -> None:
    assert group_attribute(SimplePredicate("cpu", Comparison.LT, 5)) == "cpu"
    assert group_attribute(TruePredicate()) == "*"
    with pytest.raises(TypeError):
        group_attribute(
            And(
                SimplePredicate("a", Comparison.EQ, 1),
                SimplePredicate("b", Comparison.EQ, 2),
            )
        )


def test_same_attribute_different_predicates_share_one_tree() -> None:
    """Section 3.2: trees are keyed by the *attribute*; multiple predicates
    on the same attribute share the root but keep separate prune state."""
    cluster = MoaraCluster(48, seed=110)
    for rank, node_id in enumerate(cluster.node_ids):
        cluster.set_attribute(node_id, "cpu", float(rank))
    low = cluster.query("SELECT COUNT(*) WHERE cpu < 10")
    high = cluster.query("SELECT COUNT(*) WHERE cpu >= 40")
    assert low.value == 10
    assert high.value == 8
    key = cluster.overlay.space.hash_name("cpu")
    root = cluster.overlay.root(key)
    root_node = cluster.nodes[root]
    assert "(cpu < 10)" in root_node.states
    assert "(cpu >= 40)" in root_node.states
    assert (
        root_node.states["(cpu < 10)"].tree_key
        == root_node.states["(cpu >= 40)"].tree_key
    )


def test_many_concurrent_groups() -> None:
    """Dozens of active predicates on one overlay stay independent."""
    cluster = MoaraCluster(64, seed=111)
    rng = random.Random(112)
    expected = {}
    for i in range(24):
        size = rng.randrange(1, 20)
        members = rng.sample(cluster.node_ids, size)
        cluster.set_group(f"grp{i}", members)
        expected[f"grp{i}"] = size
    for name, size in expected.items():
        assert (
            cluster.query(f"SELECT COUNT(*) WHERE {name} = true").value
            == size
        )
    # And again, exercising the pruned trees.
    for name, size in expected.items():
        assert (
            cluster.query(f"SELECT COUNT(*) WHERE {name} = true").value
            == size
        )


def test_query_for_unknown_attribute() -> None:
    cluster = MoaraCluster(16, seed=113)
    result = cluster.query("SELECT COUNT(*) WHERE never-set = true")
    assert result.value == 0
    result = cluster.query("SELECT SUM(never-set)")
    assert result.value is None


def test_root_of_fresh_attribute_is_consistent() -> None:
    """The frontend and the nodes must agree on tree roots for attributes
    no one has ever populated."""
    cluster = MoaraCluster(32, seed=114)
    for _ in range(3):
        assert cluster.query("SELECT COUNT(*) WHERE ghost = 1").value == 0


def test_interleaved_queries_different_groups() -> None:
    cluster = MoaraCluster(48, seed=115)
    cluster.set_group("a", cluster.node_ids[:7])
    cluster.set_group("b", cluster.node_ids[7:19])
    qids = []
    for _ in range(4):
        qids.append(cluster.query_async("SELECT COUNT(*) WHERE a = true"))
        qids.append(cluster.query_async("SELECT COUNT(*) WHERE b = true"))
    cluster.run_until_idle()
    values = [cluster.result(qid).value for qid in qids]
    assert values == [7, 12] * 4


def test_zero_size_space_configurations() -> None:
    """Exotic but valid ID-space shapes route correctly."""
    for bits, digit_bits in ((8, 8), (16, 16), (12, 3)):
        space = IdSpace(bits=bits, digit_bits=digit_bits)
        cluster = MoaraCluster(8, seed=116, space=space)
        cluster.set_group("x", cluster.node_ids[:3])
        assert cluster.query("SELECT COUNT(*) WHERE x = true").value == 3


def test_churn_between_probe_and_query() -> None:
    """A root change between the size probe and the sub-query must not
    lose the answer (the new root re-resolves the query)."""
    cluster = MoaraCluster(40, seed=117)
    cluster.set_group("a", cluster.node_ids[:6])
    cluster.set_group("b", cluster.node_ids[6:16])
    cluster.query("SELECT COUNT(*) WHERE a = true AND b = true")
    # Remove the current root of group a's tree, then immediately query.
    root_a = cluster.overlay.root(cluster.overlay.space.hash_name("a"))
    was_member = root_a in cluster.members_satisfying("a = true")
    cluster.leave_node(root_a)
    expected = 6 - int(was_member)
    result = cluster.query("SELECT COUNT(*) WHERE a = true")
    assert result.value == expected


def test_bool_vs_int_attribute_values_distinct() -> None:
    """`True` and `1` are distinct attribute states for change detection
    but compare equal in predicates (Python semantics, documented)."""
    cluster = MoaraCluster(8, seed=118)
    node = cluster.node_ids[0]
    assert cluster.set_attribute(node, "flag", True) is True
    assert cluster.set_attribute(node, "flag", 1) is True  # type change
    assert cluster.set_attribute(node, "flag", 1) is False  # no change


def test_cluster_validation() -> None:
    with pytest.raises(ValueError):
        MoaraCluster(0)


def test_leave_all_but_one_node() -> None:
    cluster = MoaraCluster(10, seed=119)
    cluster.set_group("g", cluster.node_ids[:10])
    survivor = cluster.node_ids[0]
    for node_id in cluster.node_ids[1:]:
        cluster.leave_node(node_id)
    cluster.run_until_idle()
    result = cluster.query("SELECT COUNT(*) WHERE g = true")
    assert result.value == 1
    assert survivor in cluster.overlay


def test_long_predicate_chain() -> None:
    cluster = MoaraCluster(32, seed=120)
    for i in range(8):
        cluster.set_group(f"s{i}", cluster.node_ids[: 20 - i])
    text = " AND ".join(f"s{i} = true" for i in range(8))
    result = cluster.query(f"SELECT COUNT(*) WHERE {text}")
    assert result.value == 13  # the smallest group's size (20 - 7)
    assert len(result.cover) == 1  # planner picked a single group
