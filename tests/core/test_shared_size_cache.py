"""The shared group-size tier: read-through, single-writer, one probe
per group cluster-wide.

Covers the tentpole's shared-cache contract: all shards read one tier;
a probe another shard already sent in the same burst is joined instead
of duplicated (and its answer is published to every waiter); a live
entry is only overwritten by the group's consistent-hash owner shard;
and disabling the tier reproduces the PR 2 private-cache behaviour.
"""

from __future__ import annotations

import pytest

from repro.core import MoaraCluster
from repro.core import messages as mt
from repro.core.moara_node import group_attribute
from repro.core.parser import parse_predicate
from repro.core.plan_cache import SharedGroupSizeCache
from repro.core.shard_router import FrontendShardRouter


# ----------------------------------------------------------------------
# unit behaviour
# ----------------------------------------------------------------------


def _tier(num_shards: int = 2, ttl: float = 30.0) -> SharedGroupSizeCache:
    return SharedGroupSizeCache(
        router=FrontendShardRouter(num_shards=num_shards), ttl=ttl
    )


def test_reads_are_shared_across_shards() -> None:
    tier = _tier()
    owner = tier.router.owner("(g = true)")
    assert tier.put("(g = true)", 12.0, now=0.0, shard=owner)
    for shard in (0, 1):
        assert tier.get("(g = true)", now=1.0, shard=shard) == 12.0
    assert tier.stats.hits == 2
    assert tier.stats_for(0).hits + tier.stats_for(1).hits == 2


def test_single_writer_rule() -> None:
    tier = _tier()
    key = "(g = true)"
    owner = tier.router.owner(key)
    other = 1 - owner
    # Anyone may fill a cold entry...
    assert tier.put(key, 10.0, now=0.0, shard=other)
    # ...but only the owner overwrites a live one.
    assert not tier.put(key, 99.0, now=1.0, shard=other)
    assert tier.single_writer_drops == 1
    assert tier.get(key, now=1.0, shard=owner) == 10.0
    assert tier.put(key, 11.0, now=1.0, shard=owner)
    assert tier.get(key, now=1.0, shard=other) == 11.0
    # After expiry the non-owner may fill again (cold fill).
    assert tier.put(key, 12.0, now=100.0, shard=other)


def test_probe_registry_joins_only_other_shards_in_same_burst() -> None:
    tier = _tier(num_shards=3)
    seen: list[tuple[str, float]] = []

    def callback(key, cost, now):
        seen.append((key, cost))

    tier.open_probe("(g = true)", shard=0, tag="pr-1", seq=7)
    # Same shard never joins its own probe (local dedup handles that).
    assert not tier.join_probe("(g = true)", 0, 7, callback)
    # A different burst (older probe, possibly lost) is not joinable.
    assert not tier.join_probe("(g = true)", 1, 8, callback)
    # Another shard in the same burst subscribes.
    assert tier.join_probe("(g = true)", 1, 7, callback)
    assert tier.join_probe("(g = true)", 2, 7, callback)
    assert tier.probe_joins == 2
    # Resolution publishes once and releases every waiter.
    callbacks = tier.resolve_probe("(g = true)", "pr-1", 24.0, now=1.0)
    for cb in callbacks:
        cb("(g = true)", 24.0, 1.0)
    assert seen == [("(g = true)", 24.0), ("(g = true)", 24.0)]
    assert tier.publishes == 1
    assert tier.get("(g = true)", now=1.0, shard=2) == 24.0
    # The registry entry is gone; a second resolve is not ours (None:
    # the caller falls back to a plain put).
    assert tier.resolve_probe("(g = true)", "pr-1", 24.0, now=1.0) is None


def test_stale_prober_cannot_resolve_a_replacement_probe() -> None:
    tier = _tier()
    tier.open_probe("(g = true)", shard=0, tag="pr-old", seq=1)
    tier.open_probe("(g = true)", shard=1, tag="pr-new", seq=9)
    assert tier.resolve_probe("(g = true)", "pr-old", 5.0, now=0.0) is None
    assert tier.resolve_probe("(g = true)", "pr-new", 6.0, now=0.0) == []


def test_replacement_probe_inherits_parked_waiters() -> None:
    """Waiters subscribed to a probe that gets superseded by a later
    burst's probe are re-homed, not stranded: the replacement's answer
    releases them."""
    tier = _tier(num_shards=3)
    seen = []
    tier.open_probe("(g = true)", shard=0, tag="pr-old", seq=1)
    assert tier.join_probe(
        "(g = true)", 1, 1, lambda k, c, t: seen.append(c)
    )
    # A later burst replaces the (possibly lost) probe...
    tier.open_probe("(g = true)", shard=2, tag="pr-new", seq=5)
    # ...whose late answer no longer resolves anything (plain put path).
    assert tier.resolve_probe("(g = true)", "pr-old", 5.0, now=0.0) is None
    # The replacement's answer releases the re-homed waiter.
    callbacks = tier.resolve_probe("(g = true)", "pr-new", 6.0, now=0.0)
    for cb in callbacks:
        cb("(g = true)", 6.0, 0.0)
    assert seen == [6.0]


# ----------------------------------------------------------------------
# cluster integration
# ----------------------------------------------------------------------


def _cluster(**kwargs) -> MoaraCluster:
    defaults = dict(num_nodes=64, seed=98, num_frontends=2)
    defaults.update(kwargs)
    c = MoaraCluster(**defaults)
    c.set_group("a", c.node_ids[:10])
    c.set_group("b", c.node_ids[5:20])
    c.set_group("g", c.node_ids[10:30])
    return c


def _root_of(c: MoaraCluster, name: str) -> int:
    return c.overlay.root(
        c.overlay.space.hash_name(
            group_attribute(parse_predicate(f"{name} = true"))
        )
    )


#: two distinct composite queries that share the group ``g``.
TEXT_A = "SELECT COUNT(*) WHERE a = true AND g = true"
TEXT_B = "SELECT COUNT(*) WHERE b = true AND g = true"


def test_one_probe_per_group_cluster_wide() -> None:
    """Two shards needing the same group's size in one burst send one
    wire probe for it, not one per shard."""
    c = _cluster()
    qid_a = c.frontends[0].submit(TEXT_A)  # probes a and g
    qid_b = c.frontends[1].submit(TEXT_B)  # probes b, joins g
    c.run_until_idle()
    assert c.stats.by_type[mt.SIZE_PROBE] == 3  # a, b, g -- not 4
    assert c.stats.shared_probe_joins == 1
    assert c.shared_sizes is not None
    assert c.shared_sizes.probe_joins == 1
    result_a = c.frontends[0].results.pop(qid_a)
    result_b = c.frontends[1].results.pop(qid_b)
    assert result_a.value == len(c.members_satisfying(TEXT_A.split("WHERE ")[1]))
    assert result_b.value == len(c.members_satisfying(TEXT_B.split("WHERE ")[1]))
    # The joining query still saw g's cost (learned via the publish).
    assert "(g = true)" in result_b.probed_costs
    assert all(fe.is_idle() for fe in c.frontends)


def test_private_caches_probe_per_shard() -> None:
    """shared_size_cache=False reproduces PR 2: each shard probes."""
    c = _cluster(shared_size_cache=False)
    assert c.shared_sizes is None
    c.frontends[0].submit(TEXT_A)
    c.frontends[1].submit(TEXT_B)
    c.run_until_idle()
    assert c.stats.by_type[mt.SIZE_PROBE] == 4  # a, g, b, g again
    assert c.stats.shared_probe_joins == 0


def test_publish_warms_every_shard() -> None:
    """After one shard's query, the other shard plans probe-free."""
    c = _cluster()
    c.frontends[0].submit(TEXT_A)
    c.run_until_idle()
    probes = c.stats.by_type[mt.SIZE_PROBE]
    qid = c.frontends[1].submit(TEXT_B)
    c.run_until_idle()
    # Shard 1 only probed b: a and g were already in the shared tier
    # (g from shard 0's probe publish, both refreshed by piggyback).
    assert c.stats.by_type[mt.SIZE_PROBE] == probes + 1
    assert c.frontends[1].results.pop(qid) is not None


def test_null_resolution_releases_cross_shard_waiters() -> None:
    """If the probed root departs, the prober resolves NULL and every
    waiting shard's queries complete instead of hanging."""
    c = _cluster()
    g_root = _root_of(c, "g")
    if g_root in {_root_of(c, "a"), _root_of(c, "b")}:
        pytest.skip("group trees share a root for this seed")
    qid_a = c.frontends[0].submit(TEXT_A)
    qid_b = c.frontends[1].submit(TEXT_B)
    assert c.stats.shared_probe_joins == 1
    c.leave_node(g_root)  # the shared probe's target departs
    c.run_until_idle()
    assert qid_a in c.frontends[0].results
    assert qid_b in c.frontends[1].results
    assert all(fe.is_idle() for fe in c.frontends)


def test_overlay_churn_feeds_the_shared_tier_once() -> None:
    c = _cluster()
    assert c.shared_sizes is not None
    policy = c.shared_sizes.ttl_policy
    assert policy is not None
    before = policy.tracker.rate("(g = true)", c.now)
    c.join_node()
    after = policy.tracker.rate("(g = true)", c.now)
    assert after > before


def test_uncached_frontends_keep_seed_probe_behaviour() -> None:
    from repro.core import FrontendConfig

    c = _cluster(frontend_config=FrontendConfig.uncached())
    for _ in range(2):
        c.query(TEXT_A)
    # No caching, no dedup: both submissions probed both groups.
    assert c.stats.by_type[mt.SIZE_PROBE] == 4
    assert c.stats.shared_probe_joins == 0
