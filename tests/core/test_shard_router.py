"""Shard-routing determinism and consistent-hashing properties.

The satellite checklist pins: same query text -> same shard across runs,
router instances, and submission orderings; syntactic variants of one
query route identically; adding a shard moves keys only onto the new
shard (consistent hashing); the ``limit`` walk agrees with the full ring
for keys already inside the range.
"""

from __future__ import annotations

import pytest

from repro.core import MoaraCluster
from repro.core.shard_router import (
    FrontendShardRouter,
    canonical_query_text,
)

KEYS = [f"SELECT COUNT(*) WHERE S{i} = true" for i in range(200)]


def test_same_key_same_shard_across_router_instances() -> None:
    a = FrontendShardRouter(num_shards=8)
    b = FrontendShardRouter(num_shards=8)
    assert [a.shard_for(k) for k in KEYS] == [b.shard_for(k) for k in KEYS]


def test_routing_is_independent_of_query_order() -> None:
    router = FrontendShardRouter(num_shards=4)
    forward = {k: router.shard_for(k) for k in KEYS}
    backward = {k: router.shard_for(k) for k in reversed(KEYS)}
    assert forward == backward


def test_syntactic_variants_share_a_shard() -> None:
    router = FrontendShardRouter(num_shards=8)
    variants = [
        "SELECT COUNT(*) WHERE a = true AND b = true",
        "SELECT COUNT(*) WHERE b = true AND a = true",
    ]
    texts = {canonical_query_text(v) for v in variants}
    assert len(texts) == 1  # one canonical identity...
    shards = {router.route(v) for v in variants}
    assert len(shards) == 1  # ...hence one shard


def test_distinct_queries_spread_over_shards() -> None:
    router = FrontendShardRouter(num_shards=8)
    counts = [0] * 8
    for key in KEYS:
        counts[router.shard_for(key)] += 1
    assert all(count > 0 for count in counts)  # nobody idle
    assert max(counts) < len(KEYS) // 2  # nobody dominant


def test_add_shard_moves_keys_only_onto_the_new_shard() -> None:
    router = FrontendShardRouter(num_shards=4)
    before = {k: router.shard_for(k) for k in KEYS}
    new_shard = router.add_shard()
    assert new_shard == 4
    moved = 0
    for key in KEYS:
        after = router.shard_for(key)
        if after != before[key]:
            assert after == new_shard  # never reshuffled between old shards
            moved += 1
    # Consistent hashing: roughly 1/N of the space remaps, not all of it.
    assert 0 < moved < len(KEYS) // 2


def test_limit_agrees_with_full_ring_inside_the_range() -> None:
    router = FrontendShardRouter(num_shards=8)
    for key in KEYS:
        full = router.shard_for(key)
        if full < 4:
            assert router.shard_for(key, limit=4) == full
        else:
            assert router.shard_for(key, limit=4) < 4


def test_empty_router_and_bad_limit_are_rejected() -> None:
    with pytest.raises(ValueError):
        FrontendShardRouter().shard_for("x")
    router = FrontendShardRouter(num_shards=2)
    with pytest.raises(ValueError):
        router.shard_for("x", limit=0)
    with pytest.raises(ValueError):
        FrontendShardRouter(num_shards=-1)
    with pytest.raises(ValueError):
        FrontendShardRouter(replicas=0)


# ----------------------------------------------------------------------
# cluster integration
# ----------------------------------------------------------------------


def _cluster(num_frontends: int) -> MoaraCluster:
    c = MoaraCluster(32, seed=95, num_frontends=num_frontends)
    c.set_group("g", c.node_ids[:8])
    c.set_group("h", c.node_ids[4:14])
    return c


def test_cluster_query_routes_by_canonical_text() -> None:
    c = _cluster(num_frontends=4)
    text = "SELECT COUNT(*) WHERE g = true"
    expected = c.router.shard_for(canonical_query_text(text))
    assert c.query(text).value == 8
    assert dict(c.stats.shard_queries) == {expected: 1}
    # The commuted form of a composite lands on the same shard.
    composite = "SELECT COUNT(*) WHERE g = true AND h = true"
    commuted = "SELECT COUNT(*) WHERE h = true AND g = true"
    c.query(composite)
    c.query(commuted)
    assert c.router.route(composite) == c.router.route(commuted)


def test_concurrent_shard_routing_keeps_identical_queries_local() -> None:
    """A batch of identical queries lands on one shard regardless of
    batch position, so sub-query dedup stays front-end-local."""
    c = _cluster(num_frontends=4)
    text = "SELECT COUNT(*) WHERE g = true"
    results = c.query_concurrent([text] * 8)
    assert [r.value for r in results] == [8] * 8
    active = [s for s, n in c.stats.shard_queries.items() if n]
    assert len(active) == 1
    assert c.stats.shard_queries[active[0]] == 8
    # All eight shared one dispatched sub-query (batched on one shard).
    assert sum(1 for r in results if r.shared) == 7


def test_routing_stable_across_cluster_instances_and_orderings() -> None:
    texts = [f"SELECT COUNT(*) WHERE S{i} = true" for i in range(12)]
    c1 = _cluster(num_frontends=4)
    c2 = _cluster(num_frontends=4)
    assert [c1.router.route(t) for t in texts] == [
        c2.router.route(t) for t in texts
    ]
    assert [c1.router.route(t) for t in reversed(texts)] == list(
        reversed([c1.router.route(t) for t in texts])
    )


def test_query_pinning_still_works() -> None:
    c = _cluster(num_frontends=3)
    c.query("SELECT COUNT(*) WHERE g = true", frontend=2)
    assert dict(c.stats.shard_queries) == {2: 1}
