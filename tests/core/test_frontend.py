"""Front-end behaviour: async API, callbacks, result bookkeeping."""

from __future__ import annotations

import pytest

from repro.core import MoaraCluster, QueryResult
from repro.core.errors import ParseError


@pytest.fixture
def cluster() -> MoaraCluster:
    c = MoaraCluster(32, seed=70)
    c.set_group("g", c.node_ids[:6])
    return c


def test_async_submit_and_poll(cluster: MoaraCluster) -> None:
    qid = cluster.query_async("SELECT COUNT(*) WHERE g = true")
    assert cluster.result(qid) is None  # not yet executed
    cluster.run_until_idle()
    result = cluster.result(qid)
    assert result is not None and result.value == 6
    assert cluster.result(qid) is None  # consumed


def test_callback_invoked(cluster: MoaraCluster) -> None:
    seen: list[QueryResult] = []
    cluster.frontend.submit("SELECT COUNT(*) WHERE g = true", callback=seen.append)
    cluster.run_until_idle()
    assert len(seen) == 1
    assert seen[0].value == 6


def test_multiple_outstanding_queries(cluster: MoaraCluster) -> None:
    qids = [
        cluster.query_async("SELECT COUNT(*) WHERE g = true"),
        cluster.query_async("SELECT COUNT(*) WHERE g = false"),
        cluster.query_async("SELECT COUNT(*)"),
    ]
    cluster.run_until_idle()
    values = [cluster.result(qid).value for qid in qids]
    assert values == [6, 26, 32]


def test_is_idle_tracks_outstanding_work(cluster: MoaraCluster) -> None:
    assert cluster.frontend.is_idle()
    cluster.query_async("SELECT COUNT(*) WHERE g = true")
    assert not cluster.frontend.is_idle()
    cluster.run_until_idle()
    assert cluster.frontend.is_idle()


def test_parse_error_propagates(cluster: MoaraCluster) -> None:
    with pytest.raises(ParseError):
        cluster.query("THIS IS NOT A QUERY @@@")


def test_query_ids_unique(cluster: MoaraCluster) -> None:
    qid1 = cluster.query_async("SELECT COUNT(*)")
    qid2 = cluster.query_async("SELECT COUNT(*)")
    assert qid1 != qid2


def test_interleaved_queries_do_not_cross_answers(cluster: MoaraCluster) -> None:
    """Two identical-shape queries in flight must not merge each other's
    partials (dedup is per query id)."""
    for node_id in cluster.node_ids:
        cluster.set_attribute(node_id, "v", 1.0)
    qid1 = cluster.query_async("SELECT SUM(v) WHERE g = true")
    qid2 = cluster.query_async("SELECT SUM(v) WHERE g = true")
    cluster.run_until_idle()
    assert cluster.result(qid1).value == pytest.approx(6.0)
    assert cluster.result(qid2).value == pytest.approx(6.0)
