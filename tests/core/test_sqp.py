"""Separate-query-plane behaviour (Section 5).

The key claims: with threshold > 1 the number of nodes touched by a query
approaches O(m) for an m-member group -- independent of the system size --
while threshold = 1 (the plain pruned tree) pays O(m log N); and raising
the threshold trades query cost against update cost.

These tests use 1-bit routing digits (binary Pastry) so trees are deep
enough for the distinction to show at test-sized overlays, and spread group
members uniformly over the ring (adjacent IDs share ancestor paths and
would understate internal-node costs).
"""

from __future__ import annotations

import random


from repro.core import MoaraCluster
from repro.core import messages as mt
from repro.core.moara_node import MoaraConfig
from repro.pastry.idspace import IdSpace

QUERY = "SELECT COUNT(*) WHERE A = 1"
DEEP_SPACE = IdSpace(bits=32, digit_bits=1)


def build(num_nodes: int, threshold: int, group: int, seed: int = 30) -> MoaraCluster:
    cluster = MoaraCluster(
        num_nodes,
        seed=seed,
        config=MoaraConfig(threshold=threshold),
        space=DEEP_SPACE,
    )
    members = random.Random(seed + 1).sample(cluster.node_ids, group)
    cluster.set_group("A", members, 1, 0)
    return cluster


def warm_to_steady_state(cluster: MoaraCluster, max_rounds: int = 40) -> None:
    """Query repeatedly until per-query cost stabilizes.

    Pruning information propagates one tree level per query (a query only
    reaches nodes that earlier queries registered), so convergence takes
    about `tree height` rounds.
    """
    last_cost = None
    stable = 0
    for _ in range(max_rounds):
        cost = cluster.query(QUERY).message_cost
        if cost == last_cost:
            stable += 1
            if stable >= 2:
                return
        else:
            stable = 0
        last_cost = cost


def steady_state_query_messages(cluster: MoaraCluster) -> int:
    """QUERY+FRONTEND_QUERY messages for one steady-state query."""
    warm_to_steady_state(cluster)
    before = cluster.stats.snapshot()
    result = cluster.query(QUERY)
    assert result.value == len(cluster.members_satisfying("A = 1"))
    delta = cluster.stats.delta_since(before)
    return delta.messages_of(mt.QUERY, mt.FRONTEND_QUERY)


def test_sqp_bounds_query_cost_by_group_size() -> None:
    """Section 5 overhead analysis: <= 2m nodes receive the query,
    independent of system size."""
    group = 8
    for num_nodes in (64, 256, 1024):
        cluster = build(num_nodes, threshold=2, group=group)
        query_messages = steady_state_query_messages(cluster)
        assert query_messages <= 2 * group + 1, (
            f"N={num_nodes}: {query_messages} query messages"
        )


def test_plain_pruned_tree_grows_with_system_size() -> None:
    """threshold=1 keeps O(m log N) internal nodes on the query path."""
    group = 8
    costs = {
        num_nodes: steady_state_query_messages(build(num_nodes, 1, group))
        for num_nodes in (128, 2048)
    }
    assert costs[2048] > costs[128], costs
    # but still far below a global broadcast
    assert costs[2048] < 2048 // 8


def test_sqp_beats_plain_tree() -> None:
    group, num_nodes = 8, 512
    sqp = steady_state_query_messages(build(num_nodes, 2, group))
    plain = steady_state_query_messages(build(num_nodes, 1, group))
    assert sqp < plain, (sqp, plain)


def test_steady_state_sends_no_maintenance() -> None:
    """With zero churn, repeated queries eventually stop producing any
    status traffic (all update costs were paid on the first queries)."""
    cluster = build(256, threshold=2, group=8)
    warm_to_steady_state(cluster)
    before = cluster.stats.snapshot()
    cluster.query(QUERY)
    delta = cluster.stats.delta_since(before)
    assert delta.messages_of(mt.STATUS_UPDATE, mt.STATE_SYNC) == 0


def test_higher_threshold_increases_update_traffic() -> None:
    """Section 5: "Having a high value of threshold ... comes at the expense
    of a higher update traffic"."""
    group, num_nodes = 32, 256
    updates = {}
    for threshold in (2, 16):
        cluster = build(num_nodes, threshold=threshold, group=group, seed=31)
        warm_to_steady_state(cluster)
        before = cluster.stats.snapshot()
        # Rotate group membership to generate updateSet churn.
        members = sorted(cluster.members_satisfying("A = 1"))
        outsiders = [n for n in cluster.node_ids if n not in set(members)]
        for old, new in zip(members, outsiders[:group]):
            cluster.set_attribute(old, "A", 0)
            cluster.set_attribute(new, "A", 1)
        cluster.run_until_idle()
        updates[threshold] = cluster.stats.delta_since(before).messages_of(
            mt.STATUS_UPDATE
        )
    assert updates[16] >= updates[2], updates


def test_query_still_correct_across_thresholds() -> None:
    for threshold in (1, 2, 4, 16):
        cluster = build(128, threshold=threshold, group=10, seed=32)
        for _ in range(3):
            assert cluster.query(QUERY).value == 10


def test_paper_figure5_updatesets() -> None:
    """Figure 5's invariants for threshold=1, nodes in UPDATE state:

    * an internal node with a non-empty qSet reports {own id} (threshold=1
      collapses immediately), so queries walk the tree edge by edge;
    * nodes whose subtree is empty of satisfying nodes report PRUNE.
    """
    cluster = build(64, threshold=1, group=6, seed=33)
    cluster.query(QUERY)
    cluster.query(QUERY)
    key = cluster.overlay.space.hash_name("A")
    tree = cluster.overlay.tree(key)
    pred_key = "(A = 1)"
    for node_id, node in cluster.nodes.items():
        state = node.states.get(pred_key)
        if state is None or node_id == tree.root:
            continue
        if not state.adaptor.update:
            continue
        children = cluster.overlay.children(node_id, key)
        if state.q_set(children):
            assert state.computed_update_set == frozenset([node_id])
        else:
            assert state.computed_update_set == frozenset()


def test_bypassed_nodes_forward_sets_upward() -> None:
    """With threshold=2, a non-satisfying internal node with a single
    satisfying descendant exports that descendant's id instead of its own
    (the short-circuiting of Figure 5)."""
    cluster = build(512, threshold=2, group=4, seed=34)
    for _ in range(4):
        cluster.query(QUERY)
    key = cluster.overlay.space.hash_name("A")
    tree = cluster.overlay.tree(key)
    pred_key = "(A = 1)"
    bypassed = 0
    for node_id, node in cluster.nodes.items():
        state = node.states.get(pred_key)
        if state is None or node_id == tree.root:
            continue
        if state.sent_update_set and node_id not in state.sent_update_set:
            bypassed += 1
            # The exported ids are strictly descendants of this node.
            subtree = set(tree.subtree_nodes(node_id))
            assert set(state.sent_update_set) <= subtree
    assert bypassed > 0, "expected at least one short-circuited internal node"
