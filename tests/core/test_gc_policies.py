"""Tests for the Section 4 garbage-collection policies."""

from __future__ import annotations


from repro.core import (
    IdleTimeoutGC,
    KeepLastKGC,
    LeastFrequentGC,
    MoaraCluster,
    NoGC,
)
from repro.core.moara_node import MoaraConfig


def total_states(cluster: MoaraCluster) -> int:
    return sum(len(node.states) for node in cluster.nodes.values())


def populate(cluster: MoaraCluster, num_groups: int) -> None:
    for i in range(num_groups):
        cluster.set_group(f"g{i}", cluster.node_ids[: 4 + i])


def test_no_gc_keeps_everything() -> None:
    cluster = MoaraCluster(24, seed=90)
    populate(cluster, 4)
    for i in range(4):
        cluster.query(f"SELECT COUNT(*) WHERE g{i} = true")
    before = total_states(cluster)
    for i in range(4):
        cluster.query(f"SELECT COUNT(*) WHERE g{i} = true")
    assert total_states(cluster) >= before


def test_idle_timeout_collects_stale_predicates() -> None:
    config = MoaraConfig(gc_policy_factory=lambda: IdleTimeoutGC(timeout=30.0))
    cluster = MoaraCluster(24, seed=91, config=config)
    populate(cluster, 3)
    for i in range(3):
        cluster.query(f"SELECT COUNT(*) WHERE g{i} = true")
    stale_states = total_states(cluster)
    # Let g0/g1 go idle past the timeout while g2 stays hot.
    for _ in range(4):
        cluster.run(seconds=15.0)
        cluster.query("SELECT COUNT(*) WHERE g2 = true")
    assert total_states(cluster) < stale_states
    # Correctness preserved: stale groups still answer (state recreated).
    assert cluster.query("SELECT COUNT(*) WHERE g0 = true").value == 4
    assert cluster.query("SELECT COUNT(*) WHERE g1 = true").value == 5


def test_keep_last_k_evicts_older_predicates() -> None:
    config = MoaraConfig(gc_policy_factory=lambda: KeepLastKGC(k=2))
    cluster = MoaraCluster(24, seed=92, config=config)
    populate(cluster, 5)
    for i in range(5):
        cluster.query(f"SELECT COUNT(*) WHERE g{i} = true")
    # Repeated queries for the two most recent groups sweep the rest.
    for _ in range(3):
        cluster.query("SELECT COUNT(*) WHERE g3 = true")
        cluster.query("SELECT COUNT(*) WHERE g4 = true")
    root3 = cluster.overlay.root(cluster.overlay.space.hash_name("g3"))
    node = cluster.nodes[root3]
    old_keys = [k for k in node.states if k in ("(g0 = true)", "(g1 = true)")]
    # The hot root for g3 may legitimately keep old state if it is in
    # UPDATE for those predicates; but across the cluster, old predicates
    # must have been swept somewhere.
    swept = sum(
        1
        for n in cluster.nodes.values()
        if "(g0 = true)" not in n.states
    )
    assert swept > 0
    # Answers remain correct after eviction.
    assert cluster.query("SELECT COUNT(*) WHERE g0 = true").value == 4


def test_least_frequent_respects_capacity_pressure() -> None:
    config = MoaraConfig(
        gc_policy_factory=lambda: LeastFrequentGC(capacity=2)
    )
    cluster = MoaraCluster(24, seed=93, config=config)
    populate(cluster, 4)
    # g0 is queried often; g1-g3 once each.
    for _ in range(4):
        cluster.query("SELECT COUNT(*) WHERE g0 = true")
    for i in range(1, 4):
        cluster.query(f"SELECT COUNT(*) WHERE g{i} = true")
    for _ in range(3):
        cluster.query("SELECT COUNT(*) WHERE g0 = true")
    # The frequent predicate survives on the busiest nodes.
    root0 = cluster.overlay.root(cluster.overlay.space.hash_name("g0"))
    assert "(g0 = true)" in cluster.nodes[root0].states
    # All groups still answer correctly.
    for i in range(4):
        expected = 4 + i
        assert (
            cluster.query(f"SELECT COUNT(*) WHERE g{i} = true").value
            == expected
        )


def test_gc_policies_preserve_eventual_completeness_under_churn() -> None:
    config = MoaraConfig(gc_policy_factory=lambda: KeepLastKGC(k=1))
    cluster = MoaraCluster(32, seed=94, config=config)
    cluster.set_group("a", cluster.node_ids[:6])
    cluster.set_group("b", cluster.node_ids[10:14])
    for _round in range(4):
        assert cluster.query("SELECT COUNT(*) WHERE a = true").value == 6
        assert cluster.query("SELECT COUNT(*) WHERE b = true").value == 4
        # churn both groups between queries
        cluster.set_group("a", cluster.node_ids[_round : 6 + _round])
        cluster.set_group("b", cluster.node_ids[10 + _round : 14 + _round])
        cluster.run_until_idle()
    assert cluster.query("SELECT COUNT(*) WHERE a = true").value == 6


def test_policy_unit_behaviour() -> None:
    """Policy bookkeeping in isolation (no cluster)."""

    class FakeNode:
        def __init__(self) -> None:
            self.states = {"p1": 1, "p2": 2, "p3": 3}

        def garbage_collect(self, key: str) -> bool:
            return self.states.pop(key, None) is not None

    node = FakeNode()
    policy = KeepLastKGC(k=1)
    policy.on_query(node, "p1", 0.0)
    policy.on_query(node, "p2", 1.0)
    policy.on_query(node, "p1", 2.0)  # p1 is most recent again
    assert set(policy.collect(node, 2.0)) == {"p2", "p3"}
    assert policy.sweep(node, 2.0) == 2
    assert set(node.states) == {"p1"}

    node = FakeNode()
    lfu = LeastFrequentGC(capacity=2)
    for _ in range(3):
        lfu.on_query(node, "p3", 0.0)
    lfu.on_query(node, "p2", 0.0)
    assert lfu.collect(node, 0.0) == ["p1"]

    node = FakeNode()
    idle = IdleTimeoutGC(timeout=10.0)
    idle.on_query(node, "p1", 0.0)
    idle.on_query(node, "p2", 5.0)
    assert idle.collect(node, 11.0) == ["p1"]
    assert NoGC().collect(node, 100.0) == []
