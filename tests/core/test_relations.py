"""Unit and property tests for semantic-relation inference (Figure 8)."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predicates import Comparison, SimplePredicate
from repro.core.relations import IntervalSet, Relation, relation


def sp(attr: str, op: str, value) -> SimplePredicate:
    return SimplePredicate(attr, Comparison(op), value)


# ----------------------------------------------------------------------
# the paper's Figure 8 rows
# ----------------------------------------------------------------------


def test_figure8_intersection_without_inclusion() -> None:
    assert relation(sp("cpu", "<", 50), sp("cpu", ">", 20)) is Relation.OVERLAP


def test_figure8_equivalence() -> None:
    assert relation(sp("cpu", "<", 50), sp("cpu", "<", 50)) is Relation.EQUIVALENT


def test_figure8_inclusion() -> None:
    assert relation(sp("cpu", "<", 20), sp("cpu", "<", 50)) is Relation.SUBSET
    assert relation(sp("cpu", "<", 50), sp("cpu", "<", 20)) is Relation.SUPERSET
    # the "discontinuous intersection" example (CPU < 50), (CPU = 20):
    assert relation(sp("cpu", "=", 20), sp("cpu", "<", 50)) is Relation.SUBSET


def test_figure8_disjointedness() -> None:
    assert relation(sp("cpu", "<", 50), sp("cpu", ">", 80)) is Relation.DISJOINT


def test_complement_detection() -> None:
    assert relation(sp("cpu", "<", 50), sp("cpu", ">=", 50)) is Relation.COMPLEMENT
    assert relation(sp("cpu", "=", 50), sp("cpu", "!=", 50)) is Relation.COMPLEMENT
    assert relation(sp("cpu", "<=", 50), sp("cpu", ">", 50)) is Relation.COMPLEMENT
    # Disjoint but not complement: 50 itself is uncovered.
    assert relation(sp("cpu", "<", 50), sp("cpu", ">", 50)) is Relation.DISJOINT


def test_memory_example_from_paper() -> None:
    """A = {memory < 2G}, B = {memory < 1G}  =>  B ⊆ A."""
    a = sp("memory", "<", 2_000_000_000)
    b = sp("memory", "<", 1_000_000_000)
    assert relation(b, a) is Relation.SUBSET


# ----------------------------------------------------------------------
# boolean domain
# ----------------------------------------------------------------------


def test_boolean_equivalence_through_negation() -> None:
    assert relation(sp("svc", "=", True), sp("svc", "!=", False)) is Relation.EQUIVALENT
    assert relation(sp("svc", "=", False), sp("svc", "!=", True)) is Relation.EQUIVALENT


def test_boolean_complement() -> None:
    assert relation(sp("svc", "=", True), sp("svc", "=", False)) is Relation.COMPLEMENT


def test_boolean_same() -> None:
    assert relation(sp("svc", "=", True), sp("svc", "=", True)) is Relation.EQUIVALENT


# ----------------------------------------------------------------------
# strings and incomparables
# ----------------------------------------------------------------------


def test_string_relations() -> None:
    assert relation(sp("os", "=", "Linux"), sp("os", "=", "Linux")) is Relation.EQUIVALENT
    assert relation(sp("os", "=", "Linux"), sp("os", "=", "BSD")) is Relation.DISJOINT
    assert relation(sp("os", "=", "Linux"), sp("os", "!=", "Linux")) is Relation.COMPLEMENT
    assert relation(sp("os", "<", "M"), sp("os", "=", "BSD")) is Relation.SUPERSET


def test_different_attributes_unknown() -> None:
    assert relation(sp("a", "=", 1), sp("b", "=", 1)) is Relation.UNKNOWN


def test_mixed_value_types_unknown() -> None:
    assert relation(sp("a", "=", 1), sp("a", "=", "one")) is Relation.UNKNOWN
    assert relation(sp("a", "=", True), sp("a", "=", 1)) is Relation.UNKNOWN


# ----------------------------------------------------------------------
# property test: inference agrees with brute-force over a dense domain
# ----------------------------------------------------------------------

ops = st.sampled_from(list(Comparison))
bounds = st.integers(min_value=0, max_value=6)


def _dense_domain() -> list[Fraction]:
    """Sample points including half-integers, so strict/inclusive bounds and
    gaps between integers are all distinguishable (the algebra assumes a
    dense domain)."""
    return [Fraction(n, 2) for n in range(-2, 15)]


def _truth_set(pred: SimplePredicate) -> frozenset:
    return frozenset(
        point for point in _dense_domain() if pred.op.apply(point, pred.value)
    )


@settings(max_examples=500, deadline=None)
@given(op_a=ops, val_a=bounds, op_b=ops, val_b=bounds)
def test_relation_matches_brute_force(op_a, val_a, op_b, val_b) -> None:
    a = SimplePredicate("x", op_a, val_a)
    b = SimplePredicate("x", op_b, val_b)
    rel = relation(a, b)
    set_a, set_b = _truth_set(a), _truth_set(b)
    if rel is Relation.EQUIVALENT:
        assert set_a == set_b
    elif rel is Relation.SUBSET:
        assert set_a < set_b
    elif rel is Relation.SUPERSET:
        assert set_a > set_b
    elif rel in (Relation.DISJOINT, Relation.COMPLEMENT):
        assert not (set_a & set_b)
    elif rel is Relation.OVERLAP:
        assert set_a & set_b
        assert set_a - set_b and set_b - set_a
    else:  # pragma: no cover
        raise AssertionError(f"unexpected relation {rel}")


@settings(max_examples=200, deadline=None)
@given(op_a=ops, val_a=bounds, op_b=ops, val_b=bounds)
def test_relation_is_symmetric_up_to_mirroring(op_a, val_a, op_b, val_b) -> None:
    a = SimplePredicate("x", op_a, val_a)
    b = SimplePredicate("x", op_b, val_b)
    forward = relation(a, b)
    backward = relation(b, a)
    mirror = {
        Relation.SUBSET: Relation.SUPERSET,
        Relation.SUPERSET: Relation.SUBSET,
    }
    assert backward == mirror.get(forward, forward)


# ----------------------------------------------------------------------
# IntervalSet internals
# ----------------------------------------------------------------------


def test_interval_set_basics() -> None:
    lt5 = IntervalSet.from_predicate(sp("x", "<", 5))
    ge5 = IntervalSet.from_predicate(sp("x", ">=", 5))
    assert lt5.intersect(ge5).is_empty()
    assert lt5.union(ge5).is_universe()
    assert not lt5.is_universe()
    assert IntervalSet.empty().is_empty()
    assert IntervalSet.universe().is_universe()


def test_interval_set_ne_has_two_pieces() -> None:
    ne = IntervalSet.from_predicate(sp("x", "!=", 3))
    assert len(ne.intervals) == 2
    point = IntervalSet.from_predicate(sp("x", "=", 3))
    assert ne.union(point).is_universe()


def test_interval_containment() -> None:
    small = IntervalSet.from_predicate(sp("x", "<", 2))
    big = IntervalSet.from_predicate(sp("x", "<", 7))
    assert big.contains_set(small)
    assert not small.contains_set(big)


def test_adjacent_intervals_merge() -> None:
    le = IntervalSet.from_predicate(sp("x", "<=", 4))
    gt = IntervalSet.from_predicate(sp("x", ">", 4))
    assert le.union(gt).is_universe()
    lt = IntervalSet.from_predicate(sp("x", "<", 4))
    assert not lt.union(gt).is_universe()
