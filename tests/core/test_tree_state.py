"""Unit tests for per-predicate tree state (Sections 4-5 derivations)."""

from __future__ import annotations

from repro.core.adapt import AdaptationConfig, Adaptor
from repro.core.predicates import Comparison, SimplePredicate
from repro.core.tree_state import ChildInfo, PredicateTreeState

PRED = SimplePredicate("A", Comparison.EQ, 1)


def make_state(node_id: int = 10, threshold: int = 2) -> PredicateTreeState:
    return PredicateTreeState(
        predicate=PRED,
        tree_key=123,
        node_id=node_id,
        adaptor=Adaptor(AdaptationConfig()),
        threshold=threshold,
    )


def test_silent_children_must_receive_queries() -> None:
    """Procedure 1's default: no state on a child means forward to it."""
    state = make_state()
    children = [1, 2, 3]
    assert state.q_set(children) == {1, 2, 3}
    assert state.forward_targets(children) == {1, 2, 3}
    assert state.sat(children) is True


def test_pruned_children_are_skipped() -> None:
    state = make_state()
    state.record_child_report(1, frozenset(), 0)  # PRUNE
    state.record_child_report(2, frozenset([2]), 1)  # NO-PRUNE
    assert state.forward_targets([1, 2]) == {2}
    assert state.q_set([1, 2]) == {2}


def test_bypassed_descendants_in_qset() -> None:
    """Section 5: a child's updateSet may carry grandchildren directly."""
    state = make_state()
    state.record_child_report(1, frozenset([101, 102]), 2)
    assert state.forward_targets([1]) == {101, 102}


def test_local_satisfaction_joins_qset_but_not_targets() -> None:
    state = make_state()
    state.local_sat = True
    state.record_child_report(1, frozenset(), 0)
    assert state.q_set([1]) == {state.node_id}
    # We never forward a query to ourselves.
    assert state.forward_targets([1]) == set()
    assert state.sat([1]) is True


def test_update_set_below_threshold_is_qset() -> None:
    state = make_state(threshold=3)
    state.record_child_report(1, frozenset([101]), 1)
    state.record_child_report(2, frozenset(), 0)
    assert state.compute_update_set([1, 2]) == frozenset([101])


def test_update_set_at_threshold_collapses_to_self() -> None:
    state = make_state(threshold=2)
    state.record_child_report(1, frozenset([101]), 1)
    state.record_child_report(2, frozenset([102]), 1)
    assert state.compute_update_set([1, 2]) == frozenset([state.node_id])


def test_threshold_one_always_collapses_when_nonempty() -> None:
    """threshold=1 degenerates to the plain Section 4 pruned tree."""
    state = make_state(threshold=1)
    state.record_child_report(1, frozenset([101]), 1)
    assert state.compute_update_set([1]) == frozenset([state.node_id])
    # Empty qSet stays empty (PRUNE).
    state.record_child_report(1, frozenset(), 0)
    assert state.compute_update_set([1]) == frozenset()


def test_prune_requires_update_state() -> None:
    """Procedure 3: update = 0 implies prune = 0."""
    state = make_state()
    state.record_child_report(1, frozenset(), 0)
    assert state.sat([1]) is False
    assert state.prune([1]) is False  # NO-UPDATE default
    state.adaptor.update = True
    assert state.prune([1]) is True
    state.local_sat = True
    assert state.prune([1]) is False


def test_effective_sent_set_defaults_to_self() -> None:
    state = make_state()
    assert state.effective_sent_set() == frozenset([state.node_id])
    assert state.would_receive_queries() is True
    state.sent_update_set = frozenset()
    assert state.would_receive_queries() is False
    state.sent_update_set = frozenset([101])
    assert state.would_receive_queries() is False
    state.sent_update_set = frozenset([state.node_id])
    assert state.would_receive_queries() is True


def test_subtree_recv_estimates() -> None:
    state = make_state()
    # Root always receives; silent children estimated at 1 each.
    assert state.subtree_recv([1, 2], is_root=True) == 3
    state.record_child_report(1, frozenset([101]), 5)
    assert state.subtree_recv([1, 2], is_root=True) == 7
    # A non-root that is bypassed does not count itself.
    state.sent_update_set = frozenset([101])
    assert state.subtree_recv([1, 2], is_root=False) == 6


def test_forget_children() -> None:
    state = make_state()
    state.record_child_report(1, frozenset([1]), 1)
    state.record_child_report(2, frozenset([2]), 1)
    assert state.forget_children({1, 99}) is True
    assert state.forget_children({1}) is False
    assert set(state.children) == {2}


def test_child_report_partial_updates() -> None:
    state = make_state()
    state.record_child_report(1, frozenset([1]), None)
    assert state.children[1].update_set == frozenset([1])
    assert state.children[1].subtree_recv == 1  # default retained
    state.record_child_report(1, None, 7)
    assert state.children[1].update_set == frozenset([1])  # retained
    assert state.children[1].subtree_recv == 7


def test_child_info_defaults() -> None:
    info = ChildInfo()
    assert info.update_set is None
    assert info.subtree_recv == 1
