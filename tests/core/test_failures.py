"""Failure handling (Section 7, "Reconfigurations")."""

from __future__ import annotations


from repro.core import MoaraCluster
from repro.core.moara_node import MoaraConfig


QUERY = "SELECT COUNT(*) WHERE A = 1"


def build(num_nodes: int = 48, seed: int = 60, **config_kwargs) -> MoaraCluster:
    cluster = MoaraCluster(
        num_nodes, seed=seed, config=MoaraConfig(**config_kwargs)
    )
    cluster.set_group("A", cluster.node_ids[:10], 1, 0)
    return cluster


def test_graceful_leave_of_group_member() -> None:
    cluster = build()
    assert cluster.query(QUERY).value == 10
    member = cluster.node_ids[0]
    cluster.leave_node(member)
    cluster.run_until_idle()
    assert cluster.query(QUERY).value == 9


def test_graceful_leave_of_tree_root() -> None:
    cluster = build()
    cluster.query(QUERY)
    root = cluster.overlay.root(cluster.overlay.space.hash_name("A"))
    was_member = root in cluster.members_satisfying("A = 1")
    cluster.leave_node(root)
    cluster.run_until_idle()
    assert cluster.query(QUERY).value == (9 if was_member else 10)


def test_crash_with_detection_resolves_query() -> None:
    """A node crashing mid-deployment: after the failure detector fires,
    queries complete with answers from the survivors."""
    cluster = build()
    cluster.query(QUERY)
    victim = cluster.node_ids[3]  # a group member
    cluster.crash_node(victim, detection_delay=0.0)
    cluster.run_until_idle()
    assert cluster.query(QUERY).value == 9


def test_crash_of_internal_node_mid_query_with_timeout() -> None:
    """With a child timeout configured, a query survives an undetected
    crash: the waiting parent times out and answers with what it has."""
    cluster = build(child_timeout=0.5)
    cluster.query(QUERY)
    # Crash a non-member whose state makes it a forwarding hub, without
    # telling the overlay (failure detector never fires).
    members = cluster.members_satisfying("A = 1")
    key = cluster.overlay.space.hash_name("A")
    root = cluster.overlay.root(key)
    victim = next(
        n for n in cluster.node_ids
        if n not in members and n != root
    )
    cluster.network.crash(victim)
    result = cluster.query(QUERY)
    # Complete or partial, but the query must terminate and count only
    # reachable members.
    assert result.value <= 10
    assert result.value >= 0


def test_join_during_active_tree() -> None:
    cluster = build()
    cluster.query(QUERY)
    new_node = cluster.join_node()
    cluster.set_attribute(new_node, "A", 1)
    cluster.run_until_idle()
    assert cluster.query(QUERY).value == 11


def test_mass_leave_keeps_answers_correct() -> None:
    cluster = build(num_nodes=64)
    cluster.query(QUERY)
    for node_id in list(cluster.node_ids[20:40]):
        cluster.leave_node(node_id)
    cluster.run_until_idle()
    expected = len(cluster.members_satisfying("A = 1"))
    assert cluster.query(QUERY).value == expected


def test_state_resent_to_new_parent() -> None:
    """Section 7: "When a node gets a new parent for a predicate, it sends
    its current state information for that predicate to the new parent".

    Uses 1-bit digits so the tree is deep enough to contain internal
    (non-root) nodes with children at this overlay size."""
    from repro.pastry.idspace import IdSpace

    cluster = MoaraCluster(
        32, seed=61, config=MoaraConfig(), space=IdSpace(bits=32, digit_bits=1)
    )
    cluster.set_group("A", cluster.node_ids[:10], 1, 0)
    for _ in range(3):
        cluster.query(QUERY)
    key = cluster.overlay.space.hash_name("A")
    tree_before = cluster.overlay.tree(key)
    # Remove an internal node that has children; its orphans re-parent.
    internal = next(
        n for n in cluster.node_ids
        if tree_before.children_of(n) and n != tree_before.root
    )
    orphans = tree_before.children_of(internal)
    cluster.leave_node(internal)
    cluster.run_until_idle()
    tree_after = cluster.overlay.tree(key)
    for orphan in orphans:
        node = cluster.nodes[orphan]
        state = node.states.get("(A = 1)")
        if state is None:
            continue
        assert state.known_parent == tree_after.parent_of(orphan)
    # And queries still work.
    expected = len(cluster.members_satisfying("A = 1"))
    assert cluster.query(QUERY).value == expected


def test_repeated_crash_recover_cycles() -> None:
    cluster = build(num_nodes=40)
    victim = cluster.node_ids[5]  # group member
    for _round in range(3):
        cluster.crash_node(victim, detection_delay=0.0)
        cluster.run_until_idle()
        assert cluster.query(QUERY).value == 9
        # Node rejoins with its attribute intact.
        cluster.network.recover(victim)
        cluster.overlay.add_node(victim)
        cluster.run_until_idle()
        assert cluster.query(QUERY).value == 10
