"""Unit and property tests for partially aggregatable functions."""

from __future__ import annotations


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.aggregation import (
    Average,
    BottomK,
    Count,
    Enumerate,
    Maximum,
    Minimum,
    StdDev,
    Sum,
    TopK,
    get_function,
    merge_partials,
    registered_functions,
)
from repro.core.errors import UnknownAggregateError

# (value, node_id) pairs as they would occur across distinct nodes
values = st.lists(
    st.tuples(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=1,
    max_size=30,
    unique_by=lambda pair: pair[1],
)

ALL_FUNCTIONS = [
    Count(),
    Sum(),
    Minimum(),
    Maximum(),
    Average(),
    StdDev(),
    TopK(3),
    BottomK(2),
    Enumerate(),
]


@pytest.mark.parametrize("fn", ALL_FUNCTIONS, ids=lambda f: f.name)
def test_none_is_identity(fn) -> None:
    partial = fn.lift(5.0, 1)
    assert fn.merge(None, partial) == partial
    assert fn.merge(partial, None) == partial
    assert fn.merge(None, None) is None


@pytest.mark.parametrize("fn", ALL_FUNCTIONS, ids=lambda f: f.name)
@given(data=values)
def test_merge_order_independent(fn, data) -> None:
    """Partial aggregation must not depend on the aggregation-tree shape.

    Merging left-to-right, right-to-left, and in a balanced binary split
    must agree; this is the paper's "partially aggregatable" requirement.
    """
    partials = [fn.lift(v, n) for v, n in data]
    left = merge_partials(fn, partials)
    right = merge_partials(fn, list(reversed(partials)))

    def tree_merge(items):
        if len(items) == 1:
            return items[0]
        mid = len(items) // 2
        return fn.merge(tree_merge(items[:mid]), tree_merge(items[mid:]))

    tree = tree_merge(partials)
    final_left = fn.finalize(left)
    final_right = fn.finalize(right)
    final_tree = fn.finalize(tree)
    if isinstance(final_left, float):
        assert final_right == pytest.approx(final_left, rel=1e-6, abs=1e-6)
        assert final_tree == pytest.approx(final_left, rel=1e-6, abs=1e-6)
    else:
        assert final_left == final_right == final_tree


def test_count() -> None:
    fn = Count()
    partials = [fn.lift(object(), i) for i in range(7)]
    assert fn.finalize(merge_partials(fn, partials)) == 7
    assert fn.finalize(None) == 0


def test_sum_and_avg() -> None:
    data = [(2.0, 1), (4.0, 2), (9.0, 3)]
    s = Sum()
    assert s.finalize(merge_partials(s, [s.lift(v, n) for v, n in data])) == 15.0
    a = Average()
    assert a.finalize(merge_partials(a, [a.lift(v, n) for v, n in data])) == 5.0
    assert a.finalize(None) is None


def test_min_max() -> None:
    data = [(3.0, 5), (1.0, 2), (10.0, 9)]
    mn, mx = Minimum(), Maximum()
    assert mn.finalize(merge_partials(mn, [mn.lift(v, n) for v, n in data])) == 1.0
    assert mx.finalize(merge_partials(mx, [mx.lift(v, n) for v, n in data])) == 10.0
    assert mn.finalize(None) is None


def test_std() -> None:
    fn = StdDev()
    data = [(2.0, 1), (4.0, 2), (4.0, 3), (4.0, 4), (5.0, 5), (5.0, 6), (7.0, 7), (9.0, 8)]
    result = fn.finalize(merge_partials(fn, [fn.lift(v, n) for v, n in data]))
    assert result == pytest.approx(2.0)


def test_topk_truncates_and_orders() -> None:
    fn = TopK(3)
    data = [(v, i) for i, v in enumerate([5.0, 1.0, 9.0, 7.0, 3.0])]
    result = fn.finalize(merge_partials(fn, [fn.lift(v, n) for v, n in data]))
    assert result == [(9.0, 2), (7.0, 3), (5.0, 0)]


def test_bottomk() -> None:
    fn = BottomK(2)
    data = [(v, i) for i, v in enumerate([5.0, 1.0, 9.0, 7.0, 3.0])]
    result = fn.finalize(merge_partials(fn, [fn.lift(v, n) for v, n in data]))
    assert result == [(1.0, 1), (3.0, 4)]


def test_topk_tie_break_deterministic() -> None:
    fn = TopK(2)
    partials = [fn.lift(5.0, n) for n in (9, 3, 7)]
    assert fn.finalize(merge_partials(fn, partials)) == [(5.0, 3), (5.0, 7)]


def test_enumerate_collects_all() -> None:
    fn = Enumerate()
    data = [(True, 3), (False, 1), (True, 2)]
    result = fn.finalize(merge_partials(fn, [fn.lift(v, n) for v, n in data]))
    assert result == [(1, False), (2, True), (3, True)]


def test_invalid_k() -> None:
    with pytest.raises(ValueError):
        TopK(0)
    with pytest.raises(ValueError):
        BottomK(-1)


def test_get_function_lookup() -> None:
    assert get_function("count").name == "count"
    assert get_function("AVG").name == "avg"
    assert get_function("average").name == "avg"
    assert get_function("mean").name == "avg"
    assert get_function("enum").name == "list"
    assert isinstance(get_function("top3"), TopK)
    assert get_function("top-5").k == 5
    assert get_function("TOP_7").k == 7
    assert get_function("bottom2").k == 2
    with pytest.raises(UnknownAggregateError):
        get_function("median")


def test_registered_functions() -> None:
    names = registered_functions()
    assert {"count", "sum", "min", "max", "avg", "std", "list"} <= set(names)
