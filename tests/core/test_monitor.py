"""Tests for periodic one-shot monitoring."""

from __future__ import annotations

import pytest

from repro.core import MoaraCluster, PeriodicMonitor


def test_samples_collected_on_schedule() -> None:
    cluster = MoaraCluster(24, seed=97)
    cluster.set_group("g", cluster.node_ids[:5])
    monitor = PeriodicMonitor(
        cluster, "SELECT COUNT(*) WHERE g = true", period=10.0
    )
    monitor.start()
    cluster.run(seconds=55.0)
    assert len(monitor.samples) == 5
    assert monitor.values == [5, 5, 5, 5, 5]
    times = [t for t, _ in monitor.samples]
    assert times == pytest.approx([10.0, 20.0, 30.0, 40.0, 50.0], abs=1e-6)


def test_monitor_observes_group_churn() -> None:
    cluster = MoaraCluster(24, seed=98)
    cluster.set_group("g", cluster.node_ids[:5])
    monitor = PeriodicMonitor(
        cluster, "SELECT COUNT(*) WHERE g = true", period=5.0
    )
    monitor.start()
    cluster.run(seconds=12.0)
    cluster.set_group("g", cluster.node_ids[:9])
    cluster.run(seconds=10.0)
    assert monitor.values[0] == 5
    assert monitor.values[-1] == 9


def test_stop_halts_sampling() -> None:
    cluster = MoaraCluster(16, seed=99)
    cluster.set_group("g", cluster.node_ids[:3])
    monitor = PeriodicMonitor(
        cluster, "SELECT COUNT(*) WHERE g = true", period=5.0
    )
    monitor.start()
    cluster.run(seconds=11.0)
    monitor.stop()
    cluster.run(seconds=30.0)
    assert len(monitor.samples) == 2


def test_callback_invoked_per_sample() -> None:
    cluster = MoaraCluster(16, seed=100)
    cluster.set_group("g", cluster.node_ids[:3])
    seen = []
    monitor = PeriodicMonitor(
        cluster,
        "SELECT COUNT(*) WHERE g = true",
        period=5.0,
        callback=lambda result: seen.append(result.value),
    )
    monitor.start()
    cluster.run(seconds=16.0)
    assert seen == [3, 3, 3]


def test_invalid_period_rejected() -> None:
    cluster = MoaraCluster(4, seed=101)
    with pytest.raises(ValueError):
        PeriodicMonitor(cluster, "SELECT COUNT(*)", period=0.0)


def test_start_is_idempotent() -> None:
    cluster = MoaraCluster(8, seed=102)
    cluster.set_group("g", cluster.node_ids[:2])
    monitor = PeriodicMonitor(
        cluster, "SELECT COUNT(*) WHERE g = true", period=5.0
    )
    monitor.start()
    monitor.start()  # must not double-schedule
    cluster.run(seconds=11.0)
    assert len(monitor.samples) == 2
