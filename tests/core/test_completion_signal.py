"""Event-driven query completion (the waiter registry + engine wake-ups).

PR 4 replaced ``Engine.run_until(predicate)`` polling in the cluster's
synchronous drives with a completion-callback registry: front-ends signal
each finished qid into :meth:`MoaraCluster._signal_completion`, and the
last awaited completion stops the engine via ``Engine.request_stop``.
These tests pin the equivalence with the old slow path and the cleanup
behaviour around timeouts and root departures.
"""

from __future__ import annotations

import pytest

from repro.core import MoaraCluster, QueryTimeoutError
from repro.sim import LANLatencyModel

BATCH = [
    "SELECT COUNT(*) WHERE G0 = true",
    "SELECT SUM(load) WHERE G1 = true",
    "SELECT COUNT(*) WHERE G0 = true AND G1 = true",
    "SELECT COUNT(*) WHERE G0 = true",  # repeat: shares the dispatch
    "SELECT COUNT(*) WHERE G0 = true OR G1 = true",
]


def _build(num_nodes: int = 120, seed: int = 77) -> MoaraCluster:
    cluster = MoaraCluster(
        num_nodes, seed=seed, latency_model=LANLatencyModel(seed=seed)
    )
    ids = cluster.node_ids
    cluster.set_group("G0", ids[: len(ids) // 4])
    cluster.set_group("G1", ids[len(ids) // 8 : len(ids) // 2])
    cluster.set_attribute_all("load", 3)
    return cluster


def _group_root(cluster: MoaraCluster, attr: str) -> int:
    return cluster.overlay.root(cluster.overlay.space.hash_name(attr))


def test_event_driven_matches_run_until_slow_path() -> None:
    """Same seed, same batch: the waiter-registry drive and the documented
    ``run_until`` slow path produce identical answers, per-query message
    costs, completion order, and event counts."""
    fast = _build()
    slow = _build()

    fast_results = fast.query_concurrent(list(BATCH))

    frontend = slow.frontend
    qids = [frontend.submit(query) for query in BATCH]
    done = slow.engine.run_until(
        lambda: all(qid in frontend.results for qid in qids)
    )
    assert done
    slow_results = [frontend.results.pop(qid) for qid in qids]

    assert [r.value for r in fast_results] == [r.value for r in slow_results]
    assert [r.message_cost for r in fast_results] == [
        r.message_cost for r in slow_results
    ]
    assert [r.cover for r in fast_results] == [r.cover for r in slow_results]
    # Identical event trajectories: the wake-up stops the engine after
    # exactly the event the predicate would have noticed.
    assert fast.engine.events_processed == slow.engine.events_processed
    assert fast.stats.total_messages == slow.stats.total_messages
    assert [rec.qid for rec in fast.stats.query_log] == [
        rec.qid for rec in slow.stats.query_log
    ]


def test_waiter_registry_cleared_after_successful_drive() -> None:
    cluster = _build()
    result = cluster.query("SELECT COUNT(*) WHERE G0 = true")
    assert result.value == 30
    assert cluster._waiters is None


def test_waiter_cleanup_on_query_timeout() -> None:
    """A drive that goes idle without completing raises QueryTimeoutError
    and leaves no waiter registry behind; the cluster stays usable."""
    cluster = _build()
    cluster.query("SELECT COUNT(*) WHERE G1 = true")  # warm the tree
    root = _group_root(cluster, "G0")
    # Fail-stop without failure detection: the sub-query is dropped on the
    # floor and nothing will ever signal completion.
    cluster.network.crash(root)
    with pytest.raises(QueryTimeoutError):
        cluster.query("SELECT COUNT(*) WHERE G0 = true")
    assert cluster._waiters is None
    # The registry left nothing stale behind: unrelated queries complete.
    result = cluster.query("SELECT COUNT(*) WHERE G1 = true")
    assert result.value == 45
    assert cluster._waiters is None


def test_completion_signal_on_root_departure() -> None:
    """A root crashing mid-drive still wakes the driver: the failure
    detector's membership change resolves the sub-query as NULL, the
    front-end completes the query, and the completion signal ends the
    drive (no hang, no leaked waiters)."""
    cluster = _build()
    root = _group_root(cluster, "G0")
    cluster.crash_node(root, detection_delay=0.5)
    result = cluster.query("SELECT COUNT(*) WHERE G0 = true")
    # The root was gone before the walk started, so the answer is the
    # NULL aggregate -- what matters here is that the drive returned.
    assert result.value is None or result.value == 0
    assert cluster._waiters is None


def test_completion_signal_without_active_drive_is_noop() -> None:
    """Completions arriving outside a synchronous drive (async submits
    resolved by membership churn) must not touch a registry."""
    cluster = _build()
    root = _group_root(cluster, "G0")
    qid = cluster.query_async("SELECT COUNT(*) WHERE G0 = true")
    # Departure resolves the in-flight sub-query synchronously via the
    # membership listener -- no drive is running.
    cluster.leave_node(root)
    result = cluster.result(qid)
    assert result is not None
    assert cluster._waiters is None


def test_concurrent_timeout_reports_missing_queries() -> None:
    cluster = _build()
    cluster.query("SELECT COUNT(*) WHERE G1 = true")  # warm G1
    root = _group_root(cluster, "G0")
    cluster.network.crash(root)
    with pytest.raises(QueryTimeoutError):
        cluster.query_concurrent(
            [
                "SELECT COUNT(*) WHERE G0 = true",
                "SELECT COUNT(*) WHERE G1 = true",
            ]
        )
    assert cluster._waiters is None
