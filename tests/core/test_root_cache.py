"""Root-side result caching and cross-front-end sub-query sharing.

Staleness semantics under test (the satellite checklist): hit within
TTL, miss after TTL, invalidation on membership change under the root,
and late-subscriber fan-out when the root departs mid-execution
(subscribers get NULL, not a hang).
"""

from __future__ import annotations

import pytest

from repro.core import MoaraCluster, MoaraConfig
from repro.core import messages as mt
from repro.core.moara_node import group_attribute
from repro.core.parser import parse_predicate

TTL = 5.0
TEXT = "SELECT COUNT(*) WHERE g = true"


def _root_of(cluster: MoaraCluster, predicate: str) -> int:
    return cluster.overlay.root(
        cluster.overlay.space.hash_name(
            group_attribute(parse_predicate(predicate))
        )
    )


def _cluster(**kwargs) -> MoaraCluster:
    defaults = dict(
        num_nodes=48,
        seed=90,
        config=MoaraConfig(result_cache_ttl=TTL),
        num_frontends=2,
    )
    defaults.update(kwargs)
    c = MoaraCluster(**defaults)
    c.set_group("g", c.node_ids[:12])
    for rank, node_id in enumerate(c.node_ids):
        c.set_attribute(node_id, "load", float(rank))
    return c


# ----------------------------------------------------------------------
# TTL'd result cache
# ----------------------------------------------------------------------


def test_hit_within_ttl_from_another_frontend() -> None:
    """A repeat of an identical query from a *different* front-end within
    the TTL is answered with zero tree messages."""
    c = _cluster()
    first = c.query(TEXT)  # cold: walks the tree, populates the cache
    before = c.stats.snapshot()
    second = c.query(TEXT, frontend=1)
    delta = c.stats.delta_since(before)
    assert second.value == first.value == 12
    assert delta.messages_of(mt.QUERY, mt.QUERY_RESPONSE) == 0
    assert delta.messages_of(mt.FRONTEND_QUERY) == 1
    assert delta.messages_of(mt.FRONTEND_RESPONSE) == 1
    assert second.root_cached
    assert second.message_cost == 2  # request + cached reply, nothing else
    assert c.stats.root_cache_hits == 1


def test_miss_after_ttl_rewalks_the_tree() -> None:
    c = _cluster()
    c.query(TEXT)
    c.run(TTL + 1.0)  # idle past the TTL: the cached entry expires
    before = c.stats.snapshot()
    result = c.query(TEXT, frontend=1)
    delta = c.stats.delta_since(before)
    assert result.value == 12
    assert not result.root_cached
    assert delta.messages_of(mt.QUERY) > 0
    root = c.nodes[_root_of(c, "g = true")]
    assert root.result_cache.stats.expirations == 1


def test_cached_answer_reports_its_age() -> None:
    c = _cluster()
    c.query(TEXT)
    c.run(2.0)
    result = c.query(TEXT, frontend=1)
    assert result.root_cached
    assert result.cache_age == pytest.approx(2.0)


def test_invalidation_on_membership_change_under_the_root() -> None:
    """Overlay churn (a member leaving) clears root caches: the next
    query re-walks the tree and sees the new membership, not the stale
    cached count."""
    c = _cluster()
    assert c.query(TEXT).value == 12
    member = c.node_ids[3]
    c.leave_node(member)  # a group member departs the overlay
    result = c.query(TEXT, frontend=1)  # still within the TTL
    assert not result.root_cached
    assert result.value == 11


def test_invalidation_on_join_too() -> None:
    c = _cluster()
    c.query(TEXT)
    c.join_node()
    result = c.query(TEXT, frontend=1)
    assert not result.root_cached
    assert result.value == 12


def test_invalidation_on_local_attribute_update_at_the_root() -> None:
    """The root's own attributes feed the aggregates it caches; updating
    one drops the affected entries immediately (no TTL wait)."""
    c = _cluster(num_nodes=32, seed=91)
    text = "SELECT SUM(load) WHERE g = true"
    root_id = _root_of(c, "g = true")
    # Make the root a contributor so its local value is in the answer.
    c.set_attribute(root_id, "g", True)
    first = c.query(text)
    c.set_attribute(root_id, "load", 1000.0)
    second = c.query(text, frontend=1)
    assert not second.root_cached
    assert second.value != first.value


def test_status_update_invalidates_cached_group() -> None:
    """Group-membership churn that reaches the root via STATUS_UPDATE
    drops that tree's cached results."""
    c = _cluster()
    c.query(TEXT)
    root = c.nodes[_root_of(c, "g = true")]
    assert len(root.result_cache) == 1
    # Deliver a synthetic child report for the g-tree to the root.
    child = next(n for n in c.node_ids if n != root.node_id)
    c.network.send(
        child,
        root.node_id,
        mt.STATUS_UPDATE,
        {
            "predicate": parse_predicate("g = true"),
            "update_set": frozenset([child]),
            "subtree_recv": 1,
            "last_seen_seq": 0,
        },
    )
    c.run_until_idle()
    assert len(root.result_cache) == 0
    assert root.result_cache.stats.invalidations >= 1


def test_ttl_staleness_contract_for_remote_updates() -> None:
    """The explicit staleness contract: a value change at a non-root
    member generates no protocol traffic, so within the TTL the cached
    answer is served stale; after the TTL the fresh value appears."""
    c = _cluster(num_nodes=32, seed=92)
    text = "SELECT SUM(load) WHERE g = true"
    root_id = _root_of(c, "g = true")
    member = next(n for n in c.node_ids[:12] if n != root_id)
    first = c.query(text)
    c.set_attribute(member, "load", 1000.0)  # silent remote update
    stale = c.query(text, frontend=1)
    assert stale.root_cached
    assert stale.value == pytest.approx(first.value)  # stale, by contract
    c.run(TTL + 1.0)
    fresh = c.query(text, frontend=1)
    assert not fresh.root_cached
    assert fresh.value != pytest.approx(first.value)


def test_truncated_execution_is_never_cached() -> None:
    """An aggregation resolved by churn (a child departing mid-walk) is
    missing that subtree: the truncated partial is delivered but must
    NOT be cached, or the root would serve a known-incomplete answer as
    fresh for a whole TTL."""
    c = _cluster()
    c.query(TEXT)  # warm tree + cache
    c.run(TTL + 1.0)  # let the warm entry expire: next walk is live
    root = c.nodes[_root_of(c, "g = true")]
    qid = c.query_async(TEXT)
    # Step the engine just far enough for the root to dispatch the walk.
    c.engine.run_until(lambda: bool(root._pending))
    pending = next(iter(root._pending.values()), None)
    assert pending is not None and pending.waiting
    c.leave_node(next(iter(pending.waiting)))  # truncates the execution
    c.run_until_idle()
    truncated = c.frontend.results.pop(qid)
    assert len(root.result_cache) == 0  # nothing cached
    # The next query re-walks and sees the true post-churn membership.
    fresh = c.query(TEXT, frontend=1)
    assert not fresh.root_cached
    assert fresh.value == len(c.members_satisfying("g = true"))
    assert fresh.value >= truncated.value


def test_timeout_truncated_execution_is_never_cached() -> None:
    """Same rule for the child-timeout path: answering with what we have
    (Section 7) must not populate the cache."""
    from repro.sim import LANLatencyModel

    c = MoaraCluster(
        48,
        seed=94,
        latency_model=LANLatencyModel(seed=94),
        config=MoaraConfig(result_cache_ttl=TTL, child_timeout=1e-6),
        num_frontends=2,
    )
    c.set_group("g", c.node_ids[:12])
    first = c.query(TEXT)
    root = c.nodes[_root_of(c, "g = true")]
    if first.value < 12:
        # The tiny deadline truncated the walk: nothing may be cached.
        assert len(root.result_cache) == 0
    else:
        # Walk completed inside the deadline: caching it is fine.
        assert c.query(TEXT, frontend=1).value == 12


def test_negative_frontends_argument_is_rejected() -> None:
    c = _cluster()
    with pytest.raises(ValueError):
        c.query_concurrent([TEXT], frontends=-1)
    with pytest.raises(ValueError):
        c.query_concurrent([TEXT], frontends=0)


def test_multi_group_covers_are_never_root_cached() -> None:
    """A union's cover has several trees whose partials dedup per query
    id; those results are not reusable, so repeats re-walk (correctness
    over savings)."""
    c = _cluster()
    c.set_group("h", c.node_ids[8:20])
    text = "SELECT COUNT(*) WHERE g = true OR h = true"
    expected = len(c.members_satisfying("g = true OR h = true"))
    first = c.query(text)
    second = c.query(text, frontend=1)
    assert first.value == second.value == expected
    assert not second.root_cached
    assert c.stats.root_cache_hits == 0


def test_mutable_aggregates_do_not_alias_across_frontends() -> None:
    c = _cluster(num_nodes=32, seed=93)
    text = "SELECT TOP3(load) WHERE g = true"
    first = c.query(text)
    second = c.query(text, frontend=1)
    assert second.root_cached
    expected = list(second.value)
    first.value.clear()  # one consumer trashing its own copy
    third = c.query(text, frontend=0)
    assert second.value == expected
    assert third.value == expected


def test_cached_reply_still_feeds_group_size_cache() -> None:
    """Cache-served replies keep piggybacking the 2*np cost estimate."""
    c = _cluster()
    c.query(TEXT)
    c.query(TEXT, frontend=1)
    assert len(c.frontends[1].size_cache) == 1


# ----------------------------------------------------------------------
# in-flight execution table (cross-front-end sharing)
# ----------------------------------------------------------------------


def test_cold_concurrent_burst_across_frontends_shares_one_walk() -> None:
    """Identical queries submitted concurrently by different front-ends
    trigger one tree walk; late arrivals subscribe at the root."""
    c = _cluster(config=MoaraConfig())  # cache off, sharing on (default)
    before = c.stats.snapshot()
    # Round-robin deliberately scatters the identical queries across
    # front-ends (shard routing would keep them on one shard and the
    # front-end's own sub-query sharing would absorb them instead).
    results = c.query_concurrent([TEXT] * 2, routing="round-robin")
    delta = c.stats.delta_since(before)
    assert [r.value for r in results] == [12, 12]
    assert delta.messages_of(mt.FRONTEND_QUERY) == 2
    assert delta.messages_of(mt.FRONTEND_RESPONSE) == 2
    assert c.stats.root_subscriptions == 1
    # Exactly one execution's worth of tree traffic: a lone query from
    # one front-end on an identical fresh cluster costs the same.
    lone = _cluster(config=MoaraConfig())
    lone_before = lone.stats.snapshot()
    lone.query(TEXT)
    lone_delta = lone.stats.delta_since(lone_before)
    assert delta.messages_of(mt.QUERY, mt.QUERY_RESPONSE) == (
        lone_delta.messages_of(mt.QUERY, mt.QUERY_RESPONSE)
    )
    # The subscriber is flagged; the initiator is not.
    assert [r.root_shared for r in results] == [False, True]


def test_subscription_disabled_walks_per_frontend() -> None:
    c = _cluster(config=MoaraConfig.uncached())
    before = c.stats.snapshot()
    results = c.query_concurrent([TEXT] * 2, routing="round-robin")
    delta = c.stats.delta_since(before)
    assert [r.value for r in results] == [12, 12]
    assert c.stats.root_subscriptions == 0
    assert c.stats.root_cache_hits == 0
    assert delta.messages_of(mt.QUERY) > 0
    assert not any(r.root_shared or r.root_cached for r in results)


def test_late_subscribers_resolve_when_root_departs_mid_execution() -> None:
    """If the root crashes while an execution (with subscribers from
    other front-ends) is in flight, every front-end's query resolves
    with a NULL answer via the failure detector -- nobody hangs."""
    c = _cluster(config=MoaraConfig())
    c.query(TEXT)  # warm the tree so the root is established
    root_id = _root_of(c, "g = true")
    qid_a = c.query_async(TEXT, frontend=0)
    qid_b = c.query_async(TEXT, frontend=1)
    c.crash_node(root_id, detection_delay=0.1)
    c.run_until_idle()
    result_a = c.frontends[0].results.pop(qid_a, None)
    result_b = c.frontends[1].results.pop(qid_b, None)
    assert result_a is not None and result_b is not None
    assert all(fe.is_idle() for fe in c.frontends)
    assert not c.stats.per_query  # every tag drained


def test_subscriber_fan_out_when_a_child_departs_mid_execution() -> None:
    """Section 7 inside the tree: a departed *child* resolves the
    pending aggregation with what the root has, and the fan-out answers
    subscribers from every front-end (values may be partial, never
    lost)."""
    c = _cluster(config=MoaraConfig())
    c.query(TEXT)  # warm
    root_id = _root_of(c, "g = true")
    root = c.nodes[root_id]
    qid_a = c.query_async(TEXT, frontend=0)
    qid_b = c.query_async(TEXT, frontend=1)
    # Find a child the root is now waiting on and remove it.
    c.engine.run_until(lambda: bool(root._pending))
    pending = next(iter(root._pending.values()), None)
    assert pending is not None and pending.waiting
    c.leave_node(next(iter(pending.waiting)))
    c.run_until_idle()
    assert qid_a in c.frontends[0].results
    assert qid_b in c.frontends[1].results


# ----------------------------------------------------------------------
# multi-front-end plumbing
# ----------------------------------------------------------------------


def test_frontends_get_distinct_ids_and_share_semantics() -> None:
    c = _cluster(num_frontends=3)
    assert [fe.node_id for fe in c.frontends] == [-1, -2, -3]
    assert c.frontend is c.frontends[0]
    assert all(fe.semantics is c.semantics for fe in c.frontends)


def test_add_frontend_after_construction() -> None:
    c = _cluster()
    fe = c.add_frontend()
    assert fe.node_id == -3
    qid = fe.submit(TEXT)
    c.run_until_idle()
    assert fe.results.pop(qid).value == 12


def test_round_robin_spread_is_capped_by_frontends_argument() -> None:
    c = _cluster(num_frontends=4)
    results = c.query_concurrent(
        [TEXT] * 4, frontends=2, routing="round-robin"
    )
    assert [r.value for r in results] == [12] * 4
    # Only the first two front-ends saw traffic.
    assert c.frontends[2].is_idle() and not c.frontends[2].results
    assert c.frontends[3].is_idle() and not c.frontends[3].results
