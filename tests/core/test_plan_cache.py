"""Plan-cache and group-size-cache behaviour: hit/miss, TTL, invalidation."""

from __future__ import annotations

import pytest

from repro.core import MoaraCluster
from repro.core import messages as mt
from repro.core.frontend import FrontendConfig
from repro.core.parser import parse_predicate
from repro.core.plan_cache import GroupSizeCache, PlanCache
from repro.core.planner import SemanticContext, choose_cover, plan_predicate
from repro.core.relations import Relation


# ----------------------------------------------------------------------
# PlanCache unit behaviour
# ----------------------------------------------------------------------


def test_plan_cache_hit_and_miss() -> None:
    cache = PlanCache(SemanticContext(), maxsize=8)
    pred = parse_predicate("a = true AND b = true")
    plan1, hit1 = cache.plan(pred)
    plan2, hit2 = cache.plan(pred)
    assert (hit1, hit2) == (False, True)
    assert plan1 is plan2
    assert cache.stats.hits == 1 and cache.stats.misses == 1

    other = parse_predicate("a = true OR b = true")
    _, hit3 = cache.plan(other)
    assert not hit3
    assert cache.stats.misses == 2


def test_plan_cache_normalizes_syntactic_variants() -> None:
    """Commuted forms share one canonical key, hence one cache entry."""
    cache = PlanCache(SemanticContext(), maxsize=8)
    cache.plan(parse_predicate("a = true AND b = true"))
    _, hit = cache.plan(parse_predicate("b = true AND a = true"))
    assert hit


def test_plan_cache_matches_uncached_planner() -> None:
    semantics = SemanticContext()
    cache = PlanCache(semantics, maxsize=8)
    for text in [
        "a = true AND b = true",
        "a = true OR b = true",
        "(a = true OR b = true) AND c = true",
        "x < 10 AND x >= 10",
    ]:
        pred = parse_predicate(text)
        cached, _ = cache.plan(pred)
        fresh = plan_predicate(pred, semantics)
        assert cached.clauses == fresh.clauses
        assert cached.unsatisfiable == fresh.unsatisfiable
        assert cached.global_group == fresh.global_group


def test_plan_cache_lru_eviction() -> None:
    cache = PlanCache(SemanticContext(), maxsize=2)
    preds = [parse_predicate(f"g{i} = true AND h{i} = true") for i in range(3)]
    for pred in preds:
        cache.plan(pred)
    assert cache.stats.evictions == 1
    assert len(cache) == 2
    # The oldest entry was evicted; re-planning it misses.
    _, hit = cache.plan(preds[0])
    assert not hit


def test_semantics_declare_invalidates_cached_plans() -> None:
    semantics = SemanticContext()
    cache = PlanCache(semantics, maxsize=8)
    pred = parse_predicate("small = true AND other = true")
    plan_before, _ = cache.plan(pred)
    assert not plan_before.unsatisfiable

    semantics.declare(
        parse_predicate("small = true"),
        parse_predicate("other = true"),
        Relation.DISJOINT,
    )
    plan_after, hit = cache.plan(pred)
    assert not hit  # version bump made the old entry unreachable
    assert plan_after.unsatisfiable


def test_cover_memoization_matches_choose_cover() -> None:
    cache = PlanCache(SemanticContext(), maxsize=8)
    plan, _ = cache.plan(parse_predicate("a = true AND b = true"))
    costs = {"(a = true)": 10.0, "(b = true)": 4.0}
    first = cache.cover(plan, costs)
    second = cache.cover(plan, costs)
    assert first == second == choose_cover(plan, costs)
    assert cache.cover_stats.hits == 1


# ----------------------------------------------------------------------
# GroupSizeCache unit behaviour
# ----------------------------------------------------------------------


def test_size_cache_put_get_within_ttl() -> None:
    cache = GroupSizeCache(ttl=10.0)
    cache.put("(g = true)", 42.0, now=0.0)
    assert cache.get("(g = true)", now=5.0) == 42.0
    assert cache.stats.hits == 1


def test_size_cache_ttl_expiry() -> None:
    cache = GroupSizeCache(ttl=10.0)
    cache.put("(g = true)", 42.0, now=0.0)
    assert cache.get("(g = true)", now=10.5) is None
    assert cache.stats.expirations == 1
    assert cache.stats.misses == 1
    assert len(cache) == 0


def test_size_cache_refresh_extends_ttl() -> None:
    cache = GroupSizeCache(ttl=10.0)
    cache.put("(g = true)", 40.0, now=0.0)
    cache.put("(g = true)", 44.0, now=8.0)  # refreshed estimate
    assert cache.get("(g = true)", now=15.0) == 44.0


def test_size_cache_disabled_when_ttl_zero() -> None:
    cache = GroupSizeCache(ttl=0.0)
    cache.put("(g = true)", 42.0, now=0.0)
    assert not cache.enabled
    assert cache.get("(g = true)", now=0.0) is None
    assert len(cache) == 0


def test_size_cache_purge_counts_expired() -> None:
    cache = GroupSizeCache(ttl=5.0)
    cache.put("a", 1.0, now=0.0)
    cache.put("b", 2.0, now=3.0)
    assert cache.purge(now=6.0) == 1
    assert cache.get("b", now=6.0) == 2.0


# ----------------------------------------------------------------------
# Frontend-level integration
# ----------------------------------------------------------------------


@pytest.fixture
def cluster() -> MoaraCluster:
    c = MoaraCluster(
        64,
        seed=90,
        frontend_config=FrontendConfig(size_cache_ttl=30.0),
    )
    c.set_group("g1", c.node_ids[:10])
    c.set_group("g2", c.node_ids[5:25])
    return c


QUERY = "SELECT COUNT(*) WHERE g1 = true AND g2 = true"


def test_repeat_composite_query_probes_once(cluster: MoaraCluster) -> None:
    cluster.query(QUERY)
    assert cluster.stats.by_type[mt.SIZE_PROBE] == 2
    for _ in range(5):
        result = cluster.query(QUERY)
        assert result.value == 5
    # All five repeats were answered from the size cache: still 2 probes.
    assert cluster.stats.by_type[mt.SIZE_PROBE] == 2
    assert cluster.frontend.size_cache.stats.hits >= 10


def test_probe_cost_returns_after_ttl_expiry(cluster: MoaraCluster) -> None:
    cluster.query(QUERY)
    probes_before = cluster.stats.by_type[mt.SIZE_PROBE]
    # Idle past the 30 s TTL; the next composite query must re-probe.
    cluster.run(31.0)
    cluster.query(QUERY)
    assert cluster.stats.by_type[mt.SIZE_PROBE] == probes_before + 2
    assert cluster.frontend.size_cache.stats.expirations >= 2


def test_plan_cache_used_across_submissions(cluster: MoaraCluster) -> None:
    first = cluster.query(QUERY)
    second = cluster.query(QUERY)
    assert not first.plan_cached
    assert second.plan_cached
    assert cluster.frontend.plan_cache is not None
    assert cluster.frontend.plan_cache.stats.hits >= 1


def test_uncached_config_disables_everything() -> None:
    c = MoaraCluster(32, seed=91, frontend_config=FrontendConfig.uncached())
    c.set_group("g1", c.node_ids[:6])
    c.set_group("g2", c.node_ids[3:12])
    for _ in range(3):
        c.query("SELECT COUNT(*) WHERE g1 = true AND g2 = true")
    # Every composite submission paid the full 2-probe round trip.
    assert c.stats.by_type[mt.SIZE_PROBE] == 6
    assert c.frontend.plan_cache is None


def test_cached_and_uncached_agree_on_values() -> None:
    shapes = [
        "SELECT COUNT(*) WHERE g1 = true AND g2 = true",
        "SELECT COUNT(*) WHERE g1 = true OR g2 = true",
        "SELECT COUNT(*)",
    ]
    results: dict[bool, list[int]] = {}
    for cached in (True, False):
        config = FrontendConfig() if cached else FrontendConfig.uncached()
        c = MoaraCluster(48, seed=92, frontend_config=config)
        c.set_group("g1", c.node_ids[:8])
        c.set_group("g2", c.node_ids[4:20])
        results[cached] = [c.query(q).value for q in shapes for _ in range(2)]
    assert results[True] == results[False]
