"""Calibration tests for the PlanetLab slice trace (Figure 2(a))."""

from __future__ import annotations

from repro.workloads import SliceTrace


def test_population_size() -> None:
    trace = SliceTrace()
    assert len(trace.assigned) == 400
    assert 0 < len(trace.in_use) <= 400


def test_paper_quoted_assigned_quantile() -> None:
    """"As many as 50% of the 400 slices have fewer than 10 assigned
    nodes" -- calibrated within a few percent."""
    trace = SliceTrace()
    assert 0.40 <= trace.fraction_assigned_below(10) <= 0.60


def test_paper_quoted_in_use_quantile() -> None:
    """"as many as 100 out of 170 slices have fewer than 10 active
    nodes"."""
    trace = SliceTrace()
    small, total = trace.count_in_use_below(10)
    assert 140 <= total <= 200
    assert 0.50 <= small / total <= 0.75


def test_in_use_never_exceeds_assigned() -> None:
    trace = SliceTrace()
    for name, used in trace.in_use.items():
        assert 1 <= used <= trace.assigned[name]


def test_ranked_series_monotone() -> None:
    trace = SliceTrace()
    ranked = trace.ranked_assigned()
    assert ranked == sorted(ranked, reverse=True)
    assert ranked[0] > 100  # a heavy head exists
    assert ranked[-1] <= 10  # and a long small tail


def test_seeded_determinism() -> None:
    assert SliceTrace(seed=5).assigned == SliceTrace(seed=5).assigned
    assert SliceTrace(seed=5).assigned != SliceTrace(seed=6).assigned


def test_sample_slice_members() -> None:
    trace = SliceTrace()
    node_ids = list(range(500))
    name = next(iter(trace.assigned))
    members = trace.sample_slice_members(name, node_ids)
    assert len(members) == min(trace.assigned[name], 500)
    assert len(set(members)) == len(members)
    assert set(members) <= set(node_ids)
