"""Tests for query:churn event mixes and the workload runner."""

from __future__ import annotations

from repro.core import MoaraCluster
from repro.workloads import EventMix, run_query_churn_workload


def test_mix_composition() -> None:
    mix = EventMix(num_queries=30, num_churn=20, seed=1)
    schedule = mix.schedule()
    assert len(schedule) == 50
    assert schedule.count("query") == 30
    assert schedule.count("churn") == 20
    assert mix.label == "30:20"


def test_mix_is_shuffled_but_deterministic() -> None:
    s1 = EventMix(10, 10, seed=1).schedule()
    s2 = EventMix(10, 10, seed=1).schedule()
    s3 = EventMix(10, 10, seed=2).schedule()
    assert s1 == s2
    assert s1 != s3
    assert s1 != ["query"] * 10 + ["churn"] * 10  # actually shuffled


def test_extreme_ratios() -> None:
    assert EventMix(0, 500, seed=1).schedule().count("query") == 0
    assert EventMix(500, 0, seed=1).schedule().count("churn") == 0


def test_workload_runner_executes_all_events() -> None:
    cluster = MoaraCluster(24, seed=2)
    cluster.set_group("A", cluster.node_ids[:5], 1, 0)
    mix = EventMix(num_queries=6, num_churn=4, seed=3)
    results = run_query_churn_workload(
        cluster, "(A, sum, A = 1)", "A", mix, burst_size=3
    )
    assert len(results) == 6
    # Every answer matches the ground truth at its moment... final check:
    final = cluster.query("(A, sum, A = 1)")
    assert final.value == len(cluster.members_satisfying("A = 1")) or (
        final.value is None and not cluster.members_satisfying("A = 1")
    )


def test_workload_burst_size_larger_than_cluster() -> None:
    cluster = MoaraCluster(8, seed=4)
    cluster.set_group("A", cluster.node_ids[:2], 1, 0)
    mix = EventMix(num_queries=1, num_churn=1, seed=5)
    results = run_query_churn_workload(
        cluster, "(A, count, A = 1)", "A", mix, burst_size=100
    )
    assert len(results) == 1
