"""Tests for the HP rendering-job trace (Figure 2(b))."""

from __future__ import annotations

from repro.workloads import RenderingJobTrace


def test_two_jobs_over_20_hours() -> None:
    trace = RenderingJobTrace()
    assert trace.job_names == ["job0", "job1"]
    for job in trace.job_names:
        minutes = [m for m, _ in trace.series[job]]
        assert minutes[0] == 0
        assert minutes[-1] >= 1395


def test_usage_envelope() -> None:
    trace = RenderingJobTrace()
    for job in trace.job_names:
        peak = trace.peak_usage(job)
        assert 0 < peak <= trace.pool_size
        first, last = trace.active_window(job)
        assert first < last
    # The two jobs start at different times (the figure's key feature).
    start0, _ = trace.active_window("job0")
    start1, _ = trace.active_window("job1")
    assert abs(start0 - start1) > 120


def test_jobs_exhibit_churn() -> None:
    """Figure 2(b)'s point: group membership is dynamic."""
    trace = RenderingJobTrace()
    for job in trace.job_names:
        events = trace.churn_events(job)
        assert len(events) > 20
        deltas = [d for _, d in events]
        assert any(d > 0 for d in deltas) and any(d < 0 for d in deltas)


def test_ramp_up_and_teardown() -> None:
    trace = RenderingJobTrace()
    series = dict(trace.series["job0"])
    peak = trace.peak_usage("job0")
    first, last = trace.active_window("job0")
    mid = (first + last) // 2
    mid_usage = series.get(mid - mid % trace.step_min, 0)
    assert mid_usage > peak / 2  # plateau holds most of the peak
    assert series.get(0, 0) == 0  # nothing before the job starts


def test_determinism() -> None:
    assert RenderingJobTrace(seed=1).series == RenderingJobTrace(seed=1).series
    assert RenderingJobTrace(seed=1).series != RenderingJobTrace(seed=2).series
