"""Tests for the datacenter inventory and the Figure 1 query catalogue."""

from __future__ import annotations

from repro.core import MoaraCluster
from repro.workloads import DatacenterInventory


def test_populate_assigns_every_node() -> None:
    cluster = MoaraCluster(40, seed=1)
    inventory = DatacenterInventory(seed=1)
    inventory.populate(cluster)
    assert set(inventory.assignment) == set(cluster.node_ids)
    sample = inventory.assignment[cluster.node_ids[0]]
    assert {"floor", "cluster", "rack", "app", "cpu-util"} <= set(sample)


def test_every_figure1_query_runs(tmp_path=None) -> None:
    cluster = MoaraCluster(60, seed=2)
    DatacenterInventory(seed=2).populate(cluster)
    for task, text in DatacenterInventory.figure1_queries():
        result = cluster.query(text)
        assert result is not None, task


def test_figure1_answers_match_ground_truth() -> None:
    cluster = MoaraCluster(60, seed=3)
    inventory = DatacenterInventory(seed=3)
    inventory.populate(cluster)
    # Spot-check a count query against the recorded assignment.
    expected = sum(
        1 for attrs in inventory.assignment.values() if attrs["firewall"]
    )
    result = cluster.query("SELECT COUNT(*) WHERE firewall = true")
    assert result.value == expected
    # And an average.
    f0 = [a["cpu-util"] for a in inventory.assignment.values() if a["floor"] == "F0"]
    result = cluster.query("SELECT AVG(cpu-util) WHERE floor = 'F0'")
    assert abs(result.value - sum(f0) / len(f0)) < 1e-9


def test_hierarchy_is_consistent() -> None:
    inventory = DatacenterInventory(seed=4)
    cluster = MoaraCluster(50, seed=4)
    inventory.populate(cluster)
    for attrs in inventory.assignment.values():
        # rack R<floor><cluster><rack> nests inside cluster C<floor><cluster>
        assert attrs["rack"][1:3] == attrs["cluster"][1:]
        assert attrs["cluster"][1] == attrs["floor"][1]
