"""Tests for the periodic group-churn driver (Figures 12(b)/13(a))."""

from __future__ import annotations

import pytest

from repro.core import MoaraCluster
from repro.workloads import GroupChurnDriver


def test_group_size_preserved_across_batches() -> None:
    cluster = MoaraCluster(64, seed=1)
    driver = GroupChurnDriver(
        cluster, "g", group_size=20, churn=5, interval=5.0, seed=2
    )
    for _ in range(10):
        before = driver.members
        driver.apply_batch()
        after = driver.members
        assert len(after) == 20
        assert len(before - after) == 5  # exactly `churn` left
        assert len(after - before) == 5  # and `churn` joined
    assert cluster.members_satisfying("g = true") == driver.members


def test_periodic_batches_fire_on_schedule() -> None:
    cluster = MoaraCluster(32, seed=3)
    driver = GroupChurnDriver(
        cluster, "g", group_size=10, churn=2, interval=5.0, seed=4
    )
    driver.start()
    cluster.run(seconds=26.0)
    assert driver.batch_times == pytest.approx([5.0, 10.0, 15.0, 20.0, 25.0])
    driver.stop()
    cluster.run(seconds=20.0)
    assert len(driver.batch_times) == 5  # no more after stop


def test_queries_remain_correct_under_churn() -> None:
    cluster = MoaraCluster(48, seed=5)
    driver = GroupChurnDriver(
        cluster, "g", group_size=15, churn=10, interval=1.0, seed=6
    )
    for _ in range(5):
        driver.apply_batch()
        cluster.run_until_idle()
        result = cluster.query("SELECT COUNT(*) WHERE g = true")
        assert result.value == 15


def test_full_group_replacement() -> None:
    """interval=5, churn=group_size: the entire membership rotates."""
    cluster = MoaraCluster(64, seed=7)
    driver = GroupChurnDriver(
        cluster, "g", group_size=20, churn=20, interval=5.0, seed=8
    )
    before = driver.members
    driver.apply_batch()
    assert not (before & driver.members)
    cluster.run_until_idle()
    assert cluster.query("SELECT COUNT(*) WHERE g = true").value == 20


def test_group_too_large_rejected() -> None:
    cluster = MoaraCluster(8, seed=9)
    with pytest.raises(ValueError):
        GroupChurnDriver(cluster, "g", group_size=20, churn=1, interval=1.0)
