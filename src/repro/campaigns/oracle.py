"""The campaign correctness oracle: online invariant checking.

Every campaign run is also a test run.  After each query batch (and at
every phase boundary) the :class:`InvariantChecker` validates the system
against five invariants, recording a violation dict for each breach:

``differential``
    Sampled query answers must match the centralized oracle
    (:func:`repro.baselines.centralized_answer`) folded over the live
    attribute stores -- the same ground truth the paper's Figure 15
    baseline computes, minus the network.  Answers served from a root's
    TTL'd result cache are allowed to lag ground truth by at most the
    result's reported ``cache_age`` (checked separately by the
    staleness invariant); batches that overlapped a membership change
    are skipped (trees may legitimately be mid-repair).

``probes``
    One wire probe per group, cluster-wide: within one concurrent
    batch, the number of ``SIZE_PROBE`` wire messages must not exceed
    the number of distinct predicate attributes across the batch (plus
    a configurable slack for planner-driven extra probes).

``inflight``
    No leaked entries: at a quiesced phase boundary, every in-flight
    table in the plane (front-end pending queries / probes / shared
    waits, node execution tables, shared-cache probe registry) must be
    empty.

``staleness``
    The TTL contract: a root-cached answer's ``cache_age`` must never
    exceed the configured result-cache TTL.

``standing``
    The standing-query contract: at every quiesced phase boundary the
    folded answer of each active :class:`~repro.standing.manager.
    StandingHandle` must equal the centralized recompute over live
    membership (no in-flight deltas exist at quiesce, so eventual
    consistency collapses to equality).  The companion leak check rides
    the ``inflight`` invariant: ``standing_orphans`` counts node-side
    subscription entries no front-end still considers active.

Violations don't abort the run -- they are collected into the report
(and the CLI exits non-zero if any exist), so one campaign surfaces
every breach, not just the first.
"""

from __future__ import annotations

import math
import random
from typing import Any, Optional, Union

from repro.baselines.centralized import centralized_answer
from repro.core.messages import SIZE_PROBE
from repro.core.parser import parse_query
from repro.core.query import Query, QueryResult
from repro.sim.stats import StatsSnapshot

from repro.campaigns.planes import CampaignPlane
from repro.campaigns.schema import OracleSpec

__all__ = ["InvariantChecker", "values_equal"]


def values_equal(a: Any, b: Any, tolerance: float = 1e-9) -> bool:
    """Structural equality with float tolerance.

    Aggregates return numbers (COUNT, SUM, AVG), sequences (TOPK,
    ENUMERATE), and mappings (HISTOGRAM); compare each shape
    recursively so ``0.30000000000000004 == 0.3`` doesn't fail a run.
    """
    if isinstance(a, bool) or isinstance(b, bool):
        return a == b
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        if math.isnan(a) and math.isnan(b):
            return True
        return math.isclose(a, b, rel_tol=tolerance, abs_tol=tolerance)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            values_equal(x, y, tolerance) for x, y in zip(a, b)
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(
            values_equal(a[k], b[k], tolerance) for k in a
        )
    return a == b


class InvariantChecker:
    """Validates one campaign run online; accumulates violations."""

    def __init__(
        self,
        spec: OracleSpec,
        plane: CampaignPlane,
        seed: int = 0,
        result_cache_ttl: Optional[float] = None,
    ) -> None:
        self.spec = spec
        self.plane = plane
        #: private sampling stream, so oracle sampling never perturbs the
        #: workload's random choices (reports stay reproducible whether
        #: or not checks are enabled).
        self._rng = random.Random((seed << 8) ^ 0x0AC1E)
        #: the node-side result-cache TTL the staleness invariant
        #: enforces; None when the result cache is disabled (then every
        #: root_cached answer is itself a violation).
        self.result_cache_ttl = result_cache_ttl
        self.violations: list[dict] = []
        self.checked = 0
        self.sampled = 0
        #: standing-handle differential checks run at phase boundaries.
        self.standing_checked = 0
        self.skipped_epoch = 0
        #: queries that resolved as *explicit* failures (link chaos):
        #: allowed under the contract -- a failed answer is never a
        #: wrong answer -- but reported, so a chaos campaign shows how
        #: much of the workload the faults actually hit.
        self.explicit_failures = 0
        #: chaos-injected SIZE_PROBE duplicates already accounted for
        #: (the wire's doing, not a front-end dedup regression).
        self._dup_probes_seen = 0

    # ------------------------------------------------------------------

    def _record(self, invariant: str, detail: dict) -> None:
        self.violations.append({"invariant": invariant, **detail})

    def _ground_truth(self, query: Union[str, Query]) -> Any:
        return centralized_answer(query, self.plane.live_stores())

    # ------------------------------------------------------------------
    # per-batch checks
    # ------------------------------------------------------------------

    def check_batch(
        self,
        phase: str,
        queries: list[str],
        results: list[QueryResult],
        before: StatsSnapshot,
        membership_stable: bool,
    ) -> None:
        """Validate one concurrent batch that just completed.

        ``before`` is the wire-stats snapshot taken just before the
        batch was submitted; ``membership_stable`` is False when any
        churn/failure/join was applied since the previous quiesce, which
        suppresses the differential check (the staleness and probe
        checks still run -- their contracts hold under churn).
        """
        self.checked += len(results)
        if self.spec.check_probes:
            self._check_probe_budget(phase, queries, before)
        for text, result in zip(queries, results):
            if result.failed:
                # The Section 7 contract under link chaos: the plane may
                # answer NULL-with-a-reason, never silently wrong.  The
                # differential would flag the NULL as a mismatch, so an
                # explicit failure is exempt (and counted).
                self.explicit_failures += 1
                continue
            if self.spec.check_staleness:
                self._check_staleness(phase, text, result)
            if not self.spec.check_differential:
                continue
            if not membership_stable:
                self.skipped_epoch += 1
                continue
            if self._rng.random() >= self.spec.sample_rate:
                continue
            self.sampled += 1
            self._check_differential(phase, text, result)

    def _check_differential(
        self, phase: str, text: str, result: QueryResult
    ) -> None:
        expected = self._ground_truth(result.query)
        if values_equal(result.value, expected, self.spec.tolerance):
            return
        # A root-cached answer may legitimately lag ground truth: the
        # TTL contract bounds *how long*, not *whether*.  The staleness
        # invariant separately enforces the bound.
        if result.root_cached and result.cache_age > 0:
            return
        self._record(
            "differential",
            {
                "phase": phase,
                "query": text,
                "got": result.value,
                "expected": expected,
                "root_cached": result.root_cached,
                "cache_age": result.cache_age,
            },
        )

    def _check_staleness(
        self, phase: str, text: str, result: QueryResult
    ) -> None:
        if not result.root_cached:
            return
        if self.result_cache_ttl is None:
            self._record(
                "staleness",
                {
                    "phase": phase,
                    "query": text,
                    "detail": "root-cached answer with result cache disabled",
                    "cache_age": result.cache_age,
                },
            )
            return
        # Small epsilon: the cache serves entries at exactly age == TTL.
        if result.cache_age > self.result_cache_ttl + 1e-9:
            self._record(
                "staleness",
                {
                    "phase": phase,
                    "query": text,
                    "cache_age": result.cache_age,
                    "ttl": self.result_cache_ttl,
                },
            )

    def _check_probe_budget(
        self, phase: str, queries: list[str], before: StatsSnapshot
    ) -> None:
        delta = self.plane.stats.delta_since(before)
        probes = delta.by_type.get(SIZE_PROBE, 0)
        # Chaos-duplicated probes are extra copies the *wire* made; the
        # dedup contract binds the front-ends, so the budget grows by
        # the duplicates injected during this batch.
        dup_total = self.plane.probe_duplicates()
        dup_delta = dup_total - self._dup_probes_seen
        self._dup_probes_seen = dup_total
        attrs: set[str] = set()
        for text in queries:
            attrs |= parse_query(text).predicate.attributes()
        budget = len(attrs) + self.spec.probe_slack + dup_delta
        if probes > budget:
            self._record(
                "probes",
                {
                    "phase": phase,
                    "probes": probes,
                    "budget": budget,
                    "distinct_attrs": len(attrs),
                    "batch_size": len(queries),
                },
            )

    # ------------------------------------------------------------------
    # phase-boundary checks
    # ------------------------------------------------------------------

    def check_phase_end(self, phase: str) -> None:
        """Validate a quiesced phase boundary (no leaked in-flight state)."""
        if not self.spec.check_inflight:
            return
        leaks = self.plane.inflight_leaks()
        leaked = {table: count for table, count in leaks.items() if count}
        if leaked:
            self._record("inflight", {"phase": phase, "leaked": leaked})

    def check_standing(self, phase: str, handles: list) -> None:
        """Differentially validate every active standing query at a
        quiesced phase boundary: with no deltas in flight, each handle's
        folded answer must equal the centralized recompute over live
        membership -- the standing plane's whole correctness claim."""
        if not self.spec.check_differential:
            return
        for handle in handles:
            if not handle.active:
                continue
            self.standing_checked += 1
            expected = self._ground_truth(handle.query)
            got = handle.current_value()
            if values_equal(got, expected, self.spec.tolerance):
                continue
            self._record(
                "standing",
                {
                    "phase": phase,
                    "query": handle.query.canonical(),
                    "sub_id": handle.sub_id,
                    "got": got,
                    "expected": expected,
                    "update_seq": handle.update_seq,
                    "cover": list(handle.cover),
                },
            )

    # ------------------------------------------------------------------

    def summary(self) -> dict:
        by_invariant: dict[str, int] = {}
        for violation in self.violations:
            name = violation["invariant"]
            by_invariant[name] = by_invariant.get(name, 0) + 1
        return {
            "checked": self.checked,
            "sampled": self.sampled,
            "standing_checked": self.standing_checked,
            "skipped_epoch": self.skipped_epoch,
            "explicit_failures": self.explicit_failures,
            "violations": len(self.violations),
            "by_invariant": by_invariant,
        }
