"""Execution planes: one campaign, two systems under test.

A campaign never talks to :class:`~repro.core.cluster.MoaraCluster` or
:class:`~repro.serve.transport.LoopbackPlane` directly -- it drives a
:class:`CampaignPlane`, a small adapter interface both systems satisfy:

* :class:`SimPlane` -- the in-process simulator with its attached
  front-ends (``MoaraCluster.query_concurrent``).
* :class:`LoopbackCampaignPlane` -- the *deployed shape*: a
  frontend-less backend cluster with unmodified front-ends mounted on
  :class:`~repro.serve.transport.LocalLoopback` transports, the same
  topology the socket fleet deploys.

Because the adapter surface is identical, the same campaign YAML runs on
either plane with ``--plane sim`` / ``--plane loopback``, the invariant
checker sees the same hooks (live attribute stores, wire stats,
in-flight tables), and the JSON reports share one schema -- which is
what lets CI diff the two planes' behaviour on the same scenario.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Union

from repro.core.cluster import MoaraCluster
from repro.core.frontend import Frontend, FrontendConfig
from repro.core.moara_node import MoaraConfig
from repro.core.predicates import Predicate
from repro.core.query import Query, QueryResult
from repro.serve.transport import LoopbackPlane
from repro.sim.latency import (
    LANLatencyModel,
    LatencyModel,
    UniformLatencyModel,
    ZeroLatencyModel,
)
from repro.sim.stats import MessageStats

__all__ = [
    "CampaignPlane",
    "LoopbackCampaignPlane",
    "SimPlane",
    "build_plane",
    "make_latency_model",
]


def make_latency_model(name: str, seed: int = 0) -> LatencyModel:
    """The latency models campaigns may name (``latency:`` key)."""
    if name == "zero":
        return ZeroLatencyModel()
    if name == "lan":
        return LANLatencyModel(seed=seed)
    if name == "uniform":
        return UniformLatencyModel(0.01, 0.1, seed=seed)
    raise ValueError(f"unknown latency model {name!r}")


class CampaignPlane:
    """The adapter surface a campaign driver needs from a system under test.

    Subclasses wrap one deployment topology; everything here is the
    shared part.  ``self.cluster`` is always the :class:`MoaraCluster`
    holding the monitored agents (on the loopback plane that is the
    frontend-less backend), so membership, attributes, time, and wire
    stats are uniform across planes.
    """

    name = "abstract"
    #: True when the plane has transport links that can carry scripted
    #: chaos (``faults:``); the sim plane's front-ends sit in-process.
    supports_link_faults = False

    def __init__(self, cluster: MoaraCluster) -> None:
        self.cluster = cluster
        #: round-robin cursor for standing-query registration, plus the
        #: owning front-end per handle (cancel must go back to the
        #: manager that registered the subscription).
        self._standing_rr = 0
        self._standing_owner: dict[str, Frontend] = {}

    # -- time ----------------------------------------------------------

    @property
    def now(self) -> float:
        return self.cluster.now

    def advance(self, seconds: float) -> None:
        """Let simulated time pass (timers fire, crashes get detected)."""
        if seconds > 0:
            self.cluster.run(seconds)

    def quiesce(self) -> None:
        """Drain all pending protocol activity (gossip, repairs)."""
        self.cluster.run_until_idle()

    # -- queries -------------------------------------------------------

    def query_batch(
        self, queries: list[Union[str, Query]]
    ) -> list[QueryResult]:
        raise NotImplementedError

    # -- standing queries ----------------------------------------------

    def register_standing(self, text: str, lease: float = 0.0):
        """Register a standing query, round-robin across front-ends
        (standing load spreads over shards exactly like one-shots)."""
        fes = self.frontends
        frontend = fes[self._standing_rr % len(fes)]
        self._standing_rr += 1
        handle = frontend.subscribe(text, lease=lease)
        self._standing_owner[handle.sub_id] = frontend
        return handle

    def cancel_standing(self, handle) -> None:
        """Cancel a standing query at its owning front-end."""
        frontend = self._standing_owner.pop(handle.sub_id, None)
        if frontend is not None:
            frontend.standing.cancel(handle)

    # -- membership and state ------------------------------------------

    @property
    def node_ids(self) -> list[int]:
        return self.cluster.node_ids

    def set_attribute(self, node_id: int, name: str, value: Any) -> None:
        self.cluster.set_attribute(node_id, name, value)

    def set_group(
        self,
        attr: str,
        members: Iterable[int],
        member_value: Any = True,
        other_value: Any = False,
    ) -> None:
        self.cluster.set_group(attr, members, member_value, other_value)

    def members_satisfying(
        self, predicate: Union[str, Predicate]
    ) -> set[int]:
        return self.cluster.members_satisfying(predicate)

    def crash(self, node_id: int, detection_delay: float = 0.0) -> None:
        self.cluster.crash_node(node_id, detection_delay=detection_delay)

    def recover(self, node_id: int) -> None:
        """Bring a crashed node back (it rejoins the overlay)."""
        self.cluster.network.recover(node_id)
        if node_id not in self.cluster.overlay:
            self.cluster.overlay.add_node(node_id)

    def join(self) -> int:
        return self.cluster.join_node()

    def leave(self, node_id: int) -> None:
        self.cluster.leave_node(node_id)

    def live_stores(self):
        """``(node_id, attribute_store)`` for every live overlay member --
        the ground truth the differential oracle folds over."""
        cluster = self.cluster
        return [
            (node_id, node.attributes)
            for node_id, node in cluster.nodes.items()
            if node_id in cluster.overlay
            and cluster.network.is_alive(node_id)
        ]

    # -- observability hooks (for the invariant checker) ---------------

    @property
    def stats(self) -> MessageStats:
        """The wire-message ledger (backend stats on the loopback plane --
        :class:`LocalLoopback` mirrors its sends into it)."""
        return self.cluster.stats

    @property
    def frontends(self) -> list[Frontend]:
        raise NotImplementedError

    @property
    def shared_sizes(self):
        raise NotImplementedError

    def standing_stats(self) -> dict[str, int]:
        """Plane-wide standing-query counters.

        Front-end-side counters (registered/updates/...) accrue on each
        front-end's transport ledger, node-side ones (expired) on the
        backend ledger; on the sim plane those are the *same* object, so
        sum distinct ledgers only."""
        ledgers = {id(self.stats): self.stats}
        for fe in self.frontends:
            ledger = fe.network.stats
            ledgers.setdefault(id(ledger), ledger)
        totals = {}
        for key in (
            "standing_registered",
            "standing_updates",
            "standing_replans",
            "standing_expired",
            "standing_cancelled",
        ):
            totals[key[len("standing_"):]] = sum(
                getattr(ledger, key) for ledger in ledgers.values()
            )
        return totals

    def inflight_leaks(self) -> dict[str, int]:
        """Entries still held in any in-flight table.

        At a quiesced phase boundary every one of these must be zero:
        a non-zero count means a query, probe, share, execution, or
        standing subscription was opened and never closed -- the bug
        class the in-flight table refactors are most prone to.
        """
        pending = probes = waits = shares = 0
        for fe in self.frontends:
            pending += len(fe._pending_queries)
            probes += len(fe._probes)
            waits += sum(len(v) for v in fe._shared_waits.values())
            shares += len(fe._shares) + len(fe._share_by_id)
        executions = sum(
            len(node.inflight) for node in self.cluster.nodes.values()
        )
        shared_probes = 0
        if self.shared_sizes is not None:
            shared_probes = len(self.shared_sizes._probes)
        # Standing-subscription hygiene: every node-side subscription
        # entry on a *live* node must belong to a standing query some
        # front-end still considers active (dead nodes' tables are
        # unreachable until recovery, when the hygiene cancels fire).
        active_subs: set[str] = set()
        for fe in self.frontends:
            active_subs |= fe.standing.active_sub_ids()
        cluster = self.cluster
        standing_orphans = sum(
            1
            for node_id, node in cluster.nodes.items()
            if node_id in cluster.overlay
            and cluster.network.is_alive(node_id)
            for sub_id in node.standing.sub_ids()
            if sub_id not in active_subs
        )
        return {
            "frontend_pending": pending,
            "frontend_probes": probes,
            "frontend_shared_waits": waits,
            "frontend_shares": shares,
            "node_executions": executions,
            "shared_cache_probes": shared_probes,
            "standing_orphans": standing_orphans,
        }

    # -- link faults (loopback plane only) ------------------------------

    def apply_link_fault(self, spec: Any) -> None:
        raise NotImplementedError(
            f"the {self.name!r} plane has no transport links to fault; "
            f"run faults: campaigns on the loopback plane"
        )

    def probe_duplicates(self) -> int:
        """Cumulative chaos-injected SIZE_PROBE duplicates (the probe
        budget oracle discounts these — they are the wire's doing)."""
        return 0


class SimPlane(CampaignPlane):
    """The in-process simulator: front-ends attached to the cluster."""

    name = "sim"

    def __init__(
        self,
        num_nodes: int,
        seed: int = 0,
        num_frontends: int = 2,
        latency: str = "zero",
        config: Optional[MoaraConfig] = None,
        frontend_config: Optional[FrontendConfig] = None,
    ) -> None:
        super().__init__(
            MoaraCluster(
                num_nodes,
                seed=seed,
                latency_model=make_latency_model(latency, seed=seed),
                config=config,
                frontend_config=frontend_config,
                num_frontends=num_frontends,
            )
        )

    def query_batch(
        self, queries: list[Union[str, Query]]
    ) -> list[QueryResult]:
        return self.cluster.query_concurrent(queries)

    @property
    def frontends(self) -> list[Frontend]:
        return self.cluster.frontends

    @property
    def shared_sizes(self):
        return self.cluster.shared_sizes


class LoopbackCampaignPlane(CampaignPlane):
    """The deployed shape: loopback front-ends over a backend cluster."""

    name = "loopback"
    supports_link_faults = True

    def __init__(
        self,
        num_nodes: int,
        seed: int = 0,
        num_frontends: int = 2,
        latency: str = "zero",
        config: Optional[MoaraConfig] = None,
        frontend_config: Optional[FrontendConfig] = None,
    ) -> None:
        backend = MoaraCluster(
            num_nodes,
            seed=seed,
            latency_model=make_latency_model(latency, seed=seed),
            config=config,
            frontend_config=frontend_config,
            num_frontends=0,
        )
        super().__init__(backend)
        # Chaos wrappers are always mounted (a ChaosTransport with no
        # active faults is a pure pass-through), so a campaign may
        # script faults without rebuilding the plane and fault-free
        # campaigns stay bit-identical to the unwrapped topology.
        self.plane = LoopbackPlane(
            backend,
            num_frontends=num_frontends,
            frontend_config=frontend_config,
            chaos_seed=seed,
        )

    def query_batch(
        self, queries: list[Union[str, Query]]
    ) -> list[QueryResult]:
        return self.plane.query_concurrent(queries)

    def quiesce(self) -> None:
        """Drain the backend *and* the front-end transports: loopback
        front-ends only see backend replies when pumped, so interleave
        until neither side has anything left.  Frames held by a delay
        fault count as pending — the clock advances to their release
        instead of declaring the plane idle with work in flight."""
        while True:
            self.cluster.run_until_idle()
            delivered = sum(t.pump() for t in self.plane.transports)
            if delivered == 0 and self.cluster.engine.pending == 0:
                releases = [
                    release
                    for t in self.plane.transports
                    for release in (
                        getattr(t, "pending_release", lambda: None)(),
                    )
                    if release is not None
                ]
                if not releases:
                    return
                self.cluster.engine.run(until=min(releases))

    def apply_link_fault(self, spec: Any) -> None:
        """Map one campaign ``faults:`` entry onto the chaos wrappers.

        ``spec`` is a :class:`~repro.campaigns.schema.LinkFaultSpec`;
        state faults (drop/delay/duplicate/partition) carry their own
        expiry (``until = now + duration``), so nothing needs a matching
        clear event, and ``reset`` is an instantaneous event with an
        optional dead window.
        """
        from repro.serve.chaos import LinkFault

        if spec.link == "all":
            targets = list(self.plane.transports)
        else:
            if spec.link >= len(self.plane.transports):
                raise ValueError(
                    f"fault names link {spec.link} but the plane has "
                    f"{len(self.plane.transports)} front-end links"
                )
            targets = [self.plane.transports[spec.link]]
        for transport in targets:
            if spec.kind == "reset":
                transport.reset_link(spec.duration)
            else:
                transport.inject(
                    LinkFault(
                        spec.kind,
                        direction=spec.direction,
                        p=spec.p,
                        delay=spec.delay,
                        until=self.now + spec.duration,
                    )
                )

    def probe_duplicates(self) -> int:
        import repro.core.messages as mt

        return sum(
            t.dup_counts.get(mt.SIZE_PROBE, 0)
            for t in self.plane.transports
            if getattr(t, "is_chaos", False)
        )

    @property
    def frontends(self) -> list[Frontend]:
        return self.plane.frontends

    @property
    def shared_sizes(self):
        return self.plane.shared_sizes


def build_plane(
    plane: str,
    num_nodes: int,
    seed: int = 0,
    num_frontends: int = 2,
    latency: str = "zero",
    config: Optional[MoaraConfig] = None,
    frontend_config: Optional[FrontendConfig] = None,
) -> CampaignPlane:
    """Factory keyed by the CLI's ``--plane`` choice."""
    planes = {"sim": SimPlane, "loopback": LoopbackCampaignPlane}
    if plane not in planes:
        raise ValueError(
            f"unknown plane {plane!r}; use one of {sorted(planes)}"
        )
    return planes[plane](
        num_nodes,
        seed=seed,
        num_frontends=num_frontends,
        latency=latency,
        config=config,
        frontend_config=frontend_config,
    )
