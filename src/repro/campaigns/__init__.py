"""Declarative scenario campaigns with a built-in correctness oracle.

A campaign is a YAML/JSON document describing a full evaluation
scenario -- cluster shape, groups, timed phases of query mixes, churn
waves, and correlated failures -- executed seeded and reproducibly
against either the in-process simulator or the loopback deployed plane,
while an invariant checker validates every batch against the
centralized oracle.  See ``docs/CAMPAIGNS.md`` and the shipped
scenarios under ``campaigns/``.

* :mod:`repro.campaigns.schema` -- the document schema and loader
* :mod:`repro.campaigns.planes` -- the two execution planes
* :mod:`repro.campaigns.oracle` -- the online invariant checker
* :mod:`repro.campaigns.driver` -- timeline compilation and execution
* :mod:`repro.campaigns.report` -- the versioned JSON report
"""

from repro.campaigns.driver import CampaignRunner, run_campaign
from repro.campaigns.oracle import InvariantChecker, values_equal
from repro.campaigns.planes import (
    CampaignPlane,
    LoopbackCampaignPlane,
    SimPlane,
    build_plane,
)
from repro.campaigns.report import REPORT_SCHEMA, latency_summary
from repro.campaigns.schema import (
    CampaignSchemaError,
    CampaignSpec,
    campaign_from_dict,
    load_campaign,
)

__all__ = [
    "REPORT_SCHEMA",
    "CampaignPlane",
    "CampaignRunner",
    "CampaignSchemaError",
    "CampaignSpec",
    "InvariantChecker",
    "LoopbackCampaignPlane",
    "SimPlane",
    "build_plane",
    "campaign_from_dict",
    "latency_summary",
    "load_campaign",
    "run_campaign",
    "values_equal",
]
