"""The campaign runner: a declarative scenario, executed and checked.

:class:`CampaignRunner` turns a validated :class:`CampaignSpec` into a
deterministic, fully seeded execution against a
:class:`~repro.campaigns.planes.CampaignPlane`:

1. **Build** the cluster state the campaign declares: rack labels,
   group membership (sampled with the campaign seed), value attributes.
2. **Compile** each phase into a single sorted event timeline --
   failures, standing-query registrations/cancels (``standing:``),
   churn-wave firings, and query *batches* (arrivals from
   each mix's Poisson/uniform process, bucketed into ``batch_window``
   buckets so co-arriving queries enter the plane as one concurrent
   burst, which is what exercises probe dedup and sub-query sharing).
3. **Execute** the timeline against the plane, advancing simulated
   time between events.  At equal timestamps failures apply before
   churn before batches, so a batch always sees the world the scenario
   said it would.
4. **Check** continuously: every batch and every phase boundary runs
   through the :class:`~repro.campaigns.oracle.InvariantChecker`.

The runner owns the timeline (no recurring engine-scheduled callbacks),
so the plane's ``run_until_idle`` always terminates and a campaign's
wall-clock is bounded by its declared phase durations.

Crash semantics: the runner deliberately does *not* quiesce after a
crash with a positive ``detection_delay`` -- queries issued inside the
undetected window hit dead trees and must resolve via child timeouts,
which is exactly the behaviour worth testing.  Churn waves, by
contrast, are followed by ``settle`` seconds plus a quiesce (when no
undetected crash is outstanding), restoring a membership-stable state
the differential oracle can check against.
"""

from __future__ import annotations

import random
import time
from typing import Any, Optional

from repro.core.frontend import FrontendConfig
from repro.core.moara_node import MoaraConfig

from repro.campaigns.oracle import InvariantChecker
from repro.campaigns.planes import CampaignPlane, build_plane
from repro.campaigns.report import final_report, phase_report
from repro.campaigns.schema import CampaignSpec, PhaseSpec, QueryMixSpec

__all__ = ["CampaignRunner", "run_campaign"]

#: timeline event priorities at equal timestamps (standing
#: registrations/cancels land after churn but before query batches, so
#: a batch always runs alongside the standing set the scenario declared)
_FAILURE, _CHURN, _STANDING, _BATCH = 0, 1, 2, 3


class CampaignRunner:
    """Executes one campaign on one plane; produces the JSON report."""

    def __init__(self, spec: CampaignSpec, plane: CampaignPlane) -> None:
        self.spec = spec
        self.plane = plane
        self.rng = random.Random(spec.seed)
        ttl = float(spec.node_config.get("result_cache_ttl", 0.0))
        self.checker = InvariantChecker(
            spec.oracle,
            plane,
            seed=spec.seed,
            result_cache_ttl=ttl if ttl > 0 else None,
        )
        #: True when the live membership matches what a centralized scan
        #: would see (no churn applied since the last full quiesce).
        self._stable = True
        #: latest simulated time at which an applied crash becomes
        #: detected; quiescing before then would collapse the undetected
        #: window, so the runner refuses to.
        self._detection_horizon = 0.0
        self._phase_reports: list[dict] = []
        #: standing-query handles, in registration order; entries with
        #: no scripted ``cancel_at`` live until the campaign's final
        #: teardown.  Keyed lookups for cancels go via (phase, index).
        self._standing_handles: list = []
        self._standing_by_key: dict[tuple[str, int], Any] = {}
        if any(phase.faults for phase in spec.phases):
            if not plane.supports_link_faults:
                raise ValueError(
                    f"campaign {spec.name!r} scripts link faults but the "
                    f"{plane.name!r} plane has no transport links; run it "
                    f"with --plane loopback"
                )

    # ------------------------------------------------------------------
    # initial state
    # ------------------------------------------------------------------

    def setup(self) -> None:
        """Build racks, groups, and attribute populations, then settle."""
        spec, plane, rng = self.spec, self.plane, self.rng
        node_ids = plane.node_ids
        if spec.racks > 0:
            for index, node_id in enumerate(node_ids):
                plane.set_attribute(node_id, "rack", f"R{index % spec.racks}")
        for group in spec.groups:
            size = (
                group.size
                if group.size is not None
                else max(1, round(group.fraction * len(node_ids)))
            )
            size = min(size, len(node_ids))
            members = rng.sample(node_ids, size)
            plane.set_group(group.attr, members)
        for attribute in spec.attributes:
            for node_id in node_ids:
                if attribute.distribution == "constant":
                    value = attribute.value
                elif attribute.distribution == "uniform":
                    value = rng.uniform(attribute.low, attribute.high)
                else:  # choice
                    value = rng.choice(list(attribute.choices))
                plane.set_attribute(node_id, attribute.name, value)
        plane.quiesce()

    # ------------------------------------------------------------------
    # timeline compilation
    # ------------------------------------------------------------------

    def _arrival_times(self, mix: QueryMixSpec, duration: float) -> list[float]:
        """Phase-relative arrival instants for one query mix."""
        start = min(mix.start, duration)
        stop = duration if mix.stop is None else min(mix.stop, duration)
        if stop <= start:
            return []
        times: list[float] = []
        if mix.count is not None:
            if mix.arrival == "poisson":
                times = sorted(
                    self.rng.uniform(start, stop) for _ in range(mix.count)
                )
            else:  # uniform: evenly spaced, centred in their slots
                stride = (stop - start) / mix.count
                times = [start + (i + 0.5) * stride for i in range(mix.count)]
        else:
            t = start
            if mix.arrival == "poisson":
                while True:
                    t += self.rng.expovariate(mix.rate)
                    if t >= stop:
                        break
                    times.append(t)
            else:
                stride = 1.0 / mix.rate
                t = start + stride / 2
                while t < stop:
                    times.append(t)
                    t += stride
        return times

    def _compile_phase(self, phase: PhaseSpec) -> list[tuple]:
        """One sorted event list: ``(when, priority, seq, kind, payload)``."""
        events: list[tuple] = []
        seq = 0
        for failure in phase.failures:
            events.append((failure.at, _FAILURE, seq, "failure", failure))
            seq += 1
        for index, sq in enumerate(phase.standing):
            events.append(
                (sq.at, _STANDING, seq, "standing", ("register", index, sq))
            )
            seq += 1
            if sq.cancel_at is not None:
                events.append(
                    (
                        sq.cancel_at,
                        _STANDING,
                        seq,
                        "standing",
                        ("cancel", index, sq),
                    )
                )
                seq += 1
        # Link faults apply at failure priority: a batch firing at the
        # same instant must see the degraded wire, not race past it.
        for fault in phase.faults:
            events.append((fault.at, _FAILURE, seq, "fault", fault))
            seq += 1
        for wave in phase.churn:
            t = wave.interval
            while t < phase.duration:
                events.append((t, _CHURN, seq, "churn", wave))
                seq += 1
                t += wave.interval
        # Bucket arrivals into batch windows; one batch per non-empty
        # window, fired at the window's end.
        window = self.spec.batch_window
        buckets: dict[int, list[str]] = {}
        for mix in phase.queries:
            for t in self._arrival_times(mix, phase.duration):
                buckets.setdefault(int(t / window), []).append(mix.text)
        for index in sorted(buckets):
            when = min((index + 1) * window, phase.duration)
            events.append((when, _BATCH, seq, "batch", buckets[index]))
            seq += 1
        events.sort()
        return events

    # ------------------------------------------------------------------
    # event application
    # ------------------------------------------------------------------

    def _live_ids(self) -> list[int]:
        cluster = self.plane.cluster
        return [
            node_id
            for node_id in self.plane.node_ids
            if cluster.network.is_alive(node_id)
        ]

    def _pick_rack(self, requested: Optional[str]) -> str:
        if requested and requested != "random":
            return requested
        racks = sorted(
            {
                str(node.attributes["rack"])
                for node in self.plane.cluster.nodes.values()
                if "rack" in node.attributes
            }
        )
        if not racks:
            raise ValueError(
                "rack failure in a campaign without 'racks' configured"
            )
        return self.rng.choice(racks)

    def _apply_failure(self, failure) -> dict:
        plane, rng = self.plane, self.rng
        self._stable = False
        if failure.kind == "rack":
            rack = self._pick_rack(failure.rack)
            victims = [
                node_id
                for node_id, node in plane.cluster.nodes.items()
                if node.attributes.get("rack") == rack
                and plane.cluster.network.is_alive(node_id)
            ]
            for node_id in victims:
                plane.crash(node_id, detection_delay=failure.detection_delay)
            applied = {"kind": "rack", "rack": rack, "nodes": len(victims)}
        elif failure.kind == "crash":
            live = self._live_ids()
            victims = rng.sample(live, min(failure.count, max(len(live) - 1, 0)))
            for node_id in victims:
                plane.crash(node_id, detection_delay=failure.detection_delay)
            applied = {"kind": "crash", "nodes": len(victims)}
        elif failure.kind == "join":
            for _ in range(failure.count):
                plane.join()
            applied = {"kind": "join", "nodes": failure.count}
        elif failure.kind == "leave":
            live = self._live_ids()
            victims = rng.sample(live, min(failure.count, max(len(live) - 1, 0)))
            for node_id in victims:
                plane.leave(node_id)
            applied = {"kind": "leave", "nodes": len(victims)}
        else:  # recover
            cluster = self.plane.cluster
            dead = [
                node_id
                for node_id in cluster.nodes
                if not cluster.network.is_alive(node_id)
            ]
            victims = dead[: failure.count]
            for node_id in victims:
                plane.recover(node_id)
            applied = {"kind": "recover", "nodes": len(victims)}
        if failure.kind in ("crash", "rack") and failure.detection_delay > 0:
            self._detection_horizon = max(
                self._detection_horizon,
                plane.now + failure.detection_delay,
            )
        return applied

    def _apply_churn(self, wave) -> None:
        """Rotate ``wave.churn`` members of the group: evict that many
        current members, induct as many current non-members."""
        plane, rng = self.plane, self.rng
        self._stable = False
        live = set(self._live_ids())
        members = sorted(
            plane.members_satisfying(f"{wave.attr} = true") & live
        )
        outsiders = sorted(live - set(members))
        for node_id in rng.sample(members, min(wave.churn, len(members))):
            plane.set_attribute(node_id, wave.attr, False)
        for node_id in rng.sample(outsiders, min(wave.churn, len(outsiders))):
            plane.set_attribute(node_id, wave.attr, True)
        plane.advance(self.spec.settle)
        self._try_restabilize()

    def _try_restabilize(self) -> None:
        """Quiesce and mark the membership stable again -- unless an
        undetected crash is outstanding (quiescing would run its
        detection event early, collapsing the window under test)."""
        if self.plane.now >= self._detection_horizon:
            self.plane.quiesce()
            self._stable = True

    # ------------------------------------------------------------------
    # phase + campaign execution
    # ------------------------------------------------------------------

    def _run_phase(self, phase: PhaseSpec) -> dict:
        plane, checker = self.plane, self.checker
        phase_t0 = plane.now
        before = plane.stats.snapshot()
        violations_before = len(checker.violations)
        results = []
        batches = 0
        applied_failures: list[dict] = []
        for when, _priority, _seq, kind, payload in self._compile_phase(phase):
            target = phase_t0 + when
            if target > plane.now:
                plane.advance(target - plane.now)
            if kind == "failure":
                applied_failures.append(self._apply_failure(payload))
            elif kind == "fault":
                plane.apply_link_fault(payload)
                applied_failures.append(
                    {
                        "kind": f"link-{payload.kind}",
                        "link": payload.link,
                        "direction": payload.direction,
                        "duration": payload.duration,
                    }
                )
            elif kind == "standing":
                action, index, sspec = payload
                if action == "register":
                    handle = plane.register_standing(
                        sspec.text, lease=sspec.lease
                    )
                    self._standing_by_key[(phase.name, index)] = handle
                    self._standing_handles.append(handle)
                else:  # cancel
                    handle = self._standing_by_key.get((phase.name, index))
                    if handle is not None and handle.active:
                        plane.cancel_standing(handle)
            elif kind == "churn":
                self._apply_churn(payload)
            else:  # batch
                batch_before = plane.stats.snapshot()
                batch_results = plane.query_batch(payload)
                checker.check_batch(
                    phase.name,
                    payload,
                    batch_results,
                    batch_before,
                    membership_stable=self._stable,
                )
                results.extend(batch_results)
                batches += 1
        tail = phase_t0 + phase.duration - plane.now
        if tail > 0:
            plane.advance(tail)
        # Phase boundary: drain everything (detections included), check
        # for leaked in-flight state, and restore a stable membership.
        self._detection_horizon = 0.0
        plane.quiesce()
        self._stable = True
        checker.check_phase_end(phase.name)
        checker.check_standing(phase.name, self._standing_handles)
        return phase_report(
            phase,
            results,
            batches,
            plane.stats.delta_since(before),
            checker.violations[violations_before:],
            applied_failures,
            standing_active=sum(
                1 for h in self._standing_handles if h.active
            ),
        )

    def run(self) -> dict:
        started = time.perf_counter()
        self.setup()
        for phase in self.spec.phases:
            self._phase_reports.append(self._run_phase(phase))
        # Campaign teardown: cancel every surviving standing query,
        # drain the cancels, and re-run the leak invariant -- a clean
        # campaign must end with empty subscription tables everywhere.
        survivors = [h for h in self._standing_handles if h.active]
        if survivors:
            for handle in survivors:
                self.plane.cancel_standing(handle)
            self.plane.quiesce()
        if self._standing_handles:
            self.checker.check_phase_end("campaign-teardown")
        return final_report(
            self.spec,
            self.plane,
            self._phase_reports,
            self.checker,
            wall_s=time.perf_counter() - started,
        )


def run_campaign(spec: CampaignSpec, plane: str = "sim") -> dict:
    """Build the plane a campaign declares, run it, return the report."""
    node_config = (
        MoaraConfig(**dict(spec.node_config)) if spec.node_config else None
    )
    frontend_config = (
        FrontendConfig(**dict(spec.frontend_config))
        if spec.frontend_config
        else None
    )
    built = build_plane(
        plane,
        spec.nodes,
        seed=spec.seed,
        num_frontends=spec.frontends,
        latency=spec.latency,
        config=node_config,
        frontend_config=frontend_config,
    )
    return CampaignRunner(spec, built).run()
