"""Declarative campaign schema: scenarios as data, not scripts.

A *campaign* is a YAML (or JSON) document describing a full evaluation
scenario -- cluster shape, group membership builds, attribute
populations, and a sequence of timed *phases*, each mixing query arrival
processes, churn waves, and correlated failures -- in the spirit of
magi's AAL event streams (groups, agents, trigger-chained timed event
streams).  The schema layer turns that document into frozen dataclasses
with **strict validation**: unknown keys are errors, so a typo'd knob
can never silently produce a different scenario.

Every key the loader accepts is listed in the ``*_KEYS`` constants
below; ``scripts/check_docs.py`` cross-checks the keys documented in
``docs/CAMPAIGNS.md`` against them, so the schema reference cannot
drift from the code.

This module imports only the standard library at module scope (the YAML
parser is imported lazily inside :func:`load_campaign`), so tooling that
only needs the schema -- the docs checker, editors -- can import it in a
bare interpreter.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Mapping, Optional, Union

__all__ = [
    "ATTRIBUTE_KEYS",
    "CAMPAIGN_KEYS",
    "CHURN_KEYS",
    "FAILURE_KEYS",
    "FRONTEND_CONFIG_KEYS",
    "GROUP_KEYS",
    "LINK_FAULT_KEYS",
    "NODE_CONFIG_KEYS",
    "ORACLE_KEYS",
    "PHASE_KEYS",
    "QUERY_KEYS",
    "STANDING_KEYS",
    "AttributeSpec",
    "CampaignSpec",
    "CampaignSchemaError",
    "ChurnSpec",
    "FailureSpec",
    "GroupSpec",
    "LinkFaultSpec",
    "OracleSpec",
    "PhaseSpec",
    "QueryMixSpec",
    "StandingSpec",
    "all_schema_keys",
    "campaign_from_dict",
    "load_campaign",
]


class CampaignSchemaError(ValueError):
    """A campaign document does not satisfy the schema."""


# ---------------------------------------------------------------------------
# leaf specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GroupSpec:
    """One group membership build: ``attr = true`` on a member subset."""

    attr: str
    size: Optional[int] = None
    fraction: Optional[float] = None


@dataclass(frozen=True)
class AttributeSpec:
    """One value attribute populated on every node."""

    name: str
    distribution: str = "constant"  # constant | uniform | choice
    value: Any = 0.0
    low: float = 0.0
    high: float = 1.0
    choices: tuple = ()


@dataclass(frozen=True)
class QueryMixSpec:
    """One query stream inside a phase, with its arrival process."""

    text: str
    rate: Optional[float] = None  # arrivals per simulated second
    count: Optional[int] = None  # alternative: exact number of arrivals
    arrival: str = "poisson"  # poisson | uniform
    start: float = 0.0  # offset into the phase
    stop: Optional[float] = None  # offset; None = phase end


@dataclass(frozen=True)
class StandingSpec:
    """One standing query inside a phase: registered at ``at`` and, if
    ``cancel_at`` is set, cancelled at that phase-relative time;
    otherwise it lives until the end of the campaign (the runner
    cancels all survivors and re-checks the leak invariant).  ``lease``
    > 0 arms root-side lease expiry (the runner never renews, so an
    expiring lease is a scripted way to exercise the expiry path)."""

    text: str
    at: float = 0.0
    cancel_at: Optional[float] = None
    lease: float = 0.0


@dataclass(frozen=True)
class ChurnSpec:
    """A churn wave: every ``interval`` s, rotate ``churn`` group members."""

    attr: str
    churn: int
    interval: float


@dataclass(frozen=True)
class FailureSpec:
    """A failure (or membership) event at a phase-relative time."""

    kind: str  # crash | rack | join | leave | recover
    at: float
    count: int = 1
    rack: Optional[str] = None  # rack name, or "random"
    detection_delay: float = 0.0


@dataclass(frozen=True)
class LinkFaultSpec:
    """A transport-level link fault at a phase-relative time.

    Executed by the loopback plane's :class:`~repro.serve.chaos.
    ChaosTransport` wrappers (the sim plane has no transport links and
    rejects campaigns that script these).  ``reset`` is an event — the
    link dies now, in-flight work fails, and sends fail fast for
    ``duration`` seconds; the other kinds are a *state* held for
    ``duration`` seconds.
    """

    kind: str  # drop | delay | duplicate | reset | partition
    at: float
    duration: float = 0.0
    link: Union[int, str] = "all"  # front-end shard index, or "all"
    direction: str = "both"  # outbound | inbound | both
    p: float = 1.0  # per-frame probability (partition ignores it)
    delay: float = 0.0  # seconds a delayed frame is held (kind=delay)


@dataclass(frozen=True)
class PhaseSpec:
    """One timed phase: query mixes + churn waves + failures."""

    name: str
    duration: float
    queries: tuple[QueryMixSpec, ...] = ()
    standing: tuple[StandingSpec, ...] = ()
    churn: tuple[ChurnSpec, ...] = ()
    failures: tuple[FailureSpec, ...] = ()
    faults: tuple[LinkFaultSpec, ...] = ()


@dataclass(frozen=True)
class OracleSpec:
    """Which invariants the built-in correctness oracle enforces."""

    sample_rate: float = 0.25
    check_differential: bool = True
    check_probes: bool = True
    check_inflight: bool = True
    check_staleness: bool = True
    probe_slack: int = 0
    tolerance: float = 1e-9


@dataclass(frozen=True)
class CampaignSpec:
    """A complete declarative scenario campaign."""

    name: str
    nodes: int
    phases: tuple[PhaseSpec, ...]
    description: str = ""
    seed: int = 0
    frontends: int = 2
    latency: str = "zero"  # zero | lan | uniform
    racks: int = 0  # >0 assigns every node a "rack" attribute R0..R{n-1}
    batch_window: float = 1.0  # arrivals in one window form one burst
    settle: float = 0.5  # seconds granted for churn to propagate
    node_config: Mapping[str, Any] = field(default_factory=dict)
    frontend_config: Mapping[str, Any] = field(default_factory=dict)
    groups: tuple[GroupSpec, ...] = ()
    attributes: tuple[AttributeSpec, ...] = ()
    oracle: OracleSpec = field(default_factory=OracleSpec)


# ---------------------------------------------------------------------------
# accepted keys (the documented schema; check_docs cross-references these)
# ---------------------------------------------------------------------------

CAMPAIGN_KEYS = frozenset(
    {
        "name",
        "description",
        "seed",
        "nodes",
        "frontends",
        "latency",
        "racks",
        "batch_window",
        "settle",
        "node_config",
        "frontend_config",
        "groups",
        "attributes",
        "phases",
        "oracle",
    }
)
GROUP_KEYS = frozenset({"attr", "size", "fraction"})
ATTRIBUTE_KEYS = frozenset(
    {"name", "distribution", "value", "low", "high", "choices"}
)
PHASE_KEYS = frozenset(
    {"name", "duration", "queries", "standing", "churn", "failures", "faults"}
)
QUERY_KEYS = frozenset({"text", "rate", "count", "arrival", "start", "stop"})
STANDING_KEYS = frozenset({"text", "at", "cancel_at", "lease"})
CHURN_KEYS = frozenset({"attr", "churn", "interval"})
FAILURE_KEYS = frozenset({"kind", "at", "count", "rack", "detection_delay"})
LINK_FAULT_KEYS = frozenset(
    {"kind", "at", "duration", "link", "direction", "p", "delay"}
)
ORACLE_KEYS = frozenset(
    {
        "sample_rate",
        "check_differential",
        "check_probes",
        "check_inflight",
        "check_staleness",
        "probe_slack",
        "tolerance",
    }
)
#: MoaraConfig knobs a campaign may override (a curated, serializable
#: subset -- callables like ``gc_policy_factory`` stay out of YAML).
NODE_CONFIG_KEYS = frozenset(
    {
        "threshold",
        "child_timeout",
        "answered_ttl",
        "result_cache_ttl",
        "result_cache_size",
        "result_cache_ttl_min",
        "result_cache_eviction",
        "adaptive_result_ttl",
        "churn_window",
        "share_executions",
    }
)
#: FrontendConfig knobs a campaign may override.
FRONTEND_CONFIG_KEYS = frozenset(
    {
        "plan_cache_size",
        "size_cache_ttl",
        "size_cache_ttl_min",
        "adaptive_size_ttl",
        "churn_window",
        "share_subqueries",
        "dedupe_probes",
        "piggyback_sizes",
        "standing_replan_every",
    }
)

_LATENCIES = ("zero", "lan", "uniform")
_ARRIVALS = ("poisson", "uniform")
_FAILURE_KINDS = ("crash", "rack", "join", "leave", "recover")
_LINK_FAULT_KINDS = ("drop", "delay", "duplicate", "reset", "partition")
_LINK_DIRECTIONS = ("outbound", "inbound", "both")


def all_schema_keys() -> frozenset[str]:
    """The union of every key accepted anywhere in a campaign document
    (what ``scripts/check_docs.py`` validates documentation against)."""
    return (
        CAMPAIGN_KEYS
        | GROUP_KEYS
        | ATTRIBUTE_KEYS
        | PHASE_KEYS
        | QUERY_KEYS
        | STANDING_KEYS
        | CHURN_KEYS
        | FAILURE_KEYS
        | LINK_FAULT_KEYS
        | ORACLE_KEYS
        | NODE_CONFIG_KEYS
        | FRONTEND_CONFIG_KEYS
    )


# ---------------------------------------------------------------------------
# validation helpers
# ---------------------------------------------------------------------------


def _require_mapping(value: Any, where: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise CampaignSchemaError(f"{where}: expected a mapping, got {value!r}")
    return value


def _check_keys(data: Mapping[str, Any], allowed: frozenset, where: str) -> None:
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise CampaignSchemaError(
            f"{where}: unknown key(s) {unknown}; valid keys: {sorted(allowed)}"
        )


def _build(cls: type, data: Mapping[str, Any], where: str) -> Any:
    """Construct a frozen spec dataclass, normalising lists to tuples."""
    kwargs = {}
    for spec_field in fields(cls):
        if spec_field.name in data:
            value = data[spec_field.name]
            if isinstance(value, list):
                value = tuple(value)
            kwargs[spec_field.name] = value
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise CampaignSchemaError(f"{where}: {exc}") from exc


def _parse_group(data: Any, where: str) -> GroupSpec:
    data = _require_mapping(data, where)
    _check_keys(data, GROUP_KEYS, where)
    spec = _build(GroupSpec, data, where)
    if not spec.attr:
        raise CampaignSchemaError(f"{where}: 'attr' is required")
    if (spec.size is None) == (spec.fraction is None):
        raise CampaignSchemaError(
            f"{where}: exactly one of 'size' / 'fraction' is required"
        )
    if spec.fraction is not None and not 0.0 < spec.fraction <= 1.0:
        raise CampaignSchemaError(f"{where}: 'fraction' must be in (0, 1]")
    if spec.size is not None and spec.size < 1:
        raise CampaignSchemaError(f"{where}: 'size' must be >= 1")
    return spec


def _parse_attribute(data: Any, where: str) -> AttributeSpec:
    data = _require_mapping(data, where)
    _check_keys(data, ATTRIBUTE_KEYS, where)
    spec = _build(AttributeSpec, data, where)
    if not spec.name:
        raise CampaignSchemaError(f"{where}: 'name' is required")
    if spec.distribution not in ("constant", "uniform", "choice"):
        raise CampaignSchemaError(
            f"{where}: unknown distribution {spec.distribution!r}"
        )
    if spec.distribution == "choice" and not spec.choices:
        raise CampaignSchemaError(f"{where}: 'choices' must be non-empty")
    if spec.distribution == "uniform" and spec.high < spec.low:
        raise CampaignSchemaError(f"{where}: 'high' must be >= 'low'")
    return spec


def _parse_query(data: Any, where: str) -> QueryMixSpec:
    data = _require_mapping(data, where)
    _check_keys(data, QUERY_KEYS, where)
    spec = _build(QueryMixSpec, data, where)
    if not spec.text:
        raise CampaignSchemaError(f"{where}: 'text' is required")
    if (spec.rate is None) == (spec.count is None):
        raise CampaignSchemaError(
            f"{where}: exactly one of 'rate' / 'count' is required"
        )
    if spec.rate is not None and spec.rate <= 0:
        raise CampaignSchemaError(f"{where}: 'rate' must be positive")
    if spec.count is not None and spec.count < 1:
        raise CampaignSchemaError(f"{where}: 'count' must be >= 1")
    if spec.arrival not in _ARRIVALS:
        raise CampaignSchemaError(
            f"{where}: unknown arrival {spec.arrival!r}; use {_ARRIVALS}"
        )
    return spec


def _parse_standing(data: Any, where: str) -> StandingSpec:
    data = _require_mapping(data, where)
    _check_keys(data, STANDING_KEYS, where)
    spec = _build(StandingSpec, data, where)
    if not spec.text:
        raise CampaignSchemaError(f"{where}: 'text' is required")
    if spec.at < 0:
        raise CampaignSchemaError(f"{where}: 'at' must be >= 0")
    if spec.cancel_at is not None and spec.cancel_at <= spec.at:
        raise CampaignSchemaError(
            f"{where}: 'cancel_at' must be after 'at'"
        )
    if spec.lease < 0:
        raise CampaignSchemaError(f"{where}: 'lease' must be >= 0")
    return spec


def _parse_churn(data: Any, where: str) -> ChurnSpec:
    data = _require_mapping(data, where)
    _check_keys(data, CHURN_KEYS, where)
    spec = _build(ChurnSpec, data, where)
    if not spec.attr:
        raise CampaignSchemaError(f"{where}: 'attr' is required")
    if spec.churn < 1:
        raise CampaignSchemaError(f"{where}: 'churn' must be >= 1")
    if spec.interval <= 0:
        raise CampaignSchemaError(f"{where}: 'interval' must be positive")
    return spec


def _parse_failure(data: Any, where: str) -> FailureSpec:
    data = _require_mapping(data, where)
    _check_keys(data, FAILURE_KEYS, where)
    spec = _build(FailureSpec, data, where)
    if spec.kind not in _FAILURE_KINDS:
        raise CampaignSchemaError(
            f"{where}: unknown kind {spec.kind!r}; use {_FAILURE_KINDS}"
        )
    if spec.at < 0:
        raise CampaignSchemaError(f"{where}: 'at' must be >= 0")
    if spec.count < 1:
        raise CampaignSchemaError(f"{where}: 'count' must be >= 1")
    if spec.kind == "rack" and spec.rack is None:
        raise CampaignSchemaError(
            f"{where}: rack failures need 'rack' (a name, or 'random')"
        )
    return spec


def _parse_link_fault(data: Any, where: str) -> LinkFaultSpec:
    data = _require_mapping(data, where)
    _check_keys(data, LINK_FAULT_KEYS, where)
    spec = _build(LinkFaultSpec, data, where)
    if spec.kind not in _LINK_FAULT_KINDS:
        raise CampaignSchemaError(
            f"{where}: unknown kind {spec.kind!r}; use {_LINK_FAULT_KINDS}"
        )
    if spec.at < 0:
        raise CampaignSchemaError(f"{where}: 'at' must be >= 0")
    if spec.duration < 0:
        raise CampaignSchemaError(f"{where}: 'duration' must be >= 0")
    if spec.kind != "reset" and spec.duration == 0:
        raise CampaignSchemaError(
            f"{where}: {spec.kind!r} faults need 'duration' > 0 "
            f"(only 'reset' may be instantaneous)"
        )
    if spec.direction not in _LINK_DIRECTIONS:
        raise CampaignSchemaError(
            f"{where}: unknown direction {spec.direction!r}; "
            f"use {_LINK_DIRECTIONS}"
        )
    if not 0.0 < spec.p <= 1.0:
        raise CampaignSchemaError(f"{where}: 'p' must be in (0, 1]")
    if spec.kind == "delay" and spec.delay <= 0:
        raise CampaignSchemaError(
            f"{where}: delay faults need 'delay' > 0"
        )
    if spec.link != "all" and (
        not isinstance(spec.link, int) or spec.link < 0
    ):
        raise CampaignSchemaError(
            f"{where}: 'link' must be a front-end shard index or 'all'"
        )
    return spec


def _parse_phase(data: Any, where: str) -> PhaseSpec:
    data = _require_mapping(data, where)
    _check_keys(data, PHASE_KEYS, where)
    queries = tuple(
        _parse_query(entry, f"{where}.queries[{i}]")
        for i, entry in enumerate(data.get("queries", ()))
    )
    standing = tuple(
        _parse_standing(entry, f"{where}.standing[{i}]")
        for i, entry in enumerate(data.get("standing", ()))
    )
    churn = tuple(
        _parse_churn(entry, f"{where}.churn[{i}]")
        for i, entry in enumerate(data.get("churn", ()))
    )
    failures = tuple(
        _parse_failure(entry, f"{where}.failures[{i}]")
        for i, entry in enumerate(data.get("failures", ()))
    )
    faults = tuple(
        _parse_link_fault(entry, f"{where}.faults[{i}]")
        for i, entry in enumerate(data.get("faults", ()))
    )
    spec = PhaseSpec(
        name=str(data.get("name", "")),
        duration=float(data.get("duration", 0.0)),
        queries=queries,
        standing=standing,
        churn=churn,
        failures=failures,
        faults=faults,
    )
    if not spec.name:
        raise CampaignSchemaError(f"{where}: 'name' is required")
    if spec.duration <= 0:
        raise CampaignSchemaError(f"{where}: 'duration' must be positive")
    for i, failure in enumerate(failures):
        if failure.at > spec.duration:
            raise CampaignSchemaError(
                f"{where}.failures[{i}]: 'at' {failure.at} is past the "
                f"phase duration {spec.duration}"
            )
    for i, fault in enumerate(faults):
        if fault.at > spec.duration:
            raise CampaignSchemaError(
                f"{where}.faults[{i}]: 'at' {fault.at} is past the "
                f"phase duration {spec.duration}"
            )
    for i, sq in enumerate(standing):
        if sq.at > spec.duration:
            raise CampaignSchemaError(
                f"{where}.standing[{i}]: 'at' {sq.at} is past the "
                f"phase duration {spec.duration}"
            )
        if sq.cancel_at is not None and sq.cancel_at > spec.duration:
            raise CampaignSchemaError(
                f"{where}.standing[{i}]: 'cancel_at' {sq.cancel_at} is "
                f"past the phase duration {spec.duration}"
            )
    return spec


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def campaign_from_dict(
    data: Mapping[str, Any], source: str = "<campaign>"
) -> CampaignSpec:
    """Validate a raw campaign document into a :class:`CampaignSpec`."""
    data = _require_mapping(data, source)
    _check_keys(data, CAMPAIGN_KEYS, source)
    node_config = _require_mapping(
        data.get("node_config", {}), f"{source}.node_config"
    )
    _check_keys(node_config, NODE_CONFIG_KEYS, f"{source}.node_config")
    frontend_config = _require_mapping(
        data.get("frontend_config", {}), f"{source}.frontend_config"
    )
    _check_keys(
        frontend_config, FRONTEND_CONFIG_KEYS, f"{source}.frontend_config"
    )
    oracle_data = _require_mapping(data.get("oracle", {}), f"{source}.oracle")
    _check_keys(oracle_data, ORACLE_KEYS, f"{source}.oracle")

    groups = tuple(
        _parse_group(entry, f"{source}.groups[{i}]")
        for i, entry in enumerate(data.get("groups", ()))
    )
    attributes = tuple(
        _parse_attribute(entry, f"{source}.attributes[{i}]")
        for i, entry in enumerate(data.get("attributes", ()))
    )
    phases = tuple(
        _parse_phase(entry, f"{source}.phases[{i}]")
        for i, entry in enumerate(data.get("phases", ()))
    )

    spec = CampaignSpec(
        name=str(data.get("name", "")),
        description=str(data.get("description", "")),
        seed=int(data.get("seed", 0)),
        nodes=int(data.get("nodes", 0)),
        frontends=int(data.get("frontends", 2)),
        latency=str(data.get("latency", "zero")),
        racks=int(data.get("racks", 0)),
        batch_window=float(data.get("batch_window", 1.0)),
        settle=float(data.get("settle", 0.5)),
        node_config=dict(node_config),
        frontend_config=dict(frontend_config),
        groups=groups,
        attributes=attributes,
        phases=phases,
        oracle=_build(OracleSpec, oracle_data, f"{source}.oracle"),
    )
    if not spec.name:
        raise CampaignSchemaError(f"{source}: 'name' is required")
    if spec.nodes < 1:
        raise CampaignSchemaError(f"{source}: 'nodes' must be >= 1")
    if spec.frontends < 1:
        raise CampaignSchemaError(f"{source}: 'frontends' must be >= 1")
    if spec.latency not in _LATENCIES:
        raise CampaignSchemaError(
            f"{source}: unknown latency {spec.latency!r}; use {_LATENCIES}"
        )
    if spec.batch_window <= 0:
        raise CampaignSchemaError(f"{source}: 'batch_window' must be positive")
    if spec.settle < 0:
        raise CampaignSchemaError(f"{source}: 'settle' must be >= 0")
    if not spec.phases:
        raise CampaignSchemaError(f"{source}: at least one phase is required")
    if not 0.0 <= spec.oracle.sample_rate <= 1.0:
        raise CampaignSchemaError(
            f"{source}.oracle: 'sample_rate' must be in [0, 1]"
        )
    return spec


def load_campaign(path: Union[str, Path]) -> CampaignSpec:
    """Load and validate a campaign from a ``.yaml``/``.yml``/``.json`` file.

    YAML support needs PyYAML; the import is deferred to here so the
    schema module itself stays importable in a bare interpreter (JSON
    campaigns always work).
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignSchemaError(f"{path}: invalid JSON ({exc})") from exc
    else:
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise CampaignSchemaError(
                f"{path}: loading YAML campaigns requires PyYAML "
                f"(pip install pyyaml), or convert the campaign to .json"
            ) from exc
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise CampaignSchemaError(f"{path}: invalid YAML ({exc})") from exc
    return campaign_from_dict(data, source=str(path))
