"""Campaign report assembly: one JSON schema for both planes.

The report a campaign run emits is versioned (``schema``) and has the
same key structure whether it ran on the simulator or the loopback
deployed plane, so runs can be diffed across planes, archived as CI
artifacts, and consumed by ``scripts/perf_guard.py`` without
plane-specific parsing.

Layout::

    schema, campaign, description, plane, seed, nodes, frontends,
    wall_s,
    phases: [
      { name, duration, batches, queries, latency{...},
        messages{total, by_type}, cache{...}, failed_queries,
        standing_active, failures[...], violations[...] }
    ],
    totals:     { queries, batches, messages, failed_queries,
                  standing{...}, violations },
    invariants: { checked, sampled, standing_checked, skipped_epoch,
                  explicit_failures, violations, by_invariant },
    ok
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.query import QueryResult
from repro.sim.stats import StatsSnapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.campaigns.oracle import InvariantChecker
    from repro.campaigns.planes import CampaignPlane
    from repro.campaigns.schema import CampaignSpec, PhaseSpec

__all__ = ["REPORT_SCHEMA", "final_report", "latency_summary", "phase_report"]

#: bump when the report's key structure changes
REPORT_SCHEMA = 1


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[rank]


def latency_summary(results: list[QueryResult]) -> dict:
    """Latency distribution plus answer-path counters for one result set."""
    ordered = sorted(result.latency for result in results)
    return {
        "count": len(results),
        "mean": (sum(ordered) / len(ordered)) if ordered else 0.0,
        "p50": _percentile(ordered, 0.50),
        "p95": _percentile(ordered, 0.95),
        "max": ordered[-1] if ordered else 0.0,
    }


def _cache_summary(results: list[QueryResult]) -> dict:
    return {
        "plan_cached": sum(1 for r in results if r.plan_cached),
        "root_cached": sum(1 for r in results if r.root_cached),
        "root_shared": sum(1 for r in results if r.root_shared),
        "shared": sum(1 for r in results if r.shared),
    }


def phase_report(
    phase: "PhaseSpec",
    results: list[QueryResult],
    batches: int,
    delta: StatsSnapshot,
    violations: list[dict],
    failures: list[dict],
    standing_active: int = 0,
) -> dict:
    """The per-phase section of the campaign report."""
    return {
        "name": phase.name,
        "duration": phase.duration,
        "batches": batches,
        "queries": len(results),
        "latency": latency_summary(results),
        "messages": {
            "total": delta.total_messages,
            "by_type": dict(sorted(delta.by_type.items())),
        },
        "cache": _cache_summary(results),
        "failed_queries": sum(1 for r in results if r.failed),
        "standing_active": standing_active,
        "failures": failures,
        "violations": violations,
    }


def final_report(
    spec: "CampaignSpec",
    plane: "CampaignPlane",
    phases: list[dict],
    checker: "InvariantChecker",
    wall_s: float,
) -> dict:
    """Assemble the complete versioned report."""
    invariants = checker.summary()
    stats = plane.stats
    return {
        "schema": REPORT_SCHEMA,
        "campaign": spec.name,
        "description": spec.description,
        "plane": plane.name,
        "seed": spec.seed,
        "nodes": spec.nodes,
        "frontends": spec.frontends,
        "wall_s": round(wall_s, 3),
        "phases": phases,
        "totals": {
            "queries": sum(p["queries"] for p in phases),
            "batches": sum(p["batches"] for p in phases),
            "messages": sum(p["messages"]["total"] for p in phases),
            "root_cache_hits": stats.root_cache_hits,
            "root_cache_misses": stats.root_cache_misses,
            "root_subscriptions": stats.root_subscriptions,
            "shared_probe_joins": stats.shared_probe_joins,
            "standing": plane.standing_stats(),
            "failed_queries": sum(p["failed_queries"] for p in phases),
            "violations": invariants["violations"],
        },
        "invariants": invariants,
        "ok": invariants["violations"] == 0,
    }
