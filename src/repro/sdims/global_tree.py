"""The "SDIMS approach" baseline: one global tree, no group pruning.

Paper Section 7.2 (Figure 12(a)): "we compare this performance against an
approach where a single global tree is used system-wide -- this is labelled
as the SDIMS approach in the plot", and Section 7.1 (Figure 9): "the Global
approach, where no group trees are maintained and queries are sent to all
the nodes on the DHT trees".

Both are the same protocol configuration: Moara with the NEVER_UPDATE
maintenance policy.  No node ever reports PRUNE/NO-PRUNE, so every query
reaches every node in the system and the answer aggregates back up the full
DHT tree.  Size probes are pointless (no cost differentiation), so the
front-end never sends them.

(Of the repo's three execution modes -- one-shot, continuous ablation,
standing; docs/STANDING_QUERIES.md -- this class belongs to the
*one-shot* column: it changes tree maintenance, not the execution
model.  The aggregate-on-write comparison lives in
:mod:`repro.sdims.continuous`.)
"""

from __future__ import annotations

from typing import Optional

from repro.core.adapt import AdaptationConfig, MaintenancePolicy
from repro.core.cluster import MoaraCluster
from repro.core.frontend import ProbePolicy
from repro.core.moara_node import MoaraConfig
from repro.pastry.idspace import IdSpace
from repro.sim.latency import LatencyModel

__all__ = ["SDIMSCluster"]


class SDIMSCluster(MoaraCluster):
    """A deployment that answers every query by global broadcast."""

    def __init__(
        self,
        num_nodes: int,
        seed: int = 0,
        latency_model: Optional[LatencyModel] = None,
        space: Optional[IdSpace] = None,
        child_timeout: Optional[float] = None,
    ) -> None:
        config = MoaraConfig(
            adaptation=AdaptationConfig(policy=MaintenancePolicy.NEVER_UPDATE),
            threshold=1,
            child_timeout=child_timeout,
        )
        super().__init__(
            num_nodes,
            seed=seed,
            latency_model=latency_model,
            config=config,
            space=space,
            probe_policy=ProbePolicy.NEVER,
        )
