"""SDIMS-style aggregation substrate and baseline.

The paper's prototype is layered on SDIMS (Yalagandula & Dahlin, SIGCOMM
2004), and its evaluation compares against "the SDIMS approach" -- a single
system-wide aggregation tree per attribute with no group pruning.  This
package provides both SDIMS roles:

* :class:`SDIMSCluster` -- the baseline of Figures 9 and 12(a): every query
  is broadcast down the whole DHT tree and aggregated back up (Moara with
  the NEVER_UPDATE maintenance policy, which never prunes).
* :class:`ContinuousAggregationSystem` -- SDIMS's native aggregate-on-write
  mode: each node continuously maintains the partial aggregate of its
  subtree and pushes changes toward the root, so reads are answered by the
  root instantly.  Used by the ablation benchmark comparing one-shot
  querying against continuous aggregation under varying update rates.

With the standing-query plane (:mod:`repro.standing`) in the tree, this
package is the **ablation baseline** among the repo's three execution
modes (one-shot / continuous / standing; see docs/STANDING_QUERIES.md):
continuous mode is push *without* group predicates, planner-chosen
covers, leases, or an ordering contract -- one attribute per
installation over the single global tree.  What the standing plane adds
over this substrate is precisely what the comparison table documents.
"""

from repro.sdims.continuous import (
    ContinuousAggregationNode,
    ContinuousAggregationSystem,
)
from repro.sdims.global_tree import SDIMSCluster

__all__ = [
    "ContinuousAggregationNode",
    "ContinuousAggregationSystem",
    "SDIMSCluster",
]
