"""Continuous (aggregate-on-write) hierarchical aggregation.

This is SDIMS's native mode of operation: an aggregation function is
*installed* for an attribute; every node maintains the partial aggregate of
its subtree and pushes a refreshed partial to its parent whenever its
subtree's aggregate changes.  Reads ("probes") are then answered by the
root from local state in O(1) messages.

Moara deliberately chose one-shot on-demand aggregation instead; the
ablation benchmark ``benchmarks/bench_ablation_continuous.py`` quantifies
the trade-off the paper argues informally: continuous aggregation wins when
reads vastly outnumber writes, and loses badly under write-heavy churn.

This module is also the seed the standing-query plane
(:mod:`repro.standing`) grew from, and remains its **ablation
baseline**: both push deltas up a tree instead of polling, but
continuous mode has no group predicates (one attribute per installation,
every node contributes), no planner or enmeshed multi-group covers, no
leases, and no per-query ordering/staleness contract -- the root just
holds the latest partial.  Keep this module frozen as-is: the
one-shot / continuous / standing comparison (docs/STANDING_QUERIES.md)
is only meaningful while the middle mode stays the simple substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.aggregation import AggregateFunction
from repro.pastry.idspace import IdSpace
from repro.pastry.overlay import Overlay
from repro.sim.engine import Engine
from repro.sim.latency import LatencyModel, ZeroLatencyModel
from repro.sim.network import Message, Network
from repro.sim.stats import MessageStats

__all__ = ["ContinuousAggregationNode", "ContinuousAggregationSystem"]

AGG_UPDATE = "AGG_UPDATE"


@dataclass
class _Installation:
    """Per-(node, attribute) aggregation state."""

    function: AggregateFunction
    local_value: Any = None
    child_partials: dict[int, Any] = field(default_factory=dict)
    last_pushed: Any = None
    pushed_once: bool = False

    def subtree_partial(self, node_id: int) -> Any:
        partial = (
            None
            if self.local_value is None
            else self.function.lift(self.local_value, node_id)
        )
        for child_partial in self.child_partials.values():
            partial = self.function.merge(partial, child_partial)
        return partial


class ContinuousAggregationNode:
    """One node of the aggregate-on-write tree."""

    def __init__(self, node_id: int, overlay: Overlay, network: Network) -> None:
        self.node_id = node_id
        self.overlay = overlay
        self.network = network
        self.installations: dict[str, _Installation] = {}

    def install(self, attr: str, function: AggregateFunction) -> None:
        """Install an aggregation function for an attribute."""
        if attr not in self.installations:
            self.installations[attr] = _Installation(function)

    def set_value(self, attr: str, value: Any) -> None:
        """Update the local reading and propagate the new partial."""
        installation = self.installations[attr]
        installation.local_value = value
        self._push(attr)

    def handle_message(self, message: Message) -> None:
        if message.mtype != AGG_UPDATE:
            raise ValueError(f"unexpected message {message.mtype!r}")
        attr = message.payload["attr"]
        installation = self.installations.get(attr)
        if installation is None:
            return  # not installed here (partial deployment); drop
        installation.child_partials[message.src] = message.payload["partial"]
        self._push(attr)

    def _push(self, attr: str) -> None:
        """Send the refreshed subtree partial to the parent if it changed."""
        installation = self.installations[attr]
        tree_key = self.overlay.space.hash_name(attr)
        parent = self.overlay.parent(self.node_id, tree_key)
        if parent is None:
            return  # we are the root; reads come straight from our state
        partial = installation.subtree_partial(self.node_id)
        if installation.pushed_once and partial == installation.last_pushed:
            return  # suppression: no change, no message
        installation.last_pushed = partial
        installation.pushed_once = True
        self.network.send(
            self.node_id,
            parent,
            AGG_UPDATE,
            {"attr": attr, "partial": partial},
        )

    def root_value(self, attr: str) -> Any:
        """The aggregate over the whole system, as known at this node
        (meaningful when this node is the attribute's tree root)."""
        installation = self.installations[attr]
        return installation.function.finalize(
            installation.subtree_partial(self.node_id)
        )


class ContinuousAggregationSystem:
    """A full aggregate-on-write deployment over a fresh overlay."""

    def __init__(
        self,
        num_nodes: int,
        seed: int = 0,
        latency_model: Optional[LatencyModel] = None,
        space: Optional[IdSpace] = None,
    ) -> None:
        self.engine = Engine()
        self.stats = MessageStats()
        self.network = Network(
            self.engine, latency_model or ZeroLatencyModel(), self.stats
        )
        self.overlay = Overlay(space or IdSpace())
        ids = self.overlay.generate_ids(num_nodes, seed=seed)
        self.nodes: dict[int, ContinuousAggregationNode] = {}
        for node_id in ids:
            node = ContinuousAggregationNode(node_id, self.overlay, self.network)
            self.nodes[node_id] = node
            self.network.attach(node)
        self.overlay.bulk_join(ids)

    @property
    def node_ids(self) -> list[int]:
        return self.overlay.node_ids

    def install(self, attr: str, function: AggregateFunction) -> None:
        """Install an aggregation on every node."""
        for node in self.nodes.values():
            node.install(attr, function)

    def set_value(self, node_id: int, attr: str, value: Any) -> None:
        """Update one node's reading (triggers propagation)."""
        self.nodes[node_id].set_value(attr, value)

    def settle(self, max_events: int = 10_000_000) -> None:
        """Run the engine until propagation quiesces."""
        self.engine.run_until_idle(max_events=max_events)

    def read(self, attr: str) -> Any:
        """Read the global aggregate at the attribute's tree root.

        This is the O(1) read that continuous aggregation buys: the root
        already holds the answer (plus one request/response pair in a real
        deployment, which we charge to stay comparable with Moara)."""
        root = self.overlay.root(self.overlay.space.hash_name(attr))
        # Charge the read round-trip a client would pay.
        self.stats.record_send(-1, root, "AGG_READ", 64)
        self.stats.record_send(root, -1, "AGG_READ_REPLY", 64)
        return self.nodes[root].root_value(attr)
