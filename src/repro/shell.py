"""Interactive Moara shell (paper Section 7, "Moara Front-End").

"Through the interactive shell, a user can submit SQL-like aggregation
queries to Moara."  This module provides that shell over a simulated
deployment, which is bootstrapped with a synthetic data-center inventory so
there is something to query out of the box.

Run ``moara-shell`` (installed by the package) or ``python -m repro.shell``.

Commands::

    SELECT AVG(cpu-util) WHERE floor = 'F0'    run a query
    (cpu-util, max, ServiceX = true)            ... or in triple form
    .nodes                                      show cluster size
    .set <node-index> <attr> <value>            set an attribute
    .groups <predicate>                         list satisfying nodes
    .stats                                      message counters
    .help                                       this text
    .quit                                       exit
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.core import MoaraCluster, MoaraError
from repro.workloads.groups import DatacenterInventory

__all__ = ["MoaraShell", "main"]

_HELP = __doc__.split("Commands::", 1)[1]


class MoaraShell:
    """A tiny REPL bound to one cluster."""

    def __init__(self, cluster: Optional[MoaraCluster] = None) -> None:
        if cluster is None:
            cluster = MoaraCluster(num_nodes=100, seed=42)
            DatacenterInventory(seed=42).populate(cluster)
        self.cluster = cluster

    def execute(self, line: str) -> str:
        """Run one command/query; returns the text to display."""
        line = line.strip()
        if not line:
            return ""
        if line.startswith("."):
            return self._command(line)
        try:
            result = self.cluster.query(line)
        except MoaraError as exc:
            return f"error: {exc}"
        return (
            f"value: {result.value}\n"
            f"cover: {', '.join(result.cover) or '(answered locally)'}\n"
            f"contributors: {result.contributors}  "
            f"latency: {result.latency * 1000:.1f} ms  "
            f"messages: {result.message_cost}"
        )

    def _command(self, line: str) -> str:
        parts = line.split()
        command = parts[0]
        if command == ".help":
            return _HELP.strip("\n")
        if command == ".quit":
            raise EOFError
        if command == ".nodes":
            return f"{len(self.cluster)} nodes in the overlay"
        if command == ".stats":
            stats = self.cluster.stats
            lines = [f"total messages: {stats.total_messages}"]
            lines += [
                f"  {mtype}: {count}"
                for mtype, count in sorted(stats.by_type.items())
            ]
            return "\n".join(lines)
        if command == ".groups" and len(parts) > 1:
            predicate = line.split(None, 1)[1]
            try:
                members = self.cluster.members_satisfying(predicate)
            except MoaraError as exc:
                return f"error: {exc}"
            return f"{len(members)} nodes satisfy {predicate}"
        if command == ".set" and len(parts) == 4:
            try:
                index = int(parts[1])
                node_id = self.cluster.node_ids[index]
            except (ValueError, IndexError):
                return f"error: bad node index {parts[1]!r}"
            value = _parse_value(parts[3])
            self.cluster.set_attribute(node_id, parts[2], value)
            self.cluster.run_until_idle()
            return f"node[{index}].{parts[2]} = {value!r}"
        return f"error: unknown command {line!r} (try .help)"


def _parse_value(text: str):
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return float(text) if "." in text else int(text)
    except ValueError:
        return text


def main() -> int:
    """Entry point for the ``moara-shell`` console script."""
    shell = MoaraShell()
    print("Moara shell over a simulated 100-node data center. Try .help")
    while True:
        try:
            line = input("moara> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        try:
            output = shell.execute(line)
        except EOFError:
            return 0
        if output:
            print(output)


if __name__ == "__main__":
    sys.exit(main())
