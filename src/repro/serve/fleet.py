"""Run the whole deployed query plane inside one process.

Production runs one process per role (``python -m repro.serve <role>``);
tests and the CI deploy-smoke job want the same fleet without process
management.  :class:`Fleet` boots every component in this process, **one
thread + one event loop per component** — which is not just convenience:
the front-end's shared-cache calls are synchronous blocking RPCs, so a
front-end and the cache service sharing one event loop would deadlock
(the front-end blocks the loop awaiting a reply the loop would have to
produce).  Real sockets on localhost, real frames, real HTTP — the only
thing removed is ``fork()``.

Typical use::

    cluster = MoaraCluster(num_nodes=64, num_frontends=0, seed=7)
    cluster.set_group("g", range(20))
    with Fleet(cluster, num_frontends=2) as fleet:
        reply = fleet.http_query(0, "SELECT COUNT(*) WHERE g = true")
        assert reply["value"] == 20

The backend cluster is built (and its groups/attributes set) in the
caller's thread *before* ``start``; afterwards it belongs to the overlay
service's loop and must only be touched through admin ops
(:meth:`Fleet.admin`).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from typing import Any, Optional

from repro.core.cluster import MoaraCluster
from repro.core.frontend import FrontendConfig, ProbePolicy
from repro.serve.cache_service import CacheService
from repro.serve.frontend_server import FrontendServer
from repro.serve.overlay_service import OverlayService
from repro.serve.protocol import SyncRpcChannel
from repro.serve.ring_daemon import RingDaemon

__all__ = ["Fleet", "ServiceThread"]


class ServiceThread:
    """A daemon thread running one component's event loop."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def call(self, coro: Any, timeout: float = 30.0) -> Any:
        """Run a coroutine on this component's loop; block for the result."""
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        return future.result(timeout)

    def stop(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=5.0)
        if not self.loop.is_running():
            self.loop.close()


class Fleet:
    """The full deployed topology on localhost, one thread per role."""

    def __init__(
        self,
        cluster: MoaraCluster,
        num_frontends: int = 2,
        cache_service: bool = True,
        ring_daemon: bool = False,
        frontend_config: Optional[FrontendConfig] = None,
        probe_policy: ProbePolicy = ProbePolicy.COMPOSITE,
        query_timeout: float = 10.0,
        host: str = "127.0.0.1",
        base_http_port: int = 0,
    ) -> None:
        if num_frontends < 1:
            raise ValueError("fleet needs at least one front-end")
        self.cluster = cluster
        self.num_frontends = num_frontends
        self.with_cache = cache_service
        self.with_ring = ring_daemon
        self.frontend_config = frontend_config
        self.probe_policy = probe_policy
        self.query_timeout = query_timeout
        self.host = host
        #: first front-end's HTTP port; shard i binds base+i (0 = auto).
        self.base_http_port = base_http_port
        self.overlay: Optional[OverlayService] = None
        self.cache: Optional[CacheService] = None
        self.ring: Optional[RingDaemon] = None
        self.frontends: list[FrontendServer] = []
        self.http_ports: list[int] = []
        self._threads: list[ServiceThread] = []
        self._overlay_thread: Optional[ServiceThread] = None
        self._cache_thread: Optional[ServiceThread] = None
        self._admin: Optional[SyncRpcChannel] = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "Fleet":
        overlay_thread = ServiceThread("overlay-service")
        self._threads.append(overlay_thread)
        self._overlay_thread = overlay_thread
        self.overlay = OverlayService(self.cluster, host=self.host)
        overlay_thread.call(self.overlay.start())
        overlay_addr = (self.host, self.overlay.port)

        cache_addr: Optional[tuple[str, int]] = None
        if self.with_cache:
            cache_thread = ServiceThread("cache-service")
            self._threads.append(cache_thread)
            self._cache_thread = cache_thread
            fc = self.frontend_config or FrontendConfig()
            self.cache = CacheService(
                host=self.host,
                ttl=fc.size_cache_ttl,
                ttl_min=fc.size_cache_ttl_min,
                adaptive=fc.adaptive_size_ttl,
                churn_window=fc.churn_window,
                overlay_addr=overlay_addr,
            )
            cache_thread.call(self.cache.start())
            cache_addr = (self.host, self.cache.port)

        ring_addr: Optional[tuple[str, int]] = None
        if self.with_ring:
            ring_thread = ServiceThread("ring-daemon")
            self._threads.append(ring_thread)
            self.ring = RingDaemon(host=self.host)
            ring_thread.call(self.ring.start())
            ring_addr = (self.host, self.ring.port)

        for shard in range(self.num_frontends):
            fe_thread = ServiceThread(f"frontend-{shard}")
            self._threads.append(fe_thread)
            server = FrontendServer(
                overlay_addr,
                http_host=self.host,
                http_port=(
                    self.base_http_port + shard if self.base_http_port else 0
                ),
                shard=shard,
                cache_addr=cache_addr,
                ring_addr=ring_addr,
                config=self.frontend_config,
                probe_policy=self.probe_policy,
                query_timeout=self.query_timeout,
            )
            fe_thread.call(server.start())
            self.frontends.append(server)
            self.http_ports.append(server.http_port)
        return self

    def close(self) -> None:
        if self._admin is not None:
            self._admin.close()
        # Reverse boot order: front-ends drain first, services last.
        components: list[tuple[ServiceThread, Any]] = []
        thread_iter = iter(self._threads)
        overlay_thread = next(thread_iter, None)
        if self.overlay is not None and overlay_thread is not None:
            components.append((overlay_thread, self.overlay))
        if self.with_cache and self.cache is not None:
            components.append((next(thread_iter), self.cache))
        if self.with_ring and self.ring is not None:
            components.append((next(thread_iter), self.ring))
        for server, thread in zip(self.frontends, thread_iter):
            components.append((thread, server))
        for thread, component in reversed(components):
            try:
                thread.call(component.close(), timeout=5.0)
            except Exception:  # noqa: BLE001 — best-effort teardown
                pass
        for thread in self._threads:
            thread.stop()
        self._threads.clear()

    def __enter__(self) -> "Fleet":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- failure injection (recovery tests) ----------------------------

    def restart_cache(self) -> None:
        """Kill the cache service and boot a fresh one on the same port.

        The new service starts empty and learns its shard set from the
        HELLOs the front-ends' circuit breakers replay when they
        half-open — no front-end is told anything.
        """
        assert self.with_cache and self.cache is not None
        assert self._cache_thread is not None and self.overlay is not None
        port = self.cache.port
        try:
            self._cache_thread.call(self.cache.close(), timeout=5.0)
        except Exception:  # noqa: BLE001 — it may already be half-dead
            pass
        fc = self.frontend_config or FrontendConfig()
        self.cache = CacheService(
            host=self.host,
            port=port,
            ttl=fc.size_cache_ttl,
            ttl_min=fc.size_cache_ttl_min,
            adaptive=fc.adaptive_size_ttl,
            churn_window=fc.churn_window,
            overlay_addr=(self.host, self.overlay.port),
        )
        self._cache_thread.call(self.cache.start())

    def reset_overlay_links(self) -> int:
        """Abruptly close every overlay-service client connection (the
        fleet analog of a switch eating the TCP sessions); front-ends
        reconnect and re-attach on their own.  Returns links cut."""
        assert self.overlay is not None and self._overlay_thread is not None
        return self._overlay_thread.call(self.overlay.reset_links())

    # -- client helpers (blocking; used by tests and the smoke job) ----

    def http(
        self,
        shard: int,
        method: str,
        path: str,
        body: Optional[dict[str, Any]] = None,
        timeout: float = 30.0,
    ) -> tuple[int, dict[str, Any]]:
        """One blocking HTTP round-trip to a front-end; JSON in/out."""
        conn = http.client.HTTPConnection(
            self.host, self.http_ports[shard], timeout=timeout
        )
        try:
            payload = json.dumps(body) if body is not None else None
            conn.request(
                method,
                path,
                body=payload,
                headers={"Content-Type": "application/json"}
                if payload
                else {},
            )
            response = conn.getresponse()
            return response.status, json.loads(response.read() or b"{}")
        finally:
            conn.close()

    def http_query(
        self, shard: int, query: str, timeout: Optional[float] = None
    ) -> dict[str, Any]:
        """POST /query to one front-end; raises on non-200."""
        body: dict[str, Any] = {"query": query}
        if timeout is not None:
            body["timeout"] = timeout
        status, reply = self.http(shard, "POST", "/query", body)
        if status != 200:
            raise RuntimeError(f"query failed ({status}): {reply}")
        return reply

    def admin(self, op: str, **kwargs: Any) -> dict[str, Any]:
        """An overlay-service admin op (set_group, stats, join_node, …)."""
        assert self.overlay is not None
        if self._admin is None or not self._admin.connected:
            self._admin = SyncRpcChannel(self.host, self.overlay.port)
            self._admin.connect()
            welcome = self._admin.request({"kind": "hello", "role": "admin"})
            if welcome.get("kind") != "welcome":
                raise ConnectionError(f"admin hello refused: {welcome!r}")
        return self._admin.request({"kind": "admin", "op": op, **kwargs})
