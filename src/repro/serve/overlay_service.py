"""The overlay service: the Moara overlay behind a TCP wire.

One process hosts the overlay — the Pastry ring, the per-group
aggregation trees, the node agents, and the discrete-event engine that
drives them — and speaks the *existing* protocol messages
(``SIZE_PROBE``, ``FRONTEND_QUERY``, ``SIZE_RESPONSE``,
``FRONTEND_RESPONSE``; see :mod:`repro.core.messages`) with remote
front-ends over length-prefixed pickle frames
(:mod:`repro.serve.protocol`).

A remote front-end's HELLO attaches a proxy process to the simulated
network under the front-end's node id; from then on the simulator cannot
tell the difference between an in-process front-end and a socket.  Each
inbound wire message first syncs the engine clock to wall time (so TTLs
and timers behave), injects the message, and drains the engine; every
reply the proxies capture is framed straight back out.

Frame kinds (request → reply):

* ``hello {role: "frontend"|"observer", node_id}`` → ``welcome {node_id,
  members, space, now}`` — observers get membership pushes only (the
  cache service subscribes this way to feed overlay churn into its
  adaptive TTLs exactly once, not once per shard).
* ``wire {src, dst, mtype, payload}`` → (no direct reply; responses
  arrive as ``wire`` frames when the overlay answers)
* ``members {joined, left}`` — pushed to every connection on churn.
* ``admin {op, ...}`` → ``ok {...}`` — operational surface used by the
  CLI, tests, and the deploy-smoke job: ``set_group``, ``set_attribute``,
  ``set_attribute_all``, ``stats``, ``members``, ``join_node``,
  ``leave_node``, ``crash_node``.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Optional

from repro.core.cluster import MoaraCluster
from repro.serve.protocol import FrameError, encode_frame, read_frame
from repro.sim.network import Message

__all__ = ["OverlayService"]


class _RemoteFrontendProxy:
    """A remote front-end's seat on the simulated network."""

    __slots__ = ("node_id", "writer")

    def __init__(self, node_id: int, writer: asyncio.StreamWriter) -> None:
        self.node_id = node_id
        self.writer = writer

    def handle_message(self, message: Message) -> None:
        # Called synchronously while the engine drains; frames buffer on
        # the stream writer and are flushed by the connection handler.
        if not self.writer.is_closing():
            self.writer.write(
                encode_frame(
                    {
                        "kind": "wire",
                        "src": message.src,
                        "dst": message.dst,
                        "mtype": message.mtype,
                        "payload": message.payload,
                    }
                )
            )


class OverlayService:
    """Host a (typically frontend-less) cluster backend on a TCP port."""

    def __init__(
        self,
        cluster: MoaraCluster,
        host: str = "127.0.0.1",
        port: int = 0,
        wall_clock: bool = True,
    ) -> None:
        self.cluster = cluster
        self.host = host
        self.port = port
        #: advance the engine to wall time before each injection, so
        #: TTL'd caches and timers age in real seconds.  Off, the engine
        #: only moves when events demand it (deterministic test mode).
        self.wall_clock = wall_clock
        self._t0 = time.monotonic()
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: set[asyncio.StreamWriter] = set()
        #: connections that asked for membership pushes (front-ends and
        #: observers; ``role: "admin"`` connections are strict
        #: request/reply so a SyncRpcChannel can drive them).
        self._push_writers: set[asyncio.StreamWriter] = set()
        self._proxies: dict[int, _RemoteFrontendProxy] = {}
        cluster.overlay.add_listener(self._on_membership)

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()

    async def reset_links(self) -> int:
        """Drop every client connection without stopping the service —
        the test hook for a transport-level link reset.  Each handler's
        teardown detaches its proxy; clients are expected to reconnect
        under their own backoff."""
        writers = list(self._writers)
        for writer in writers:
            writer.close()
        return len(writers)

    # -- engine driving ------------------------------------------------

    def _sync_clock(self) -> None:
        if not self.wall_clock:
            return
        target = time.monotonic() - self._t0
        if target > self.cluster.engine.now:
            self.cluster.engine.run(until=target)

    def _drain_engine(self) -> None:
        self.cluster.run_until_idle()

    # -- membership fan-out --------------------------------------------

    def _on_membership(self, joined: set[int], left: set[int]) -> None:
        if not (joined or left):
            return
        frame = encode_frame(
            {"kind": "members", "joined": sorted(joined), "left": sorted(left)}
        )
        for writer in self._push_writers:
            if not writer.is_closing():
                writer.write(frame)

    # -- connections ---------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        proxy: Optional[_RemoteFrontendProxy] = None
        try:
            hello = await read_frame(reader)
            if hello is None or hello.get("kind") != "hello":
                writer.write(
                    encode_frame(
                        {"kind": "error", "message": "expected hello"}
                    )
                )
                await writer.drain()
                return
            if hello.get("role") == "frontend":
                node_id = hello["node_id"]
                if node_id in self._proxies or self.cluster.network.is_alive(
                    node_id
                ):
                    writer.write(
                        encode_frame(
                            {
                                "kind": "error",
                                "message": f"node id {node_id} is taken",
                            }
                        )
                    )
                    await writer.drain()
                    return
                proxy = _RemoteFrontendProxy(node_id, writer)
                self.cluster.network.attach(proxy)
                self._proxies[node_id] = proxy
            space = self.cluster.overlay.space
            self._writers.add(writer)
            if hello.get("role") in ("frontend", "observer"):
                self._push_writers.add(writer)
            writer.write(
                encode_frame(
                    {
                        "kind": "welcome",
                        "node_id": proxy.node_id if proxy else None,
                        "members": self.cluster.overlay.node_ids,
                        "space": {
                            "bits": space.bits,
                            "digit_bits": space.digit_bits,
                        },
                        "now": self.cluster.engine.now,
                    }
                )
            )
            await writer.drain()
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                kind = frame.get("kind")
                if kind == "wire":
                    self._sync_clock()
                    # Deadline propagation: the front-end stamps frames
                    # with the caller's *remaining* budget at send time.
                    # Budget already spent (queueing, a retry, a slow
                    # link) means nobody is waiting — drop, don't work.
                    budget = frame.get("deadline")
                    if budget is not None and budget <= 0:
                        self.cluster.stats.record_drop()
                        self.cluster.stats.deadline_expired += 1
                        continue
                    self.cluster.network.send(
                        frame["src"],
                        frame["dst"],
                        frame["mtype"],
                        frame["payload"],
                    )
                    self._drain_engine()
                    # Flush whatever the drain buffered, on every link.
                    for out in list(self._writers):
                        if not out.is_closing():
                            await out.drain()
                elif kind == "admin":
                    reply = self._handle_admin(frame)
                    writer.write(encode_frame(reply))
                    await writer.drain()
                else:
                    writer.write(
                        encode_frame(
                            {
                                "kind": "error",
                                "message": f"unknown frame kind {kind!r}",
                            }
                        )
                    )
                    await writer.drain()
        except (FrameError, ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            self._push_writers.discard(writer)
            if proxy is not None:
                # The front-end is gone: detach its seat so undeliverable
                # replies drop, exactly like a departed simulated client.
                self._proxies.pop(proxy.node_id, None)
                self.cluster.network.detach(proxy.node_id)
            writer.close()

    # -- admin surface -------------------------------------------------

    def _handle_admin(self, frame: dict[str, Any]) -> dict[str, Any]:
        op = frame.get("op")
        cluster = self.cluster
        try:
            if op == "set_group":
                cluster.set_group(
                    frame["attr"],
                    frame["members"],
                    frame.get("member_value", True),
                    frame.get("other_value", False),
                )
                return {"kind": "ok"}
            if op == "set_attribute":
                cluster.set_attribute(
                    frame["node"], frame["name"], frame["value"]
                )
                return {"kind": "ok"}
            if op == "set_attribute_all":
                cluster.set_attribute_all(frame["name"], frame["value"])
                return {"kind": "ok"}
            if op == "members":
                return {"kind": "ok", "members": cluster.overlay.node_ids}
            if op == "stats":
                stats = cluster.stats
                return {
                    "kind": "ok",
                    "stats": {
                        "total_messages": stats.total_messages,
                        "dropped_messages": stats.dropped_messages,
                        "by_type": dict(stats.by_type),
                        "nodes": len(cluster.overlay),
                        "engine_now": cluster.engine.now,
                        "engine_events": cluster.engine.events_processed,
                        "root_cache_hits": stats.root_cache_hits,
                        "root_subscriptions": stats.root_subscriptions,
                    },
                }
            if op == "join_node":
                node_id = cluster.join_node(frame.get("node"))
                self._drain_engine()
                return {"kind": "ok", "node": node_id}
            if op == "leave_node":
                cluster.leave_node(frame["node"])
                self._drain_engine()
                return {"kind": "ok"}
            if op == "crash_node":
                cluster.crash_node(
                    frame["node"], frame.get("detection_delay", 0.0)
                )
                self._drain_engine()
                return {"kind": "ok"}
        except (KeyError, ValueError) as exc:
            return {"kind": "error", "message": f"{op}: {exc}"}
        return {"kind": "error", "message": f"unknown admin op {op!r}"}
