"""Transport-level fault injection for the loopback serve plane.

:class:`ChaosTransport` wraps a :class:`~repro.serve.transport.
LocalLoopback` and misbehaves like a real overlay link under a scripted
network fault: frames are dropped, delayed, duplicated, one-way
partitioned, or the whole link is reset mid-flight.  Faults are
**deterministic from a seed** (one private ``random.Random`` per wrapped
link, consulted in frame order on a single thread), so a chaos campaign
replays bit-identically.

The wrapper sits on both sides of the link:

* **outbound** (front-end → overlay): ``send`` applies the active
  faults before the frame reaches the backend cluster.  A send during a
  reset window *fails fast* — the affected query resolves NULL via
  :meth:`repro.core.frontend.Frontend.on_link_failure`, exactly the
  dead-socket behaviour of :class:`~repro.serve.transport.RemoteNetwork`
  — while a partition eats the frame silently (the sender cannot tell).
* **inbound** (overlay → front-end): the wrapper attaches itself to the
  inner transport and filters the delivery stream the same way.

Held (delayed) frames release on the backend's simulated clock during
:meth:`pump`; :meth:`pending_release` lets the plane driver advance the
clock to the next release instead of declaring the plane stuck.

The campaign schema exposes all of this as ``faults:`` entries next to
the crash/rack failure kinds (see ``docs/CAMPAIGNS.md``); the oracle's
contract under chaos is: answers may be slow or **explicitly failed**
(``QueryResult.failed``), but never wrong, and no in-flight state may
leak once the plane quiesces.
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections import Counter
from typing import Any, Optional

from repro.serve.transport import LocalLoopback, _count_send
from repro.sim.network import Message

__all__ = ["ChaosTransport", "LinkFault"]

#: fault kinds, in the order they are consulted per frame (a reset
#: window preempts everything; a partition/drop eats the frame before
#: delay or duplicate get a say).
FAULT_KINDS = ("reset", "partition", "drop", "delay", "duplicate")
DIRECTIONS = ("outbound", "inbound", "both")


class LinkFault:
    """One active fault on one direction of one link."""

    __slots__ = ("kind", "direction", "p", "delay", "until")

    def __init__(
        self,
        kind: str,
        direction: str = "both",
        p: float = 1.0,
        delay: float = 0.0,
        until: Optional[float] = None,
    ) -> None:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        if direction not in DIRECTIONS:
            raise ValueError(f"unknown fault direction {direction!r}")
        self.kind = kind
        self.direction = direction
        self.p = p
        self.delay = delay
        #: plane-time expiry; None = active until cleared explicitly
        self.until = until

    def matches(self, direction: str, now: float) -> bool:
        if self.until is not None and now >= self.until:
            return False
        return self.direction in (direction, "both")


class ChaosTransport:
    """A fault-injecting frame proxy around :class:`LocalLoopback`.

    Implements the same :class:`~repro.sim.network.FrontendTransport`
    seam, so an unmodified front-end attaches to it exactly as it would
    to the real link.
    """

    #: duck-type marker the loopback plane uses to decide whether an
    #: idle-with-missing stall is an injected fault (resolve NULL) or a
    #: plane bug (raise).
    is_chaos = True

    def __init__(self, inner: LocalLoopback, seed: int = 0) -> None:
        self.inner = inner
        self.node_id = inner.node_id
        self.stats = inner.stats
        self._rng = random.Random(seed)
        self._frontend: Any = None
        self._faults: list[LinkFault] = []
        self._dead_until = float("-inf")
        self._seq = itertools.count()
        #: held (delayed) frames: (release_at, seq, direction, thunk-args)
        self._held: list[tuple] = []
        #: queued NULL-resolutions delivered on the next pump, so a send
        #: failing mid-``submit`` never re-enters the front-end
        self._pending_failures: list[tuple[Optional[set], str]] = []
        #: extra copies injected per message type (the probe-budget
        #: oracle subtracts these: a duplicated SIZE_PROBE is the wire's
        #: doing, not a front-end regression)
        self.dup_counts: Counter = Counter()
        self.drops = 0
        self.resets = 0
        inner.attach(self)

    # -- FrontendTransport seam ---------------------------------------

    def attach(self, process: Any) -> None:
        self._frontend = process

    @property
    def now(self) -> float:
        return self.inner.now

    @property
    def burst_seq(self) -> int:
        return self.inner.burst_seq

    def send(
        self,
        src: int,
        dst: int,
        mtype: str,
        payload: Optional[dict[str, Any]] = None,
    ) -> None:
        if payload is None:
            payload = {}
        _count_send(self.stats, src, dst, mtype, payload)
        now = self.now
        if now < self._dead_until:
            # Reset window: the socket is gone, the sender *knows* — the
            # affected query fails fast instead of waiting out a timeout.
            self.stats.record_drop()
            self.stats.link_send_failures += 1
            self.drops += 1
            tag = payload.get("qid") or payload.get("probe_id")
            if tag is not None:
                self._pending_failures.append(({tag}, "link reset"))
            return
        fate, delay = self._fate("outbound", now)
        if fate == "drop":
            self.stats.record_drop()
            self.drops += 1
            return
        if fate == "delay":
            heapq.heappush(
                self._held,
                (now + delay, next(self._seq), "out", (src, dst, mtype, payload)),
            )
            return
        self.inner.backend.network.send(src, dst, mtype, payload)
        if fate == "duplicate":
            self.dup_counts[mtype] += 1
            self.inner.backend.network.send(src, dst, mtype, payload)

    # -- inbound interception (we are the inner transport's frontend) --

    def handle_message(self, message: Message) -> None:
        now = self.now
        if now < self._dead_until:
            self.stats.record_drop()
            self.drops += 1
            return
        fate, delay = self._fate("inbound", now)
        if fate == "drop":
            self.stats.record_drop()
            self.drops += 1
            return
        if fate == "delay":
            heapq.heappush(
                self._held, (now + delay, next(self._seq), "in", message)
            )
            return
        self._deliver_in(message)
        if fate == "duplicate":
            self.dup_counts[message.mtype] += 1
            self._deliver_in(message)

    def on_membership_change(self, joined: set, left: set) -> None:
        # Control-plane pass-through: membership deltas model the
        # overlay service's push stream, which chaos does not script
        # (crash/rack failure kinds already cover membership churn).
        if self._frontend is not None:
            self._frontend.on_membership_change(joined, left)

    def _deliver_in(self, message: Message) -> None:
        if self._frontend is not None:
            self._frontend.handle_message(message)

    def _fate(self, direction: str, now: float) -> tuple[str, float]:
        """Decide one frame's fate from the active faults (first match
        in FAULT_KINDS order wins; duplicate composes with delivery)."""
        self._faults = [
            f for f in self._faults if f.until is None or now < f.until
        ]
        for kind in ("partition", "drop"):
            for fault in self._faults:
                if fault.kind == kind and fault.matches(direction, now):
                    if kind == "partition" or self._rng.random() < fault.p:
                        return "drop", 0.0
        for fault in self._faults:
            if fault.kind == "delay" and fault.matches(direction, now):
                if self._rng.random() < fault.p:
                    return "delay", fault.delay
        for fault in self._faults:
            if fault.kind == "duplicate" and fault.matches(direction, now):
                if self._rng.random() < fault.p:
                    return "duplicate", 0.0
        return "deliver", 0.0

    # -- fault scripting ----------------------------------------------

    def inject(self, fault: LinkFault) -> LinkFault:
        """Activate a drop/delay/duplicate/partition fault; ``reset``
        faults go through :meth:`reset_link` (they are an event, not a
        state)."""
        if fault.kind == "reset":
            self.reset_link(
                0.0 if fault.until is None else max(0.0, fault.until - self.now)
            )
            return fault
        self._faults.append(fault)
        return fault

    def clear(self, fault: LinkFault) -> None:
        if fault in self._faults:
            self._faults.remove(fault)

    def reset_link(self, duration: float = 0.0) -> None:
        """Kill the link now: every held frame is lost, everything in
        flight fails (NULL resolution), and for ``duration`` seconds
        further sends fail fast — the loopback analog of a TCP RST
        followed by :class:`RemoteNetwork`'s reconnect window."""
        self.resets += 1
        lost = len(self._held)
        self._held.clear()
        self.drops += lost
        for _ in range(lost):
            self.stats.record_drop()
        self._dead_until = max(self._dead_until, self.now + duration)
        self._pending_failures.append((None, "link reset"))

    # -- delivery ------------------------------------------------------

    def pending_release(self) -> Optional[float]:
        """Earliest held-frame release time (None when nothing is held)."""
        return self._held[0][0] if self._held else None

    def pump(self, drain_backend: bool = True) -> int:
        """Inner pump + release due held frames + deliver queued
        failures; returns total events delivered (activity signal)."""
        delivered = self.inner.pump(drain_backend=drain_backend)
        now = self.now
        while self._held and self._held[0][0] <= now:
            _, _, direction, item = heapq.heappop(self._held)
            delivered += 1
            if direction == "out":
                self.inner.backend.network.send(*item)
            else:
                self._deliver_in(item)
        while self._pending_failures:
            tags, reason = self._pending_failures.pop(0)
            delivered += 1
            if self._frontend is not None:
                self._frontend.on_link_failure(tags, reason)
        return delivered

    def close(self) -> None:
        self.inner.close()
