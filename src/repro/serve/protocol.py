"""Framing for the fleet's internal TCP links.

Every internal link in the deployed query plane — front-end ↔ overlay
service, front-end ↔ cache service, anything ↔ ring daemon — speaks the
same trivial protocol: **length-prefixed pickle frames**.  A frame is a
4-byte big-endian payload length followed by the pickled object (always
a ``dict`` with a ``"kind"`` key).

Why pickle and not JSON: the overlay link carries the simulator's
existing message payloads *verbatim* — :class:`~repro.core.predicates.
Predicate` trees, :class:`~repro.core.query.Query` objects, and partial
aggregates (top-k heaps, histogram buckets) — and re-encoding them
lossily is exactly the kind of forked logic the deployment refactor
exists to avoid.  The cost is the usual one: **pickle is only safe
between trusted peers**.  The fleet protocol is an *internal* protocol
(bind the services to localhost or a private network, as you would a
memcached tier); the public, untrusted surface is the front-end's
HTTP/JSON API only.  See ``docs/DEPLOYMENT.md`` ("Trust model").

Two client shapes are provided:

* coroutine framing (:func:`read_frame` / :func:`write_frame` /
  :func:`encode_frame`) for the asyncio services, and
* :class:`SyncRpcChannel`, a blocking-socket request/response channel
  used by the front-end's cache-service client: the shared-cache calls
  (``get``/``put``/``join_probe``/…) are *synchronous* in the shared
  front-end code, so the client pays one localhost round-trip inline —
  the memcached trade, made explicit.
"""

from __future__ import annotations

import asyncio
import pickle
import socket
import struct
import threading
from typing import Any, Optional

from repro.serve.resilience import Deadline, DeadlineExceeded

__all__ = [
    "FrameError",
    "MAX_FRAME_BYTES",
    "SyncRpcChannel",
    "encode_frame",
    "read_frame",
    "write_frame",
]

_LEN = struct.Struct(">I")

#: refuse frames larger than this (a corrupt length prefix otherwise
#: turns into an attempted multi-gigabyte read).
MAX_FRAME_BYTES = 32 * 1024 * 1024


class FrameError(ConnectionError):
    """A malformed or oversized frame arrived on a fleet link."""


def encode_frame(obj: dict[str, Any]) -> bytes:
    """One wire frame: 4-byte length prefix + pickled object."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(payload)} bytes exceeds the cap")
    return _LEN.pack(len(payload)) + payload


async def read_frame(reader: asyncio.StreamReader) -> Optional[dict[str, Any]]:
    """Read one frame; returns None on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise FrameError("connection closed mid-frame") from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {length} bytes exceeds the cap")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid-frame") from exc
    return pickle.loads(payload)


async def write_frame(
    writer: asyncio.StreamWriter, obj: dict[str, Any]
) -> None:
    """Write one frame and drain (backpressure-aware push path)."""
    writer.write(encode_frame(obj))
    await writer.drain()


class SyncRpcChannel:
    """Blocking request/response channel over one TCP connection.

    Requests and replies are strictly paired, serialized by a lock (the
    front-end server calls this from a single event-loop thread, but the
    lock makes the channel safe for the one-process fleet's extra
    threads too).  All shared-cache RPCs ride this; the cache service's
    *push* traffic (cross-shard probe resolutions) arrives on a separate
    asyncio subscription connection instead, so pushes never desequence
    the RPC stream.
    """

    def __init__(
        self, host: str, port: int, timeout: float = 5.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None

    def connect(self) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _recv_exactly(self, count: int) -> bytes:
        assert self._sock is not None
        chunks = []
        while count:
            chunk = self._sock.recv(count)
            if not chunk:
                raise FrameError("connection closed mid-frame")
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)

    def request(
        self,
        obj: dict[str, Any],
        deadline: Optional[Deadline] = None,
    ) -> dict[str, Any]:
        """Send one frame, block for the reply frame.

        A reply frame of kind ``"error"`` is raised as
        :class:`FrameError` — the service refused the request.

        ``deadline`` caps the hop to the caller's remaining end-to-end
        budget: an already-expired deadline raises
        :class:`~repro.serve.resilience.DeadlineExceeded` without
        touching the socket, the per-hop socket timeout is clamped to
        the remaining budget, and the remaining budget rides the frame
        (``obj["deadline"]``) so the service can drop work nobody is
        still waiting for.
        """
        with self._lock:
            if deadline is not None:
                if deadline.expired:
                    raise DeadlineExceeded(
                        "RPC abandoned: end-to-end budget exhausted"
                    )
                obj = dict(obj, deadline=deadline.remaining())
            if self._sock is None:
                self.connect()
            assert self._sock is not None
            if deadline is not None:
                self._sock.settimeout(deadline.cap(self.timeout))
            try:
                self._sock.sendall(encode_frame(obj))
                (length,) = _LEN.unpack(self._recv_exactly(_LEN.size))
                if length > MAX_FRAME_BYTES:
                    raise FrameError(
                        f"frame of {length} bytes exceeds the cap"
                    )
                reply = pickle.loads(self._recv_exactly(length))
            except (OSError, FrameError):
                # A dead channel must not be reused half-synchronized.
                self.close()
                raise
            finally:
                if deadline is not None and self._sock is not None:
                    self._sock.settimeout(self.timeout)
        if reply.get("kind") == "error":
            raise FrameError(reply.get("message", "service error"))
        return reply
