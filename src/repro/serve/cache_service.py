"""The standalone shared group-size cache service.

One process hosts a :class:`repro.core.plan_cache.SharedGroupSizeCache`
— the *same class* the in-process sharded plane uses, not a re-implementation
— and speaks its single-writer / probe-registry protocol over TCP so that
front-end shards in different processes still get the tier's guarantees:

* one wire probe per group **cluster-wide** (a shard that misses while
  another shard's probe is in flight subscribes to that probe's answer
  through the service instead of duplicating it);
* single-writer-per-group for piggybacked estimates (the group's
  consistent-hash owner shard wins; everyone else's stale writes drop);
* one churn feed for adaptive TTLs (the service observes overlay
  membership once, not once per shard).

The in-process tier remains the **default** backend — a front-end server
started without ``--cache`` builds its own private
:class:`~repro.core.plan_cache.GroupSizeCache` exactly like a standalone
simulated front-end.  The service is the opt-in piece that makes N
front-end *processes* behave like the one-process sharded plane.

Each front-end keeps **two** connections:

* an *RPC* connection (``hello {mode: "rpc", shard}``) carrying strictly
  request/response traffic (``get``/``put``/``open``/``join``/
  ``resolve``/``stats``/…).  The front-end's cache calls are synchronous,
  so the client blocks one localhost round-trip per call
  (:class:`repro.serve.protocol.SyncRpcChannel`) — the memcached trade.
* a *subscription* connection (``hello {mode: "sub", shard}``) on which
  the service pushes ``resolved {key, cost}`` frames when a probe this
  shard subscribed to is answered by its prober (or released NULL by
  churn).

Time: clients' clocks are not comparable, so the service timestamps
everything (entry TTLs, probe joinability) with **its own** clock.  The
simulator's same-synchronous-burst joinability rule becomes a wall-clock
window here (``join_window`` seconds) via the
:meth:`~repro.core.plan_cache.SharedGroupSizeCache._joinable` hook —
the registry logic around it is untouched shared code.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Optional

from repro.core.adaptive_ttl import AdaptiveTTL
from repro.core.plan_cache import (
    CacheStats,
    ShardedSizeCache,
    SharedGroupSizeCache,
    _SharedProbe,
)
from repro.core.shard_router import FrontendShardRouter
from repro.serve.protocol import (
    FrameError,
    SyncRpcChannel,
    encode_frame,
    read_frame,
)
from repro.serve.resilience import CircuitBreaker, DeadlineExceeded

__all__ = ["CacheService", "RemoteSizeTier"]

#: default cross-shard probe-join window (seconds).  Generous relative
#: to a localhost probe round-trip, small relative to any TTL: a probe
#: older than this is presumed stuck and a fresh one is sent instead —
#: the same bias the simulator's same-burst rule encodes.
DEFAULT_JOIN_WINDOW = 0.25


class _ServiceTier(SharedGroupSizeCache):
    """The shared tier with service-time probe joinability.

    Everything — the entry store, per-shard stats, the single-writer
    rule, the probe registry — is inherited.  Only "is this in-flight
    probe fresh enough to subscribe to?" changes meaning: remote shards
    have no common event counter, so freshness is a wall-clock window on
    the service's clock.
    """

    def __init__(self, *args: Any, join_window: float, clock: Callable[[], float], **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.join_window = join_window
        self._clock = clock

    def _joinable(self, probe: _SharedProbe, seq: int) -> bool:
        return (self._clock() - probe.opened_at) <= self.join_window


class CacheService:
    """Serve a :class:`SharedGroupSizeCache` tier on a TCP port."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        num_shards: Optional[int] = None,
        ttl: float = 60.0,
        ttl_min: float = 5.0,
        adaptive: bool = True,
        churn_window: float = 30.0,
        join_window: float = DEFAULT_JOIN_WINDOW,
        overlay_addr: Optional[tuple[str, int]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self._t0 = time.monotonic()
        #: None = learn the shard set from client HELLOs (the router is
        #: rebuilt via from_members as shards introduce themselves);
        #: an int pins the ring to shards 0..N-1 up front.
        self._fixed_shards = num_shards
        self._members: set[int] = (
            set(range(num_shards)) if num_shards else set()
        )
        router = (
            FrontendShardRouter(num_shards)
            if num_shards
            else FrontendShardRouter.from_members(set())
        )
        self.tier = _ServiceTier(
            router=router,
            ttl=ttl,
            ttl_policy=AdaptiveTTL.if_enabled(
                adaptive, ttl_min, ttl, churn_window
            ),
            join_window=join_window,
            clock=self.now,
        )
        self.overlay_addr = overlay_addr
        self._server: Optional[asyncio.base_events.Server] = None
        #: shard -> subscription writers (pushes fan out to all of them).
        self._subs: dict[int, set[asyncio.StreamWriter]] = {}
        #: every live client connection (RPC and sub) — severed on
        #: close(), so clients of a dead service see a dead socket
        #: instead of a ghost that keeps answering from stale state.
        self._writers: set[asyncio.StreamWriter] = set()
        self._observer_task: Optional[asyncio.Task] = None

    def now(self) -> float:
        return time.monotonic() - self._t0

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.overlay_addr is not None:
            self._observer_task = asyncio.ensure_future(
                self._observe_overlay()
            )

    async def close(self) -> None:
        if self._observer_task is not None:
            self._observer_task.cancel()
            try:
                await self._observer_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()

    async def _observe_overlay(self) -> None:
        """Subscribe to the overlay service's membership pushes so churn
        feeds the tier's adaptive TTLs exactly once cluster-wide."""
        assert self.overlay_addr is not None
        try:
            reader, writer = await asyncio.open_connection(*self.overlay_addr)
            writer.write(encode_frame({"kind": "hello", "role": "observer"}))
            await writer.drain()
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                if frame.get("kind") == "members":
                    self.tier.on_membership_change(self.now())
        except (ConnectionError, FrameError, asyncio.CancelledError, OSError):
            pass

    # -- shard membership ----------------------------------------------

    def _admit_shard(self, shard: int) -> None:
        if self._fixed_shards is not None or shard in self._members:
            return
        self._members.add(shard)
        # Owner assignments follow the live shard set, as the ring
        # daemon's router does on the front-end side.
        self.tier.router = FrontendShardRouter.from_members(self._members)

    # -- push fan-out --------------------------------------------------

    def _push_resolved(
        self, shard: int, key: str, cost: Optional[float]
    ) -> None:
        frame = encode_frame({"kind": "resolved", "key": key, "cost": cost})
        for writer in self._subs.get(shard, ()):
            if not writer.is_closing():
                writer.write(frame)

    def _release(self, callbacks: list, key: str, cost: Optional[float]) -> None:
        now = self.now()
        for callback in callbacks:
            callback(key, cost, now)

    # -- connections ---------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        sub_shard: Optional[int] = None
        self._writers.add(writer)
        try:
            hello = await read_frame(reader)
            if hello is None or hello.get("kind") != "hello":
                writer.write(
                    encode_frame({"kind": "error", "message": "expected hello"})
                )
                await writer.drain()
                return
            shard = int(hello.get("shard", 0))
            self._admit_shard(shard)
            writer.write(
                encode_frame(
                    {
                        "kind": "welcome",
                        "ttl": self.tier.ttl,
                        "join_window": self.tier.join_window,
                    }
                )
            )
            await writer.drain()
            if hello.get("mode") == "sub":
                sub_shard = shard
                self._subs.setdefault(shard, set()).add(writer)
                # Subscription connections are push-only from here on;
                # block until the peer goes away.
                while await read_frame(reader) is not None:
                    pass
                return
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                writer.write(encode_frame(self._handle_rpc(frame)))
                await writer.drain()
                # A resolve may have queued pushes on sub writers.
                for writers in self._subs.values():
                    for out in writers:
                        if not out.is_closing():
                            await out.drain()
        except (FrameError, ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            if sub_shard is not None:
                self._subs.get(sub_shard, set()).discard(writer)
            writer.close()

    # -- RPC dispatch --------------------------------------------------

    def _handle_rpc(self, frame: dict[str, Any]) -> dict[str, Any]:
        kind = frame.get("kind")
        tier = self.tier
        now = self.now()
        try:
            if kind == "get":
                cost = tier.get(frame["key"], now, frame["shard"])
                return {"kind": "value", "cost": cost}
            if kind == "put":
                applied = tier.put(
                    frame["key"], frame["cost"], now, frame["shard"]
                )
                return {"kind": "ok", "applied": applied}
            if kind == "open":
                # seq is meaningless across processes; joinability is
                # wall-clock (opened_at=now) on this service's clock.
                tier.open_probe(
                    frame["key"], frame["shard"], frame["tag"], 0, now
                )
                return {"kind": "ok"}
            if kind == "join":
                shard = frame["shard"]
                joined = tier.join_probe(
                    frame["key"],
                    shard,
                    0,
                    lambda key, cost, _now, s=shard: self._push_resolved(
                        s, key, cost
                    ),
                )
                return {"kind": "ok", "joined": joined}
            if kind == "resolve":
                released = tier.resolve_probe(
                    frame["key"], frame["tag"], frame["cost"], now
                )
                if released is not None:
                    self._release(released, frame["key"], frame["cost"])
                return {"kind": "ok", "resolved": released is not None}
            if kind == "churn":
                tier.on_membership_change(now)
                return {"kind": "ok"}
            if kind == "purge":
                return {"kind": "ok", "removed": tier.purge(now)}
            if kind == "clear":
                tier.clear()
                return {"kind": "ok"}
            if kind == "stats":
                return {"kind": "ok", "stats": self.stats_snapshot()}
        except (KeyError, ValueError, TypeError) as exc:
            return {"kind": "error", "message": f"{kind}: {exc}"}
        return {"kind": "error", "message": f"unknown rpc kind {kind!r}"}

    def stats_snapshot(self) -> dict[str, Any]:
        tier = self.tier
        return {
            "entries": len(tier),
            "hits": tier.stats.hits,
            "misses": tier.stats.misses,
            "expirations": tier.stats.expirations,
            "evictions": tier.stats.evictions,
            "hit_rate": tier.stats.hit_rate,
            "probe_joins": tier.probe_joins,
            "publishes": tier.publishes,
            "single_writer_drops": tier.single_writer_drops,
            "shards": sorted(self._members),
            "by_shard": {
                shard: {"hits": stats.hits, "misses": stats.misses}
                for shard, stats in sorted(tier.shard_stats.items())
            },
        }


class RemoteSizeTier:
    """A front-end's client handle on a remote :class:`CacheService`.

    Duck-types the slice of the :class:`SharedGroupSizeCache` surface the
    front-end actually touches (``view``/``get``/``put``/``open_probe``/
    ``join_probe``/``resolve_probe``/``stats_for``/
    ``on_membership_change``), so ``Frontend(shared_sizes=tier)`` cannot
    tell a socket from the in-process object.  RPCs block on
    :class:`~repro.serve.protocol.SyncRpcChannel`; probe resolutions for
    joined probes arrive as pushes on the subscription connection, which
    :meth:`start` wires into the owning event loop.

    Degradation: if the service link drops, ``get`` misses, ``put`` and
    ``open_probe`` are no-ops, and ``join_probe`` returns False — the
    front-end falls back to exactly its private-cache behaviour (it
    probes for itself).  Results stay correct; only probe dedup and
    cross-shard freshness are lost until the service returns.

    Recovery: a :class:`~repro.serve.resilience.CircuitBreaker` gates
    every RPC.  Consecutive link failures trip it, turning further
    calls into instant misses (no connect timeout per query); when it
    half-opens, the one admitted probe call re-runs the HELLO handshake
    — which re-registers this shard with the service's router — and
    restarts the subscription connection.  Degradation is bounded by
    the breaker's reset window instead of lasting forever.
    """

    def __init__(
        self,
        host: str,
        port: int,
        shard: int,
        network: Any = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.shard = shard
        #: the shard's RemoteNetwork (for the clock and burst counter);
        #: optional so the tier can be used standalone in tests.
        self.network = network
        self.rpc = SyncRpcChannel(host, port)
        self.ttl = 60.0
        self._stats = CacheStats()
        self.breaker = breaker or CircuitBreaker()
        self.reconnects = 0
        #: key -> callbacks waiting on a joined probe's push.
        self._callbacks: dict[str, list[Callable]] = {}
        self._sub_task: Optional[asyncio.Task] = None
        self._sub_writer: Optional[asyncio.StreamWriter] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Open both connections and start the push reader task."""
        self._loop = asyncio.get_running_loop()
        self.rpc.connect()
        hello = self.rpc.request(
            {"kind": "hello", "mode": "rpc", "shard": self.shard}
        )
        self.ttl = hello.get("ttl", self.ttl)
        await self._open_sub()
        self.breaker.record_success()

    async def close(self) -> None:
        if self._sub_task is not None:
            self._sub_task.cancel()
            try:
                await self._sub_task
            except asyncio.CancelledError:
                pass
        if self._sub_writer is not None:
            self._sub_writer.close()
        self.rpc.close()

    async def _open_sub(self) -> None:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        writer.write(
            encode_frame({"kind": "hello", "mode": "sub", "shard": self.shard})
        )
        await writer.drain()
        welcome = await read_frame(reader)
        if welcome is None or welcome.get("kind") != "welcome":
            writer.close()
            raise ConnectionError(f"cache service refused us: {welcome!r}")
        if self._sub_writer is not None:
            self._sub_writer.close()
        self._sub_writer = writer
        self._sub_task = asyncio.ensure_future(self._read_pushes(reader))

    def _revive(self) -> None:
        """Re-open the RPC connection after an outage.

        The HELLO handshake is what registers this shard with the
        service (and, for a restarted service learning its members from
        scratch, what rebuilds the router), so a bare reconnect is not
        enough — every revival replays it.  The subscription connection
        restarts on the owning event loop.
        """
        self.rpc.connect()
        hello = self.rpc.request(
            {"kind": "hello", "mode": "rpc", "shard": self.shard}
        )
        self.ttl = hello.get("ttl", self.ttl)
        self.reconnects += 1
        if self.network is not None and self.network.stats is not None:
            self.network.stats.link_reconnects += 1
        self._schedule_resub()

    def _schedule_resub(self) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return

        def _spawn() -> None:
            if self._sub_task is None or self._sub_task.done():
                self._sub_task = asyncio.ensure_future(self._resub())

        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            _spawn()
        else:
            loop.call_soon_threadsafe(_spawn)

    async def _resub(self) -> None:
        try:
            await self._open_sub()
        except (ConnectionError, OSError):
            # The RPC revival succeeded moments ago; if the sub side
            # lost the race with another outage, the next revival
            # (breaker half-open) retries it.
            pass

    async def _read_pushes(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                if frame.get("kind") == "resolved":
                    self._on_resolved(frame["key"], frame["cost"])
        except (ConnectionError, FrameError, asyncio.CancelledError):
            pass
        finally:
            # The push stream is gone: every joined probe this shard is
            # waiting on would otherwise wait forever.  Release them
            # NULL — the front-end re-probes for itself (Section 7's
            # fail-not-hang contract, applied to the cache tier).
            pending, self._callbacks = self._callbacks, {}
            now = self._now()
            for key, callbacks in pending.items():
                for callback in callbacks:
                    callback(key, None, now)

    def _on_resolved(self, key: str, cost: Optional[float]) -> None:
        callbacks = self._callbacks.pop(key, ())
        if self.network is not None:
            # A push is an inbound event: it ends the current synchronous
            # burst, like any delivery on the overlay link.
            self.network.bump_burst()
        now = self._now()
        for callback in callbacks:
            callback(key, cost, now)

    def _now(self) -> float:
        return self.network.now if self.network is not None else 0.0

    def _request(self, frame: dict[str, Any]) -> Optional[dict[str, Any]]:
        if not self.breaker.allow():
            return None  # open breaker: degrade instantly, no connect wait
        deadline = (
            self.network.active_deadline if self.network is not None else None
        )
        try:
            if not self.rpc.connected:
                self._revive()
            reply = self.rpc.request(frame, deadline=deadline)
        except DeadlineExceeded:
            # The *caller's* budget ran out — says nothing about the
            # service's health, so the breaker doesn't hear about it.
            if self.network is not None and self.network.stats is not None:
                self.network.stats.deadline_expired += 1
            return None
        except (ConnectionError, OSError):
            self.breaker.record_failure()
            return None
        self.breaker.record_success()
        return reply

    def link_health(self) -> dict[str, Any]:
        """Per-link state for ``/stats`` (see ``docs/API.md``)."""
        state = "connected" if self.rpc.connected else "degraded"
        if self.breaker.state == CircuitBreaker.OPEN:
            state = "breaker-open"
        return {
            "state": state,
            "reconnects": self.reconnects,
            "breaker": self.breaker.snapshot(),
        }

    # -- SharedGroupSizeCache surface ----------------------------------

    @property
    def enabled(self) -> bool:
        return self.ttl > 0

    def view(self, shard: int) -> ShardedSizeCache:
        return ShardedSizeCache(self, shard)  # type: ignore[arg-type]

    def stats_for(self, shard: int) -> CacheStats:
        # Client-local counters (what *this* process observed); the
        # service keeps the authoritative cluster-wide ledger.
        return self._stats

    def __len__(self) -> int:
        reply = self._request({"kind": "stats"})
        return reply["stats"]["entries"] if reply else 0

    def get(self, key: str, now: float, shard: int = 0) -> Optional[float]:
        reply = self._request({"kind": "get", "key": key, "shard": shard})
        cost = reply["cost"] if reply else None
        if cost is None:
            self._stats.misses += 1
        else:
            self._stats.hits += 1
        return cost

    def put(self, key: str, cost: float, now: float, shard: int = 0) -> bool:
        reply = self._request(
            {"kind": "put", "key": key, "cost": cost, "shard": shard}
        )
        return bool(reply and reply.get("applied"))

    def open_probe(
        self, key: str, shard: int, tag: str, seq: int, now: float = 0.0
    ) -> None:
        self._request(
            {"kind": "open", "key": key, "shard": shard, "tag": tag}
        )

    def join_probe(
        self, key: str, shard: int, seq: int, callback: Callable
    ) -> bool:
        reply = self._request({"kind": "join", "key": key, "shard": shard})
        if not (reply and reply.get("joined")):
            return False
        self._callbacks.setdefault(key, []).append(callback)
        return True

    def resolve_probe(
        self, key: str, tag: str, cost: Optional[float], now: float
    ) -> Optional[list]:
        reply = self._request(
            {"kind": "resolve", "key": key, "tag": tag, "cost": cost}
        )
        if reply and reply.get("resolved"):
            # Remote waiters are served by service pushes; locally there
            # is nothing left to call, but a non-None return tells the
            # front-end the answer was published (skip the plain put).
            return []
        return None

    def on_membership_change(self, now: float) -> None:
        # The service watches the overlay itself (one churn feed
        # cluster-wide); per-shard notifications would double-count.
        pass

    def purge(self, now: float) -> int:
        reply = self._request({"kind": "purge"})
        return reply.get("removed", 0) if reply else 0

    def clear(self) -> None:
        self._request({"kind": "clear"})

    def service_stats(self) -> Optional[dict[str, Any]]:
        reply = self._request({"kind": "stats"})
        return reply["stats"] if reply else None
