"""Resilience primitives shared by every serve-plane link.

Three small, deterministic building blocks, used by
:class:`~repro.serve.transport.RemoteNetwork` (overlay link),
:class:`~repro.serve.cache_service.RemoteSizeTier` (cache RPC link), and
:class:`~repro.serve.ring_daemon.RingClient` (ring link):

* :class:`Deadline` — an absolute point on an injectable clock carrying a
  caller's *remaining budget*.  The budget rides every RPC frame and HTTP
  query (``timeout`` becomes an absolute deadline at admission), so a
  retried hop can never outlive the end-to-end budget.
* :class:`RetryPolicy` — exponential backoff with **full jitter**
  (AWS-style: ``delay = uniform(0, min(cap, base * 2**attempt))``),
  capped by a maximum attempt count and, optionally, by a
  :class:`Deadline`.  Deterministic per seed, so reconnect schedules are
  reproducible in tests and campaigns.
* :class:`CircuitBreaker` — the classic closed / open / half-open state
  machine, per link: consecutive failures trip it open, a timer admits a
  single half-open probe, one success closes it again.  While open,
  callers fail fast instead of paying a connect timeout per call.

Tunables come from ``MOARA_SERVE_*`` environment knobs (see
``docs/DEPLOYMENT.md``); every class also takes explicit arguments so
tests never depend on process environment.
"""

from __future__ import annotations

import math
import os
import random
import time
from typing import Callable, Iterator, Optional

__all__ = [
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "RetryPolicy",
]


def _env(flag: str, default: float) -> float:
    """Read the ``MOARA_SERVE_<FLAG>`` knob, falling back to ``default``."""
    raw = os.environ.get(f"MOARA_SERVE_{flag.upper()}")
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


class DeadlineExceeded(ConnectionError):
    """An operation was refused or abandoned because its end-to-end
    budget had already expired (distinct from a transport failure: the
    link may be healthy; the *caller* is out of time)."""


class Deadline:
    """An absolute expiry on an injectable monotonic clock.

    Budgets, not instants, cross process boundaries: peers' clocks are
    not comparable, so :attr:`remaining` (seconds of budget left) is
    what rides a wire frame, and the receiver re-anchors it on its own
    clock with :meth:`after`.
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(
        self,
        expires_at: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.expires_at = expires_at
        self._clock = clock

    @classmethod
    def after(
        cls,
        budget: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """A deadline ``budget`` seconds from now on ``clock``."""
        return cls(clock() + budget, clock)

    def remaining(self) -> float:
        """Seconds of budget left (clamped at 0.0 once expired — a
        budget of zero is what crosses the wire, never a negative)."""
        return max(0.0, self.expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def cap(self, timeout: Optional[float]) -> float:
        """Clamp a per-hop ``timeout`` to the remaining budget (a hop
        never waits longer than the end-to-end deadline allows)."""
        left = self.remaining()
        if timeout is None:
            return left
        return min(timeout, left)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


class RetryPolicy:
    """Exponential backoff with full jitter, attempt- and deadline-capped.

    ``delay(attempt)`` for attempt ``0, 1, 2, ...`` draws uniformly from
    ``[0, min(max_delay, base * 2**attempt)]``.  Full jitter (rather
    than equal or decorrelated jitter) is what de-synchronizes a
    thundering herd of clients reconnecting to one restarted service.
    """

    def __init__(
        self,
        base: Optional[float] = None,
        max_delay: Optional[float] = None,
        max_attempts: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.base = base if base is not None else _env("retry_base", 0.1)
        self.max_delay = (
            max_delay
            if max_delay is not None
            else _env("retry_max_delay", 5.0)
        )
        attempts = (
            max_attempts
            if max_attempts is not None
            else int(_env("retry_attempts", 0))
        )
        #: attempt budget; 0 means unbounded (retry until deadline/close)
        self.max_attempts = attempts
        self._rng = random.Random(seed)

    def ceiling(self, attempt: int) -> float:
        """The jitter-free upper bound for ``attempt`` (useful to tests
        and to "Retry-After" hints, which should quote the worst case)."""
        if self.base <= 0.0:
            return 0.0
        exp = min(attempt, 63)  # avoid silly overflow for huge attempts
        return min(self.max_delay, self.base * math.pow(2.0, exp))

    def delay(self, attempt: int) -> float:
        """The jittered sleep before retry number ``attempt`` (0-based)."""
        return self._rng.uniform(0.0, self.ceiling(attempt))

    def attempts(
        self, deadline: Optional[Deadline] = None
    ) -> Iterator[float]:
        """Yield successive jittered delays until the attempt budget or
        the ``deadline`` is exhausted.  The caller sleeps between tries::

            for pause in policy.attempts(deadline):
                await asyncio.sleep(pause)
                if try_once():
                    break
        """
        attempt = 0
        while self.max_attempts <= 0 or attempt < self.max_attempts:
            if deadline is not None and deadline.expired:
                return
            pause = self.delay(attempt)
            if deadline is not None:
                pause = deadline.cap(pause)
            yield pause
            attempt += 1


class CircuitBreaker:
    """Per-link closed / open / half-open breaker.

    * **closed** — calls flow; ``failure_threshold`` *consecutive*
      failures trip the breaker open (and bump :attr:`trips`).
    * **open** — calls fail fast (``allow()`` is False) until
      ``reset_after`` seconds pass on the injected clock.
    * **half-open** — the timer has elapsed: ``allow()`` admits a single
      probe call; its success closes the breaker, its failure re-opens
      it (and re-arms the timer).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: Optional[int] = None,
        reset_after: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = max(
            1,
            failure_threshold
            if failure_threshold is not None
            else int(_env("breaker_failures", 3)),
        )
        self.reset_after = (
            reset_after
            if reset_after is not None
            else _env("breaker_reset", 2.0)
        )
        self._clock = clock
        self.consecutive_failures = 0
        self.trips = 0
        self._opened_at: Optional[float] = None
        self._probe_out = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return self.CLOSED
        if (
            self._probe_out
            or self._clock() - self._opened_at >= self.reset_after
        ):
            return self.HALF_OPEN
        return self.OPEN

    def allow(self) -> bool:
        """May a call proceed right now?  In half-open state this admits
        exactly one in-flight probe; concurrent callers fail fast until
        the probe reports back."""
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.OPEN:
            return False
        if self._probe_out:
            return False
        self._probe_out = True
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._opened_at = None
        self._probe_out = False

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self._opened_at is not None:
            # A failed half-open probe: re-open and re-arm the timer.
            self._opened_at = self._clock()
            self._probe_out = False
            return
        if self.consecutive_failures >= self.failure_threshold:
            self.trips += 1
            self._opened_at = self._clock()
            self._probe_out = False

    def retry_after(self) -> float:
        """Seconds until the next half-open probe is admitted (0 when
        closed or already probing) — the ``Retry-After`` hint."""
        if self._opened_at is None:
            return 0.0
        return max(
            0.0, self.reset_after - (self._clock() - self._opened_at)
        )

    def snapshot(self) -> dict:
        """Link-health surface for ``/stats``."""
        return {
            "state": self.state,
            "trips": self.trips,
            "consecutive_failures": self.consecutive_failures,
            "retry_after": round(self.retry_after(), 3),
        }
