"""The deployable async query plane.

Everything under :mod:`repro.serve` lifts the in-process, simulated
query plane onto a real deployment surface — asyncio servers speaking
real sockets — while sharing the planner/plan-cache/size-cache/router
code with the simulator *verbatim* (the
:class:`repro.sim.network.FrontendTransport` seam is the entire
boundary).  The fleet has four process roles:

* :mod:`repro.serve.overlay_service` — hosts the Moara overlay (the
  simulated agents, trees, and discrete-event engine) and speaks the
  existing wire protocol (``SIZE_PROBE`` / ``FRONTEND_QUERY`` / …) with
  remote front-ends over TCP;
* :mod:`repro.serve.frontend_server` — an asyncio front-end exposing the
  HTTP/JSON query API (``POST /query``, ``GET /groups/{name}/size``,
  ``GET /healthz``, ``GET /stats``) over an unmodified
  :class:`repro.core.frontend.Frontend`;
* :mod:`repro.serve.cache_service` — a standalone, memcached-style
  :class:`repro.core.plan_cache.SharedGroupSizeCache` tier speaking the
  single-writer/probe-registry protocol over TCP (the in-process tier
  remains the default backend when no service is configured);
* :mod:`repro.serve.ring_daemon` — heartbeat-driven
  :class:`repro.core.shard_router.FrontendShardRouter` membership
  (join/leave/suspect remap ~1/N of the key space).

``python -m repro.serve <role>`` launches each role
(:mod:`repro.serve.__main__`); :mod:`repro.serve.fleet` boots the whole
fleet inside one process (one thread + event loop per role) for tests
and the CI deploy-smoke job, and
:class:`repro.serve.transport.LocalLoopback` runs a deployed-shape
front-end with no sockets at all.
"""

from repro.serve.cache_service import CacheService, RemoteSizeTier
from repro.serve.fleet import Fleet
from repro.serve.frontend_server import FrontendServer
from repro.serve.overlay_service import OverlayService
from repro.serve.ring_daemon import RingClient, RingDaemon
from repro.serve.transport import LocalLoopback, LoopbackPlane, RemoteNetwork

__all__ = [
    "CacheService",
    "Fleet",
    "FrontendServer",
    "LocalLoopback",
    "LoopbackPlane",
    "OverlayService",
    "RemoteNetwork",
    "RemoteSizeTier",
    "RingClient",
    "RingDaemon",
]
