"""The asyncio front-end server: HTTP/JSON in, Moara protocol out.

One process runs one **unmodified** :class:`repro.core.frontend.Frontend`
— the same planner, plan cache, size cache, probe dedup, and sub-query
sharing the simulator exercises — behind two wires:

* **north**: a deliberately small HTTP/1.1 server (stdlib asyncio
  streams; the repo adds no dependencies, so this mirrors the shape an
  aiohttp app would have without importing one) exposing the public
  JSON API — ``POST /query``, ``POST /subscribe`` and the
  ``/subscriptions/{sid}`` family (standing queries, see
  ``docs/STANDING_QUERIES.md``), ``GET /groups/{name}/size``,
  ``GET /healthz``, ``GET /stats``, ``GET /ring``.  See ``docs/API.md``
  for the full contract.
* **south**: a :class:`repro.serve.transport.RemoteNetwork` link to the
  overlay service, and optionally a :class:`repro.serve.cache_service.
  RemoteSizeTier` link to the shared-cache service and a
  :class:`repro.serve.ring_daemon.RingClient` registration.  Without
  ``cache_addr`` the front-end keeps a private in-process size cache
  (the default backend); without ``ring_addr`` the shard id is whatever
  ``shard`` says and the router is static.

Everything — HTTP handling, overlay frames, cache pushes, ring epochs —
runs on one event loop.  The only blocking calls are the shared-cache
RPCs (sub-millisecond localhost round-trips by design; the memcached
trade, see :mod:`repro.serve.protocol`).

Query completion is callback→future: ``Frontend.submit`` takes a
callback, the server resolves an ``asyncio.Future`` from it, and the
HTTP handler awaits the future under the request timeout.  A timeout
maps to **504** with the query id, the query keeps running south of the
timeout, and a retry of the same text will usually join its in-flight
execution (sub-query sharing) rather than re-paying for it.
"""

from __future__ import annotations

import asyncio
import json
import math
import urllib.parse
from typing import Any, Optional

from repro.core.errors import (
    MoaraError,
    ParseError,
    PlanningError,
    QueryTimeoutError,
)
from repro.core.frontend import Frontend, FrontendConfig, ProbePolicy
from repro.core.parser import parse_query
from repro.core.planner import SemanticContext
from repro.core.query import QueryResult
from repro.serve.cache_service import RemoteSizeTier
from repro.serve.resilience import Deadline
from repro.serve.ring_daemon import RingClient
from repro.serve.transport import RemoteNetwork

__all__ = ["FrontendServer", "jsonable"]

_MAX_REQUEST_BYTES = 1 * 1024 * 1024
_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def jsonable(value: Any) -> Any:
    """Coerce an aggregate value into JSON-representable types.

    Aggregates can surface tuples (top-k pairs), sets (distinct values),
    and nested containers; JSON has none of those.  Anything unknown
    falls back to ``repr`` rather than failing the response.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((jsonable(item) for item in value), key=repr)
    if isinstance(value, dict):
        return {str(key): jsonable(val) for key, val in value.items()}
    return repr(value)


def result_to_json(qid: str, result: QueryResult) -> dict[str, Any]:
    """The ``POST /query`` response body (see docs/API.md)."""
    return {
        "qid": qid,
        "value": jsonable(result.value),
        "cover": list(result.cover),
        "contributors": result.contributors,
        "latency": result.latency,
        "probe_latency": result.probe_latency,
        "message_cost": result.message_cost,
        "shared": result.shared,
        "plan_cached": result.plan_cached,
        "root_cached": result.root_cached,
        "root_shared": result.root_shared,
        "cache_age": result.cache_age,
        "short_circuited": result.short_circuited,
        "probed_costs": dict(result.probed_costs),
        "failed": result.failed,
        "failure": result.failure,
    }


class FrontendServer:
    """One front-end shard: HTTP/JSON API over an unmodified Frontend."""

    def __init__(
        self,
        overlay_addr: tuple[str, int],
        http_host: str = "127.0.0.1",
        http_port: int = 0,
        shard: int = 0,
        name: Optional[str] = None,
        cache_addr: Optional[tuple[str, int]] = None,
        ring_addr: Optional[tuple[str, int]] = None,
        config: Optional[FrontendConfig] = None,
        probe_policy: ProbePolicy = ProbePolicy.COMPOSITE,
        query_timeout: float = 10.0,
    ) -> None:
        self.overlay_addr = overlay_addr
        self.http_host = http_host
        self.http_port = http_port
        self.shard = shard
        self.name = name or f"frontend-{shard}"
        self.cache_addr = cache_addr
        self.ring_addr = ring_addr
        self.config = config
        self.probe_policy = probe_policy
        self.query_timeout = query_timeout
        self.network: Optional[RemoteNetwork] = None
        self.frontend: Optional[Frontend] = None
        self.tier: Optional[RemoteSizeTier] = None
        self.ring: Optional[RingClient] = None
        self.queries_served = 0
        self.queries_failed = 0
        #: standing subscriptions owned by HTTP clients, by sid.
        self.subscriptions: dict[str, Any] = {}
        self._server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        if self.ring_addr is not None:
            self.ring = RingClient(*self.ring_addr, name=self.name)
            await self.ring.start()
            assert self.ring.shard is not None
            self.shard = self.ring.shard
        # Front-end node ids are negative (-1, -2, …) so they can never
        # collide with overlay node ids, same convention as the simulator.
        self.network = RemoteNetwork(
            *self.overlay_addr, node_id=-1 - self.shard
        )
        await self.network.start()
        if self.cache_addr is not None:
            self.tier = RemoteSizeTier(
                *self.cache_addr, shard=self.shard, network=self.network
            )
            await self.tier.start()
        self.frontend = Frontend(
            self.network,
            self.network.overlay,
            node_id=self.network.node_id,
            probe_policy=self.probe_policy,
            semantics=SemanticContext(),
            config=self.config,
            shard_id=self.shard,
            shared_sizes=self.tier,  # type: ignore[arg-type]
        )
        self._server = await asyncio.start_server(
            self._serve_http, self.http_host, self.http_port
        )
        self.http_port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.tier is not None:
            await self.tier.close()
        if self.ring is not None:
            await self.ring.close()
        if self.network is not None:
            await self.network.close()

    # -- HTTP plumbing -------------------------------------------------

    async def _serve_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except ValueError as exc:
                    # Unparseable head or oversized declared body: answer
                    # once, then close (the stream position is unknown).
                    status = 413 if "too large" in str(exc) else 400
                    self._write_response(
                        writer, status, {"error": str(exc)}, True
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                try:
                    status, payload = await self._dispatch(method, path, body)
                except MoaraError as exc:
                    self.queries_failed += 1
                    status, payload = 400, {"error": str(exc)}
                except Exception as exc:  # noqa: BLE001 — boundary
                    self.queries_failed += 1
                    status, payload = 500, {"error": repr(exc)}
                close = headers.get("connection", "").lower() == "close"
                extra = (
                    {"Retry-After": str(self._retry_after())}
                    if status == 503
                    else None
                )
                self._write_response(writer, status, payload, close, extra)
                await writer.drain()
                if close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, ValueError):
            pass
        finally:
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[tuple[str, str, dict[str, str], bytes]]:
        try:
            raw = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean close between requests
            raise
        except asyncio.LimitOverrunError as exc:
            raise ValueError("request head too large") from exc
        head = raw.decode("latin-1").split("\r\n")
        try:
            method, target, _version = head[0].split(" ", 2)
        except ValueError as exc:
            raise ValueError(f"malformed request line: {head[0]!r}") from exc
        headers: dict[str, str] = {}
        for line in head[1:]:
            if not line:
                continue
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_REQUEST_BYTES:
            raise ValueError("request body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    def _retry_after(self) -> int:
        """Seconds a 503'd client should wait before retrying: the
        overlay breaker's next half-open probe, rounded up (whole
        seconds, per the HTTP ``Retry-After`` delta form)."""
        wait = 1.0
        if self.network is not None:
            wait = max(wait, self.network.breaker.retry_after())
        return max(1, math.ceil(wait))

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        close: bool,
        extra_headers: Optional[dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        extra = "".join(
            f"{key}: {value}\r\n"
            for key, value in (extra_headers or {}).items()
        )
        writer.write(
            (
                f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'close' if close else 'keep-alive'}\r\n"
                f"{extra}"
                "\r\n"
            ).encode("latin-1")
            + body
        )

    # -- routing -------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        path, _, query_string = path.partition("?")
        if path == "/query":
            if method != "POST":
                return 405, {"error": "POST /query"}
            return await self._handle_query(body)
        if path == "/subscribe":
            if method != "POST":
                return 405, {"error": "POST /subscribe"}
            return self._handle_subscribe(body)
        if path.startswith("/subscriptions/"):
            rest = path[len("/subscriptions/") :]
            if rest.endswith("/updates"):
                if method != "GET":
                    return 405, {"error": "GET /subscriptions/{sid}/updates"}
                return self._handle_updates(
                    rest[: -len("/updates")], query_string
                )
            if rest.endswith("/renew"):
                if method != "POST":
                    return 405, {"error": "POST /subscriptions/{sid}/renew"}
                return self._handle_renew(rest[: -len("/renew")], body)
            if method != "DELETE":
                return 405, {"error": "DELETE /subscriptions/{sid}"}
            return self._handle_unsubscribe(rest)
        if path.startswith("/groups/") and path.endswith("/size"):
            if method != "GET":
                return 405, {"error": "GET /groups/{name}/size"}
            return await self._handle_group_size(
                path[len("/groups/") : -len("/size")]
            )
        if path == "/healthz":
            return self._handle_healthz()
        if path == "/stats":
            return 200, self._stats_payload()
        if path == "/ring":
            return 200, self._ring_payload()
        return 404, {"error": f"no route for {method} {path}"}

    # -- endpoints -----------------------------------------------------

    async def _run_query(
        self, text: str, timeout: float
    ) -> tuple[str, QueryResult]:
        assert self.frontend is not None and self.network is not None
        if not self.network.connected:
            raise ConnectionError("overlay link down")
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()

        def on_result(result: QueryResult) -> None:
            # Completion can be synchronous (short-circuit, warm caches)
            # or arrive later from the overlay reader task — either way
            # we are on the loop thread, and exactly one result wins.
            if not fut.done():
                fut.set_result(result)

        # The request timeout becomes an end-to-end deadline at
        # admission: every southbound hop this query triggers (overlay
        # frames, cache RPCs, retries) carries the *remaining* budget
        # and is dropped once it is spent.  See docs/API.md.
        deadline = Deadline.after(timeout)
        with self.network.deadline_scope(deadline):
            qid = self.frontend.submit(text, callback=on_result)
        try:
            result = await asyncio.wait_for(fut, deadline.remaining())
        except asyncio.TimeoutError:
            raise QueryTimeoutError(qid) from None
        return qid, result

    async def _handle_query(self, body: bytes) -> tuple[int, dict[str, Any]]:
        try:
            request = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"request body is not JSON: {exc}"}
        text = request.get("query")
        if not isinstance(text, str) or not text.strip():
            return 400, {"error": 'body must be {"query": "SELECT ..."}'}
        timeout = float(request.get("timeout", self.query_timeout))
        try:
            qid, result = await self._run_query(text, timeout)
        except (ParseError, PlanningError) as exc:
            self.queries_failed += 1
            return 400, {"error": str(exc), "kind": type(exc).__name__}
        except QueryTimeoutError as exc:
            self.queries_failed += 1
            return 504, {
                "error": f"query {exc} exceeded {timeout:.1f}s",
                "qid": str(exc),
                "retry": (
                    "the query is still executing; an identical retry "
                    "joins the in-flight execution instead of re-paying"
                ),
            }
        except ConnectionError:
            self.queries_failed += 1
            return 503, {"error": "overlay link down; retry after reconnect"}
        if result.failed:
            # The query resolved as an *explicit* failure (link lost
            # mid-flight): distinguishable from a timeout — the plane
            # knows the answer is NULL, not late.
            self.queries_failed += 1
            return 503, {
                "error": result.failure or "query failed on a lost link",
                "qid": qid,
                "failed": True,
            }
        self.queries_served += 1
        return 200, result_to_json(qid, result)

    # -- standing subscriptions ---------------------------------------

    def _handle_subscribe(self, body: bytes) -> tuple[int, dict[str, Any]]:
        """``POST /subscribe``: register a standing query.

        Registration is synchronous (cover choice uses cached sizes
        only), so the response carries the subscription id immediately;
        folded updates accumulate server-side and are pulled with
        ``GET /subscriptions/{sid}/updates``.  See docs/API.md and
        docs/STANDING_QUERIES.md.
        """
        assert self.frontend is not None and self.network is not None
        try:
            request = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"request body is not JSON: {exc}"}
        text = request.get("query")
        if not isinstance(text, str) or not text.strip():
            return 400, {"error": 'body must be {"query": "SELECT ..."}'}
        lease = float(request.get("lease", 0.0))
        if lease < 0:
            return 400, {"error": '"lease" must be >= 0'}
        if not self.network.connected:
            return 503, {"error": "overlay link down; retry after reconnect"}
        try:
            handle = self.frontend.subscribe(text, lease=lease)
        except (ParseError, PlanningError) as exc:
            return 400, {"error": str(exc), "kind": type(exc).__name__}
        self.subscriptions[handle.sub_id] = handle
        return 200, {
            "sid": handle.sub_id,
            "query": text,
            "cover": list(handle.cover),
            "lease": lease,
            "static": handle.static,
            "seq": handle.update_seq,
        }

    def _handle_updates(
        self, sid: str, query_string: str
    ) -> tuple[int, dict[str, Any]]:
        """``GET /subscriptions/{sid}/updates?since=N``: drain folds.

        Returns every retained fold with ``seq > since`` (the handle
        keeps a bounded history; ``dropped`` counts folds that aged out
        before any poll — a consumer seeing it grow is polling too
        slowly for its gap-free replay to be possible).
        """
        handle = self.subscriptions.get(sid)
        if handle is None:
            return 404, {"error": f"unknown subscription {sid!r}"}
        params = urllib.parse.parse_qs(query_string)
        try:
            since = int(params.get("since", ["0"])[0])
        except ValueError:
            return 400, {"error": '"since" must be an integer'}
        updates = [
            {
                "seq": seq,
                "value": jsonable(result.value),
                "cover": list(result.cover),
                "contributors": result.contributors,
                "latency": result.latency,
            }
            for seq, result in handle.updates_since(since)
        ]
        return 200, {
            "sid": sid,
            "active": handle.active,
            "expired": handle.expired,
            "seq": handle.update_seq,
            "dropped": handle.updates_dropped,
            "updates": updates,
        }

    def _handle_renew(
        self, sid: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        """``POST /subscriptions/{sid}/renew``: extend the lease."""
        assert self.frontend is not None
        handle = self.subscriptions.get(sid)
        if handle is None:
            return 404, {"error": f"unknown subscription {sid!r}"}
        if not handle.active:
            return 400, {
                "error": f"subscription {sid!r} is no longer active",
                "expired": handle.expired,
            }
        try:
            request = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"request body is not JSON: {exc}"}
        lease = request.get("lease")
        if lease is not None:
            lease = float(lease)
            if lease < 0:
                return 400, {"error": '"lease" must be >= 0'}
        self.frontend.standing.renew(handle, lease=lease)
        return 200, {"sid": sid, "lease": handle.lease}

    def _handle_unsubscribe(self, sid: str) -> tuple[int, dict[str, Any]]:
        """``DELETE /subscriptions/{sid}``: cancel and forget."""
        assert self.frontend is not None
        handle = self.subscriptions.pop(sid, None)
        if handle is None:
            return 404, {"error": f"unknown subscription {sid!r}"}
        self.frontend.standing.cancel(handle)
        return 200, {"sid": sid, "cancelled": True}

    async def _handle_group_size(
        self, name: str
    ) -> tuple[int, dict[str, Any]]:
        assert self.frontend is not None and self.network is not None
        text = f"SELECT COUNT(*) WHERE {name} = true"
        # Parse first so a bad group name is a 400, not a wire query.
        key = parse_query(text).predicate.canonical()
        cost = self.frontend.size_cache.get(key, self.network.now)
        if cost is not None:
            # The cached probe cost is the paper's 2·n_p: half of it is
            # the group's *tree span* (every node the sub-query would
            # touch), an upper-bound estimate of membership — cheap but
            # not exact, hence "exact": false.  See docs/API.md.
            return 200, {
                "group": name,
                "size": int(cost / 2),
                "source": "cache",
                "exact": False,
            }
        try:
            _, result = await self._run_query(text, self.query_timeout)
        except QueryTimeoutError as exc:
            return 504, {"error": f"size query {exc} timed out"}
        except ConnectionError:
            return 503, {"error": "overlay link down; retry after reconnect"}
        if result.failed:
            return 503, {"error": result.failure, "failed": True}
        return 200, {
            "group": name,
            "size": int(result.value or 0),
            "source": "query",
            "exact": True,
        }

    def _handle_healthz(self) -> tuple[int, dict[str, Any]]:
        assert self.network is not None
        connected = self.network.connected
        payload = {
            "status": "ok" if connected else "degraded",
            "name": self.name,
            "shard": self.shard,
            "overlay_connected": connected,
            "overlay_link": self.network.link_state,
            "overlay_nodes": len(self.network.overlay)
            if self.network.mirror
            else 0,
            "cache_service": self.tier is not None
            and self.tier.rpc.connected,
            "ring_epoch": self.ring.epoch if self.ring else None,
        }
        if not connected:
            # Not-ready: tell pollers when the next reconnect attempt
            # is worth waiting for (mirrors the Retry-After header).
            payload["retry_after"] = self._retry_after()
        return (200 if connected else 503), payload

    def _stats_payload(self) -> dict[str, Any]:
        assert self.frontend is not None and self.network is not None
        fe, stats = self.frontend, self.network.stats
        payload: dict[str, Any] = {
            "name": self.name,
            "shard": self.shard,
            "node_id": fe.node_id,
            "queries_served": self.queries_served,
            "queries_failed": self.queries_failed,
            "messages": {
                "total": stats.total_messages,
                "dropped": stats.dropped_messages,
                "by_type": dict(stats.by_type),
            },
            "links": self._links_payload(),
            "resilience": {
                "link_reconnects": stats.link_reconnects,
                "link_send_failures": stats.link_send_failures,
                "breaker_trips": stats.breaker_trips,
                "deadline_expired": stats.deadline_expired,
                "failed_queries": stats.failed_queries,
            },
            "size_cache": {
                "hits": fe.size_cache.stats.hits,
                "misses": fe.size_cache.stats.misses,
                "shared_tier": self.tier is not None,
            },
            "shared_probe_joins": stats.shared_probe_joins,
        }
        if fe.plan_cache is not None:
            payload["plan_cache"] = {
                "entries": len(fe.plan_cache),
                "hits": fe.plan_cache.stats.hits,
                "misses": fe.plan_cache.stats.misses,
            }
        if self.tier is not None:
            payload["cache_service"] = self.tier.service_stats()
        return payload

    def _links_payload(self) -> dict[str, Any]:
        """Per-link health: state, reconnects, breaker (docs/API.md)."""
        assert self.network is not None
        links: dict[str, Any] = {"overlay": self.network.link_health()}
        if self.tier is not None:
            links["cache"] = self.tier.link_health()
        if self.ring is not None:
            links["ring"] = {
                "state": "connected" if self.ring.connected else "reconnecting",
                "reconnects": self.ring.reconnects,
                "epoch": self.ring.epoch,
            }
        return links

    def _ring_payload(self) -> dict[str, Any]:
        if self.ring is None:
            return {
                "static": True,
                "shard": self.shard,
                "members": [{"shard": self.shard, "status": "alive"}],
            }
        return {
            "static": False,
            "shard": self.shard,
            "epoch": self.ring.epoch,
            "members": self.ring.members,
        }
