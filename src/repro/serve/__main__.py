"""``python -m repro.serve`` — launch the deployed query plane.

One subcommand per process role::

    python -m repro.serve overlay  --port 7400 --nodes 256 --group web:40
    python -m repro.serve cache    --port 7401 --overlay 127.0.0.1:7400
    python -m repro.serve ring     --port 7402
    python -m repro.serve frontend --port 8080 --overlay 127.0.0.1:7400 \
        --cache 127.0.0.1:7401 --ring 127.0.0.1:7402 --name fe-a
    python -m repro.serve fleet    --frontends 2 --nodes 128 --group g:20

Every ``--flag`` falls back to a ``MOARA_SERVE_<FLAG>`` environment
variable (``MOARA_SERVE_OVERLAY``, ``MOARA_SERVE_CACHE``,
``MOARA_SERVE_RING``, ``MOARA_SERVE_PORT``, ``MOARA_SERVE_HOST``), so a
process manager can configure a whole fleet through its environment.
See ``docs/DEPLOYMENT.md`` for topologies and a runbook.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
from typing import Optional

from repro.core.cluster import MoaraCluster
from repro.serve.cache_service import CacheService
from repro.serve.fleet import Fleet
from repro.serve.frontend_server import FrontendServer
from repro.serve.overlay_service import OverlayService
from repro.serve.ring_daemon import RingDaemon


def _env(flag: str, default: Optional[str] = None) -> Optional[str]:
    return os.environ.get(f"MOARA_SERVE_{flag.upper()}", default)


def _addr(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    return (host or "127.0.0.1", int(port))


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--host", default=_env("host", "127.0.0.1"), help="bind address"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=int(_env("port", "0") or 0),
        help="bind port (0 = auto-assign, printed on boot)",
    )


def _add_backend(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=128)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--group",
        action="append",
        default=[],
        metavar="NAME:COUNT",
        help="pre-create a group of the first COUNT nodes (repeatable)",
    )


def _build_cluster(args: argparse.Namespace) -> MoaraCluster:
    cluster = MoaraCluster(
        num_nodes=args.nodes, seed=args.seed, num_frontends=0
    )
    for spec in args.group:
        name, _, count = spec.partition(":")
        members = cluster.overlay.node_ids[: int(count or 0)]
        cluster.set_group(name, members)
    return cluster


async def _serve_forever(service: object, banner: str) -> None:
    await service.start()  # type: ignore[attr-defined]
    print(banner.format(port=service.port), flush=True)  # type: ignore[attr-defined]
    try:
        await asyncio.Event().wait()
    finally:
        await service.close()  # type: ignore[attr-defined]


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__.split("\n")[0]
    )
    sub = parser.add_subparsers(dest="role", required=True)

    p_overlay = sub.add_parser("overlay", help="host the Moara overlay")
    _add_common(p_overlay)
    _add_backend(p_overlay)

    p_cache = sub.add_parser("cache", help="shared group-size cache tier")
    _add_common(p_cache)
    p_cache.add_argument(
        "--overlay",
        default=_env("overlay"),
        help="overlay service host:port (feeds churn-adaptive TTLs)",
    )
    p_cache.add_argument("--ttl", type=float, default=60.0)
    p_cache.add_argument("--join-window", type=float, default=0.25)

    p_ring = sub.add_parser("ring", help="front-end membership daemon")
    _add_common(p_ring)
    p_ring.add_argument("--suspect-after", type=float, default=3.0)
    p_ring.add_argument("--dead-after", type=float, default=10.0)

    p_fe = sub.add_parser("frontend", help="HTTP/JSON query front-end")
    _add_common(p_fe)
    p_fe.add_argument(
        "--overlay", default=_env("overlay"), help="overlay host:port"
    )
    p_fe.add_argument(
        "--cache",
        default=_env("cache"),
        help="cache service host:port (omit = private in-process cache)",
    )
    p_fe.add_argument(
        "--ring",
        default=_env("ring"),
        help="ring daemon host:port (omit = static --shard id)",
    )
    p_fe.add_argument("--shard", type=int, default=0)
    p_fe.add_argument("--name", default=_env("name"))
    p_fe.add_argument("--query-timeout", type=float, default=10.0)

    p_fleet = sub.add_parser("fleet", help="whole fleet in one process")
    _add_common(p_fleet)
    _add_backend(p_fleet)
    p_fleet.add_argument("--frontends", type=int, default=2)
    p_fleet.add_argument("--no-cache-service", action="store_true")
    p_fleet.add_argument("--ring-daemon", action="store_true")

    args = parser.parse_args(argv)

    if args.role == "overlay":
        service = OverlayService(
            _build_cluster(args), host=args.host, port=args.port
        )
        asyncio.run(
            _serve_forever(service, "overlay service listening on {port}")
        )
    elif args.role == "cache":
        service = CacheService(
            host=args.host,
            port=args.port,
            ttl=args.ttl,
            join_window=args.join_window,
            overlay_addr=_addr(args.overlay) if args.overlay else None,
        )
        asyncio.run(
            _serve_forever(service, "cache service listening on {port}")
        )
    elif args.role == "ring":
        service = RingDaemon(
            host=args.host,
            port=args.port,
            suspect_after=args.suspect_after,
            dead_after=args.dead_after,
        )
        asyncio.run(
            _serve_forever(service, "ring daemon listening on {port}")
        )
    elif args.role == "frontend":
        if not args.overlay:
            parser.error("frontend needs --overlay (or MOARA_SERVE_OVERLAY)")
        server = FrontendServer(
            _addr(args.overlay),
            http_host=args.host,
            http_port=args.port,
            shard=args.shard,
            name=args.name,
            cache_addr=_addr(args.cache) if args.cache else None,
            ring_addr=_addr(args.ring) if args.ring else None,
            query_timeout=args.query_timeout,
        )

        async def _serve_frontend() -> None:
            await server.start()
            print(
                f"frontend {server.name} (shard {server.shard}) "
                f"serving HTTP on {server.http_port}",
                flush=True,
            )
            try:
                await asyncio.Event().wait()
            finally:
                await server.close()

        asyncio.run(_serve_frontend())
    elif args.role == "fleet":
        fleet = Fleet(
            _build_cluster(args),
            num_frontends=args.frontends,
            cache_service=not args.no_cache_service,
            ring_daemon=args.ring_daemon,
            host=args.host,
            base_http_port=args.port,
        )
        with fleet:
            print(
                "fleet up: frontends on ports "
                + ", ".join(str(p) for p in fleet.http_ports),
                flush=True,
            )
            try:
                import threading

                threading.Event().wait()
            except KeyboardInterrupt:
                pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
