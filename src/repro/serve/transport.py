"""Deployed-plane transports behind the :class:`~repro.sim.network.
FrontendTransport` seam.

Two implementations, both of which run an **unmodified**
:class:`repro.core.frontend.Frontend`:

* :class:`RemoteNetwork` — the real thing: a TCP link to the overlay
  service (:mod:`repro.serve.overlay_service`).  Outbound ``send`` calls
  are counted in a local :class:`~repro.sim.stats.MessageStats` ledger
  (exactly the counts-only accounting the simulated network does) and
  framed onto the socket; the reader task turns inbound frames back into
  :class:`~repro.sim.network.Message` objects, bumps the burst counter,
  and hands them to the front-end.  The clock is monotonic wall time.
* :class:`LocalLoopback` — the same topology with no sockets: the
  transport is wired straight to a frontend-less backend
  :class:`~repro.core.cluster.MoaraCluster` in the same process.
  Delivery is *deferred* (inbound messages queue until :meth:`~
  LocalLoopback.pump`), which reproduces the event-loop's
  never-re-entrant delivery discipline deterministically — this is the
  transport the equivalence tests drive.

:class:`LoopbackPlane` assembles N loopback front-ends plus the
in-process :class:`~repro.core.plan_cache.SharedGroupSizeCache` tier
into a full deployed-shape query plane in one process.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import Any, Callable, Iterator, Optional, Union

from repro.core.adaptive_ttl import AdaptiveTTL
from repro.core.cluster import MoaraCluster
from repro.core.errors import QueryTimeoutError
from repro.core.frontend import Frontend, FrontendConfig, ProbePolicy
from repro.core.plan_cache import SharedGroupSizeCache
from repro.core.planner import SemanticContext
from repro.core.query import Query, QueryResult
from repro.core.shard_router import FrontendShardRouter, canonical_query_text
from repro.pastry.idspace import IdSpace
from repro.pastry.overlay import Overlay
from repro.serve.protocol import encode_frame, read_frame
from repro.serve.resilience import CircuitBreaker, Deadline, RetryPolicy
from repro.sim.network import Message
from repro.sim.stats import MessageStats

__all__ = [
    "LocalLoopback",
    "LoopbackPlane",
    "OverlayMirror",
    "RemoteNetwork",
]


def _count_send(
    stats: MessageStats,
    src: int,
    dst: int,
    mtype: str,
    payload: dict[str, Any],
) -> None:
    """The simulated network's counts-only send accounting, shared by
    both deployed transports (kept in sync with ``Network.send``)."""
    stats.total_messages += 1
    stats.by_type[mtype] += 1
    stats.sent_by_node[src] += 1
    stats.received_by_node[dst] += 1
    tag = payload.get("qid")
    if tag is None:
        tag = payload.get("probe_id")
    if tag is not None and tag not in stats._closed_tags:
        stats.per_query[tag] += 1


class OverlayMirror:
    """A front-end's local replica of the overlay membership.

    Tree-root resolution (``overlay.root``) is a pure function of the
    live membership and the ID space, so a front-end that mirrors the
    member list routes identically to an in-process one — no per-query
    round-trip to ask "who is the root for this group?".  The overlay
    service streams membership deltas to keep the mirror current.
    """

    def __init__(self, space: IdSpace, members: list[int]) -> None:
        self.overlay = Overlay(space)
        if members:
            self.overlay.bulk_join(members)

    def apply(self, joined: set[int], left: set[int]) -> None:
        for node_id in left:
            if node_id in self.overlay:
                self.overlay.remove_node(node_id)
        for node_id in joined:
            if node_id not in self.overlay:
                self.overlay.add_node(node_id)


class RemoteNetwork:
    """:class:`FrontendTransport` over a TCP link to the overlay service.

    Use::

        net = RemoteNetwork("127.0.0.1", 7401, node_id=-1)
        await net.start()          # HELLO/WELCOME + membership snapshot
        fe = Frontend(net, net.overlay, node_id=net.node_id, ...)

    ``send`` never blocks (frames are buffered on the stream writer);
    inbound frames are dispatched by the reader task on the event loop,
    so the front-end's handlers always run on the loop thread.
    """

    def __init__(
        self,
        host: str,
        port: int,
        node_id: int,
        stats: Optional[MessageStats] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        reconnect: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.node_id = node_id
        self.stats = stats or MessageStats()
        self.mirror: Optional[OverlayMirror] = None
        self._frontend: Any = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._reconnect_task: Optional[asyncio.Task] = None
        self._t0 = time.monotonic()
        self._burst = 0
        self.connected = False
        self._closing = False
        #: reconnect pacing (full-jitter backoff; unbounded attempts by
        #: default — the link heals whenever the service comes back).
        self.retry = retry or RetryPolicy()
        #: link-state surface: trips open the instant the socket dies
        #: (threshold 1 — there is nothing to probe except reconnecting),
        #: closes again on a successful re-attach.
        self.breaker = breaker or CircuitBreaker(failure_threshold=1)
        self.auto_reconnect = reconnect
        self.reconnects = 0
        self.reconnect_failures = 0
        #: the deadline scope: while set, outbound frames carry the
        #: remaining end-to-end budget and register their wire tag so
        #: response-triggered sends inherit the same budget.
        self._active_deadline: Optional[Deadline] = None
        self._tag_deadlines: dict[str, Deadline] = {}
        #: observers of membership deltas (the server wires health/stats
        #: surfaces in here; the attached front-end is always notified).
        self.on_members: list[Callable[[set[int], set[int]], None]] = []

    # -- FrontendTransport seam ---------------------------------------

    def attach(self, process: Any) -> None:
        self._frontend = process

    def send(
        self,
        src: int,
        dst: int,
        mtype: str,
        payload: Optional[dict[str, Any]] = None,
    ) -> None:
        if payload is None:
            payload = {}
        _count_send(self.stats, src, dst, mtype, payload)
        tag = payload.get("qid")
        if tag is None:
            tag = payload.get("probe_id")
        deadline = self._active_deadline
        if deadline is None and tag is not None:
            deadline = self._tag_deadlines.get(tag)
        if deadline is not None and deadline.expired:
            # Nobody is waiting any more: don't burn the overlay's time.
            self.stats.record_drop()
            self.stats.deadline_expired += 1
            if tag is not None:
                self._fail_tags({tag}, "end-to-end deadline exceeded")
            return
        writer = self._writer
        if writer is None or writer.is_closing():
            # Overlay link down.  PR 6 treated this as "in flight and
            # lost" (a silent drop the caller only discovered by HTTP
            # timeout); now the send *fails*: the affected query resolves
            # NULL immediately, per the Section 7 contract.
            self.stats.record_drop()
            self.stats.link_send_failures += 1
            if tag is not None:
                self._fail_tags({tag}, "overlay link down")
            return
        frame = {
            "kind": "wire",
            "src": src,
            "dst": dst,
            "mtype": mtype,
            "payload": payload,
        }
        if deadline is not None:
            frame["deadline"] = deadline.remaining()
            if tag is not None:
                self._register_deadline(tag, deadline)
        writer.write(encode_frame(frame))

    # -- deadline propagation ------------------------------------------

    @property
    def active_deadline(self) -> Optional[Deadline]:
        """The deadline scope currently in force (None outside a query);
        side-channel RPCs (the cache tier) cap their hops with it."""
        return self._active_deadline

    @contextlib.contextmanager
    def deadline_scope(self, deadline: Optional[Deadline]) -> Iterator[None]:
        """While active, outbound frames carry ``deadline``'s remaining
        budget (and tag-register it, so the sends triggered later by the
        responses — e.g. the FRONTEND_QUERY fan-out after a SIZE_RESPONSE
        — stay under the same end-to-end budget)."""
        previous = self._active_deadline
        self._active_deadline = deadline
        try:
            yield
        finally:
            self._active_deadline = previous

    def _register_deadline(self, tag: str, deadline: Deadline) -> None:
        if len(self._tag_deadlines) > 512:
            self._tag_deadlines = {
                t: d
                for t, d in self._tag_deadlines.items()
                if not d.expired
            }
        self._tag_deadlines[tag] = deadline

    def _fail_tags(self, tags: Optional[set[str]], reason: str) -> None:
        """Resolve in-flight front-end work for ``tags`` as NULL (all of
        it when None).  Deferred to the next loop tick when a loop is
        running, so a failure surfacing mid-``submit`` never re-enters
        the front-end's state machine."""
        frontend = self._frontend
        if frontend is None:
            return
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            frontend.on_link_failure(tags, reason)
            return
        loop.call_soon(frontend.on_link_failure, tags, reason)

    @property
    def now(self) -> float:
        return time.monotonic() - self._t0

    @property
    def burst_seq(self) -> int:
        return self._burst

    def bump_burst(self) -> None:
        """Advance the synchronous-burst counter (an inbound event was
        processed by something other than the overlay link — e.g. the
        cache-service subscription channel)."""
        self._burst += 1

    @property
    def overlay(self) -> Overlay:
        if self.mirror is None:
            raise RuntimeError("RemoteNetwork.start() has not completed")
        return self.mirror.overlay

    # -- link lifecycle ------------------------------------------------

    async def _connect(
        self,
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter, dict[str, Any]]:
        """One HELLO/WELCOME handshake; returns the fresh link + snapshot."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        writer.write(
            encode_frame(
                {"kind": "hello", "role": "frontend", "node_id": self.node_id}
            )
        )
        await writer.drain()
        welcome = await read_frame(reader)
        if welcome is None or welcome.get("kind") != "welcome":
            writer.close()
            raise ConnectionError(f"overlay service refused us: {welcome!r}")
        return reader, writer, welcome

    async def start(self) -> None:
        """Connect, introduce ourselves, and load the membership snapshot."""
        reader, writer, welcome = await self._connect()
        self._reader, self._writer = reader, writer
        space = welcome["space"]
        self.mirror = OverlayMirror(
            IdSpace(bits=space["bits"], digit_bits=space["digit_bits"]),
            welcome["members"],
        )
        self.connected = True
        self.breaker.record_success()
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @property
    def link_state(self) -> str:
        """``connected`` / ``reconnecting`` / ``down`` (for ``/stats``)."""
        if self.connected:
            return "connected"
        if self._reconnect_task is not None and not self._reconnect_task.done():
            return "reconnecting"
        return "down"

    def link_health(self) -> dict[str, Any]:
        """The per-link health surface exposed by the front-end server."""
        return {
            "state": self.link_state,
            "reconnects": self.reconnects,
            "reconnect_failures": self.reconnect_failures,
            "send_failures": self.stats.link_send_failures,
            "breaker": self.breaker.snapshot(),
        }

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                kind = frame["kind"]
                if kind == "wire":
                    self._burst += 1
                    payload = frame["payload"]
                    message = Message(
                        frame["mtype"],
                        frame["src"],
                        frame["dst"],
                        payload,
                        sent_at=self.now,
                    )
                    if self._frontend is not None:
                        tag = payload.get("qid")
                        if tag is None:
                            tag = payload.get("probe_id")
                        scope = (
                            self._tag_deadlines.get(tag)
                            if tag is not None
                            else None
                        )
                        # Sends triggered while handling this response
                        # (cover fan-out after a probe answer) inherit
                        # the originating query's end-to-end budget.
                        with self.deadline_scope(scope):
                            self._frontend.handle_message(message)
                elif kind == "members":
                    self._burst += 1
                    joined = set(frame["joined"])
                    left = set(frame["left"])
                    assert self.mirror is not None
                    self.mirror.apply(joined, left)
                    if self._frontend is not None:
                        self._frontend.on_membership_change(joined, left)
                    for listener in self.on_members:
                        listener(joined, left)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.connected = False
            if not self._closing:
                self._on_link_lost()

    def _on_link_lost(self) -> None:
        """The overlay socket died: fail (don't lose) everything in
        flight, trip the breaker, and start the backoff-paced reconnect."""
        trips_before = self.breaker.trips
        self.breaker.record_failure()
        self.stats.breaker_trips += self.breaker.trips - trips_before
        # Frames queued on the dead writer are gone; pending queries
        # resolve NULL now instead of hanging until their HTTP timeout.
        self._fail_tags(None, "overlay link lost")
        if self.auto_reconnect and (
            self._reconnect_task is None or self._reconnect_task.done()
        ):
            self._reconnect_task = asyncio.ensure_future(
                self._reconnect_loop()
            )

    async def _reconnect_loop(self) -> None:
        """Re-dial with full-jitter backoff until the service answers,
        then re-attach: fresh membership snapshot diffed into the mirror
        (notifying the front-end, which NULL-resolves work stuck on
        roots that departed during the outage) and a new reader task."""
        try:
            for pause in self.retry.attempts():
                await asyncio.sleep(pause)
                if self._closing:
                    return
                try:
                    reader, writer, welcome = await self._connect()
                except (OSError, ConnectionError):
                    self.reconnect_failures += 1
                    continue
                self._reader, self._writer = reader, writer
                assert self.mirror is not None
                current = set(self.mirror.overlay.node_ids)
                fresh = set(welcome["members"])
                joined, left = fresh - current, current - fresh
                self.mirror.apply(joined, left)
                self.connected = True
                self.reconnects += 1
                self.stats.link_reconnects += 1
                self.breaker.record_success()
                self._reader_task = asyncio.ensure_future(self._read_loop())
                if joined or left:
                    if self._frontend is not None:
                        self._frontend.on_membership_change(joined, left)
                    for listener in self.on_members:
                        listener(joined, left)
                return
        except asyncio.CancelledError:
            pass

    async def close(self) -> None:
        self._closing = True
        self.connected = False
        for task in (self._reconnect_task, self._reader_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass


class _LoopbackProxy:
    """The front-end's stand-in on the backend's simulated network."""

    __slots__ = ("node_id", "events")

    def __init__(self, node_id: int, events: list) -> None:
        self.node_id = node_id
        self.events = events

    def handle_message(self, message: Message) -> None:
        self.events.append(("wire", message))


class LocalLoopback:
    """Deployed-shape transport wired straight to an in-process backend.

    The front-end behaves exactly as it would behind
    :class:`RemoteNetwork` — sends are counted in a private ledger and
    *queued*, inbound delivery happens strictly between bursts — but the
    "wire" is a list and the "overlay service" is the backend cluster in
    the same process.  Drive it with :meth:`pump` (or use
    :class:`LoopbackPlane`, which does).
    """

    def __init__(
        self,
        backend: MoaraCluster,
        node_id: int,
        burst_counter: Optional[list[int]] = None,
    ) -> None:
        self.backend = backend
        self.node_id = node_id
        self.stats = MessageStats()
        self._frontend: Any = None
        #: plane-wide delivery counter (a shared one-element list):
        #: cross-shard probe joins compare ``created_seq`` values, so
        #: every transport of one plane must read the *same* counter —
        #: the loopback analog of the engine's global event count.
        self._burst = burst_counter if burst_counter is not None else [0]
        self._events: list[tuple] = []
        self._proxy = _LoopbackProxy(node_id, self._events)
        backend.network.attach(self._proxy)
        backend.overlay.add_listener(self._queue_membership)

    # -- FrontendTransport seam ---------------------------------------

    def attach(self, process: Any) -> None:
        self._frontend = process

    def send(
        self,
        src: int,
        dst: int,
        mtype: str,
        payload: Optional[dict[str, Any]] = None,
    ) -> None:
        if payload is None:
            payload = {}
        _count_send(self.stats, src, dst, mtype, payload)
        self.backend.network.send(src, dst, mtype, payload)

    @property
    def now(self) -> float:
        # Sharing the backend's simulated clock keeps loopback runs
        # deterministic and time-comparable with the simulated plane.
        return self.backend.engine.now

    @property
    def burst_seq(self) -> int:
        # Plane-wide deliveries plus backend engine events: a probe or
        # share opened before *any* event was processed anywhere stops
        # being joinable, matching the simulated plane's global rule.
        return self._burst[0] + self.backend.engine.events_processed

    # -- delivery ------------------------------------------------------

    def _queue_membership(self, joined: set[int], left: set[int]) -> None:
        self._events.append(("members", set(joined), set(left)))

    def pump(self, drain_backend: bool = True) -> int:
        """Deliver queued inbound events to the front-end.

        Returns the number of events delivered.  ``drain_backend`` first
        runs the backend engine until idle, so queued sends turn into
        queued responses.
        """
        if drain_backend:
            self.backend.run_until_idle()
        delivered = 0
        while self._events:
            event = self._events.pop(0)
            self._burst[0] += 1
            delivered += 1
            if self._frontend is None:
                continue
            if event[0] == "wire":
                self._frontend.handle_message(event[1])
            else:
                self._frontend.on_membership_change(event[1], event[2])
        return delivered

    def close(self) -> None:
        self.backend.network.detach(self.node_id)


class LoopbackPlane:
    """The whole deployed query plane in one process, with no sockets.

    N unmodified :class:`~repro.core.frontend.Frontend` instances on
    :class:`LocalLoopback` transports over one frontend-less backend
    cluster, sharing an in-process
    :class:`~repro.core.plan_cache.SharedGroupSizeCache` tier keyed by a
    :class:`~repro.core.shard_router.FrontendShardRouter` — the fleet's
    topology minus the wires.  This is the default, dependency-free way
    to run the deployed shape (the cache *service* is opt-in), and the
    reference the socket fleet is tested for equivalence against.
    """

    def __init__(
        self,
        backend: MoaraCluster,
        num_frontends: int = 2,
        frontend_config: Optional[FrontendConfig] = None,
        probe_policy: ProbePolicy = ProbePolicy.COMPOSITE,
        shared_size_cache: bool = True,
        chaos_seed: Optional[int] = None,
    ) -> None:
        if num_frontends < 1:
            raise ValueError("plane needs at least one front-end")
        self.backend = backend
        self.router = FrontendShardRouter(num_frontends)
        self.semantics = SemanticContext()
        fc = frontend_config or FrontendConfig()
        self.shared_sizes: Optional[SharedGroupSizeCache] = None
        if shared_size_cache:
            ttl_policy = AdaptiveTTL.if_enabled(
                fc.adaptive_size_ttl,
                fc.size_cache_ttl_min,
                fc.size_cache_ttl,
                fc.churn_window,
            )
            self.shared_sizes = SharedGroupSizeCache(
                router=self.router,
                ttl=fc.size_cache_ttl,
                ttl_policy=ttl_policy,
            )
            backend.overlay.add_listener(self._feed_tier_churn)
        self.transports: list[Any] = []
        self.frontends: list[Frontend] = []
        burst_counter = [0]
        for shard in range(num_frontends):
            transport: Any = LocalLoopback(
                backend, node_id=-1 - shard, burst_counter=burst_counter
            )
            if chaos_seed is not None:
                # Deferred import: chaos wraps this module's transports.
                from repro.serve.chaos import ChaosTransport

                transport = ChaosTransport(
                    transport, seed=chaos_seed * 1_000_003 + shard
                )
            frontend = Frontend(
                transport,
                backend.overlay,
                node_id=-1 - shard,
                probe_policy=probe_policy,
                semantics=self.semantics,
                config=frontend_config,
                shard_id=shard,
                shared_sizes=self.shared_sizes,
            )
            self.transports.append(transport)
            self.frontends.append(frontend)

    def _feed_tier_churn(self, joined: set[int], left: set[int]) -> None:
        if (joined or left) and self.shared_sizes is not None:
            self.shared_sizes.on_membership_change(self.backend.engine.now)

    def route(self, query: Union[str, Query]) -> int:
        return self.router.shard_for(canonical_query_text(query))

    def query(self, query: Union[str, Query]) -> QueryResult:
        """Submit through the shard router and drive to completion."""
        return self.query_concurrent([query])[0]

    def query_concurrent(
        self, queries: list[Union[str, Query]], max_pumps: int = 10_000
    ) -> list[QueryResult]:
        """Submit a batch in one burst and pump the plane until done.

        Under chaos (``chaos_seed`` set and link faults active), frames
        may be held back or lost; a plane that goes idle with queries
        outstanding first advances the clock to the next scheduled
        chaos release, and — when nothing is pending anywhere — resolves
        the stuck queries as **explicit NULL failures** (the Section 7
        contract) instead of raising: slow or failed, never silently
        hung.  Without chaos, idle-with-missing is still a hard error
        (it means a plane bug, not an injected fault).
        """
        submitted = [
            (self.frontends[self.route(query)], query) for query in queries
        ]
        pairs = [(fe, fe.submit(query)) for fe, query in submitted]
        chaos = any(getattr(t, "is_chaos", False) for t in self.transports)
        stall_fails = 0
        for _ in range(max_pumps):
            if all(qid in fe.results for fe, qid in pairs):
                return [fe.results.pop(qid) for fe, qid in pairs]
            delivered = sum(t.pump() for t in self.transports)
            if delivered == 0 and self.backend.engine.pending == 0:
                release = min(
                    (
                        r
                        for r in (
                            getattr(t, "pending_release", lambda: None)()
                            for t in self.transports
                        )
                        if r is not None
                    ),
                    default=None,
                )
                if release is not None:
                    # Chaos is holding frames: jump to their release time.
                    self.backend.engine.run(until=release)
                    continue
                missing = [
                    qid for fe, qid in pairs if qid not in fe.results
                ]
                if not missing:
                    continue
                if chaos and stall_fails < 3:
                    # In-flight frames died to injected faults: fail the
                    # remaining work explicitly (NULL resolution).  The
                    # cascade may take a second pass (NULL-resolved
                    # probes re-dispatch, the re-dispatch may be eaten
                    # by the same fault), hence the small retry budget.
                    for fe in self.frontends:
                        fe.on_link_failure(
                            None, "in-flight frames lost to link faults"
                        )
                    stall_fails += 1
                    continue
                raise QueryTimeoutError(
                    f"{len(missing)} queries did not complete "
                    f"(loopback plane went idle)"
                )
        raise QueryTimeoutError("loopback plane did not converge")
