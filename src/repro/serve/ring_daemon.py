"""The ring daemon: heartbeat-driven front-end shard membership.

The deployed query plane's :class:`~repro.core.shard_router.
FrontendShardRouter` needs a live member list — which front-end shards
exist and are healthy — and every participant (front-ends routing
queries, the ops surface, tests) must agree on it.  The ring daemon is
that one source of truth:

* A front-end connects, says ``hello {role: "shard", name}``, and is
  assigned a **stable shard id**: the name→shard mapping is persistent
  for the daemon's lifetime and ids are never reused, so a front-end
  that restarts under the same name gets the same id back — and with it,
  via the router's ``shard:<id>:<replica>`` virtual points, **exactly
  the arcs of the key space it owned before**.
* Liveness is heartbeats on the same connection.  A shard that misses
  heartbeats for ``suspect_after`` seconds is *suspected*: its points
  leave the ring (each key it owned remaps to the next surviving point —
  the consistent-hash ~1/N remap), but its record is kept so a
  recovering shard re-joins as itself.  After ``dead_after`` seconds the
  record is dropped entirely.  A clean connection close is a *graceful
  leave*: immediate removal, mapping retained.
* Every membership change bumps an **epoch** and pushes the full member
  list to all connections.  :class:`RingClient` rebuilds its local
  router from each epoch (``FrontendShardRouter.from_members``), so all
  front-ends route by the same ring a few milliseconds after any change.

The daemon holds no query state; if it dies, front-ends keep routing by
their last epoch and re-register when it returns.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Callable, Optional

from repro.core.shard_router import FrontendShardRouter
from repro.serve.protocol import FrameError, encode_frame, read_frame
from repro.serve.resilience import RetryPolicy

__all__ = ["RingClient", "RingDaemon"]


class _ShardRecord:
    __slots__ = ("name", "shard", "last_seen", "status")

    def __init__(self, name: str, shard: int, last_seen: float) -> None:
        self.name = name
        self.shard = shard
        self.last_seen = last_seen
        self.status = "alive"  # alive | suspect | left


class RingDaemon:
    """Serve shard-membership epochs on a TCP port."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        suspect_after: float = 3.0,
        dead_after: float = 10.0,
        tick: float = 0.25,
    ) -> None:
        if suspect_after <= 0 or dead_after < suspect_after:
            raise ValueError(
                "need 0 < suspect_after <= dead_after for sane demotions"
            )
        self.host = host
        self.port = port
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self.tick = tick
        self.epoch = 0
        self._records: dict[str, _ShardRecord] = {}
        #: high-water shard id; ids are never reused, even after death.
        self._next_shard = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._monitor_task: Optional[asyncio.Task] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._monitor_task = asyncio.ensure_future(self._monitor())

    async def close(self) -> None:
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()

    # -- membership ----------------------------------------------------

    def alive_shards(self) -> set[int]:
        return {
            record.shard
            for record in self._records.values()
            if record.status == "alive"
        }

    def members_snapshot(self) -> list[dict[str, Any]]:
        return [
            {
                "shard": record.shard,
                "name": record.name,
                "status": record.status,
            }
            for record in sorted(
                self._records.values(), key=lambda r: r.shard
            )
        ]

    def _register(self, name: str) -> _ShardRecord:
        record = self._records.get(name)
        now = time.monotonic()
        changed = record is None or record.status != "alive"
        if record is None:
            record = _ShardRecord(name, self._next_shard, now)
            self._next_shard += 1
            self._records[name] = record
        else:
            record.last_seen = now
        record.status = "alive"
        if changed or self.epoch == 0:
            self._bump_epoch()
        return record

    def _bump_epoch(self) -> None:
        self.epoch += 1
        frame = encode_frame(
            {
                "kind": "epoch",
                "epoch": self.epoch,
                "members": self.members_snapshot(),
            }
        )
        for writer in self._writers:
            if not writer.is_closing():
                writer.write(frame)

    async def _monitor(self) -> None:
        while True:
            await asyncio.sleep(self.tick)
            now = time.monotonic()
            changed = False
            for name in list(self._records):
                record = self._records[name]
                silence = now - record.last_seen
                if record.status == "alive" and silence >= self.suspect_after:
                    record.status = "suspect"
                    changed = True
                if silence >= self.dead_after:
                    # Forget the record but never the id: _next_shard
                    # already moved past it, so the name coming back
                    # later is a *new* shard with fresh arcs.
                    del self._records[name]
                    changed = True
            if changed:
                self._bump_epoch()
                for writer in list(self._writers):
                    if not writer.is_closing():
                        try:
                            await writer.drain()
                        except (ConnectionError, OSError):
                            pass

    # -- connections ---------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        record: Optional[_ShardRecord] = None
        try:
            hello = await read_frame(reader)
            if hello is None or hello.get("kind") != "hello":
                writer.write(
                    encode_frame({"kind": "error", "message": "expected hello"})
                )
                await writer.drain()
                return
            if hello.get("role") == "shard":
                # Register (and push the new epoch to *existing*
                # connections) before this writer joins the push set, so
                # its own first frame is the welcome below.
                record = self._register(str(hello["name"]))
            writer.write(
                encode_frame(
                    {
                        "kind": "welcome",
                        "shard": record.shard if record else None,
                        "epoch": self.epoch,
                        "members": self.members_snapshot(),
                    }
                )
            )
            await writer.drain()
            self._writers.add(writer)
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                kind = frame.get("kind")
                if kind == "heartbeat" and record is not None:
                    record.last_seen = time.monotonic()
                    if record.status == "suspect":
                        # Recovered before dead_after: same id, same arcs.
                        record.status = "alive"
                        self._bump_epoch()
                        await writer.drain()
                elif kind == "members":
                    writer.write(
                        encode_frame(
                            {
                                "kind": "epoch",
                                "epoch": self.epoch,
                                "members": self.members_snapshot(),
                            }
                        )
                    )
                    await writer.drain()
        except (FrameError, ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            if record is not None and self._records.get(record.name) is record:
                if record.status != "left":
                    # Graceful leave: drop from the ring now, remember
                    # the name→shard mapping for a future re-join.
                    record.status = "left"
                    self._bump_epoch()
            writer.close()


class RingClient:
    """A front-end's registration with the ring daemon.

    After :meth:`start`, :attr:`shard` is this front-end's stable id and
    :attr:`router` is a live :class:`FrontendShardRouter` rebuilt from
    every epoch push; :attr:`on_change` callbacks fire after each
    rebuild.  A background task heartbeats roughly every
    ``heartbeat_every`` seconds — **jittered ±20%** so a fleet of
    shards started together never phase-locks its heartbeats (nor its
    reconnect storms) onto the daemon.

    If the daemon link drops, the client keeps routing by its last
    epoch and rejoins under backoff (:class:`~repro.serve.resilience.
    RetryPolicy`, full jitter) **with the same name**: the daemon's
    persistent name→shard map hands back the same id, and with it the
    same ring arcs — a restart is invisible to the key space.
    """

    def __init__(
        self,
        host: str,
        port: int,
        name: str,
        heartbeat_every: float = 1.0,
        retry: Optional[RetryPolicy] = None,
        reconnect: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.name = name
        self.heartbeat_every = heartbeat_every
        self.retry = retry or RetryPolicy()
        self.auto_reconnect = reconnect
        self.shard: Optional[int] = None
        self.epoch = 0
        self.members: list[dict[str, Any]] = []
        self.router = FrontendShardRouter.from_members(set())
        self.on_change: list[Callable[[], None]] = []
        self.connected = False
        self.reconnects = 0
        #: seeded per-name so each shard jitters differently but a
        #: given deployment replays the same schedule.
        self._rng = random.Random(name)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._tasks: list[asyncio.Task] = []
        self._closing = False

    async def start(self) -> None:
        await self._connect()
        self._tasks = [
            asyncio.ensure_future(self._read_epochs()),
            asyncio.ensure_future(self._heartbeat()),
        ]

    async def _connect(self) -> None:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        writer.write(
            encode_frame({"kind": "hello", "role": "shard", "name": self.name})
        )
        await writer.drain()
        welcome = await read_frame(reader)
        if welcome is None or welcome.get("kind") != "welcome":
            writer.close()
            raise ConnectionError(f"ring daemon refused us: {welcome!r}")
        self._reader = reader
        self._writer = writer
        self.shard = welcome["shard"]
        # A restarted daemon counts epochs from scratch; trust the
        # welcome unconditionally rather than comparing across lifetimes.
        self.epoch = 0
        self._apply(welcome["epoch"], welcome["members"])
        self.connected = True

    async def close(self) -> None:
        self._closing = True
        for task in self._tasks:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _apply(self, epoch: int, members: list[dict[str, Any]]) -> None:
        if epoch <= self.epoch and self.members:
            return
        self.epoch = epoch
        self.members = members
        self.router = FrontendShardRouter.from_members(
            m["shard"] for m in members if m["status"] == "alive"
        )
        for callback in self.on_change:
            callback()

    async def _read_epochs(self) -> None:
        while True:
            try:
                while True:
                    frame = await read_frame(self._reader)
                    if frame is None:
                        break
                    if frame.get("kind") == "epoch":
                        self._apply(frame["epoch"], frame["members"])
            except asyncio.CancelledError:
                return
            except (ConnectionError, FrameError, OSError):
                pass
            self.connected = False
            if self._closing or not self.auto_reconnect:
                return
            if not await self._rejoin():
                return

    async def _rejoin(self) -> bool:
        """Backoff-governed re-registration under the same name."""
        try:
            for pause in self.retry.attempts():
                await asyncio.sleep(pause)
                if self._closing:
                    return False
                try:
                    await self._connect()
                except (ConnectionError, OSError):
                    continue
                self.reconnects += 1
                return True
        except asyncio.CancelledError:
            pass
        return False

    async def _heartbeat(self) -> None:
        try:
            while not self._closing:
                await asyncio.sleep(
                    self.heartbeat_every * self._rng.uniform(0.8, 1.2)
                )
                writer = self._writer
                if writer is None or writer.is_closing() or not self.connected:
                    continue  # mid-rejoin: keep ticking, skip the beat
                try:
                    writer.write(encode_frame({"kind": "heartbeat"}))
                    await writer.drain()
                except (ConnectionError, OSError):
                    self.connected = False
        except asyncio.CancelledError:
            pass
