"""The standing-query plane: push-based delta subscriptions.

Every workload before this package was request/response: a query walks
the cover trees once and the answer is a snapshot.  ``repro.standing``
makes queries *long-lived*.  A :class:`~repro.standing.manager.
StandingHandle` registered at a front-end installs delta subscriptions
down the query's cover trees (:mod:`repro.standing.agent`); from then on
tree nodes **push** incremental deltas up to the subscribed roots --
member join/leave, attribute change, subtree reconfiguration -- instead
of being TTL re-polled, and the front-end folds per-group root deltas
into a live answer stream with monotone update sequence numbers
(:mod:`repro.standing.manager`).

Enmeshed semantics ("Scalable Social Coordination using Enmeshed
Queries", arXiv 1205.0435) layer on top: one standing query may span
several groups (an AND/OR cover chosen by the planner), each group's
delta stream arrives independently, and the cover is re-evaluated as
churn shifts group sizes.

Relation to the other execution modes (see docs/STANDING_QUERIES.md for
the full comparison):

* **one-shot** (:mod:`repro.core.frontend`): pull, per-request freshness;
* **continuous ablation** (:mod:`repro.sdims.continuous`): SDIMS-style
  aggregate-on-write over a *single attribute per installation*, no
  groups, no planner -- the baseline this plane is measured against;
* **standing** (this package): group predicates, enmeshed covers,
  leases, and a per-query ordering/staleness contract.

By construction the standing plane closes the known churn blind spot of
the pruned one-shot trees: it subscribes the **raw DHT tree** (every
node of the group attribute's tree), bypassing the PRUNE/NO-UPDATE
state of :mod:`repro.core.tree_state`, so churn in a pruned region
surfaces as a delta instead of staying invisible until the next poll.
"""

from repro.standing.agent import StandingAgent
from repro.standing.manager import StandingHandle, StandingQueryManager

__all__ = ["StandingAgent", "StandingHandle", "StandingQueryManager"]
