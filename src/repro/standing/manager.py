"""Front-end side of the standing-query plane: registration, folding,
replans, leases, and the ordering/staleness contract.

:class:`StandingQueryManager` lives on every
:class:`~repro.core.frontend.Frontend` (as ``frontend.standing``).  It
plans a standing query exactly like a one-shot (same planner, same
cover choice, seeded from the group-size cache -- groups the cache
cannot price default to the planner's cost 2.0, so registration is
synchronous and never waits on a probe round), installs one
subscription per cover group, and then **folds** the per-group
``STANDING_UPDATE`` streams into a live answer on the returned
:class:`StandingHandle`.

The ordering/staleness contract (documented for consumers in
docs/STANDING_QUERIES.md):

* every fold carries a front-end-assigned ``update_seq``, strictly
  monotone per standing query;
* per cover group, updates from one root are applied in root-sequence
  order -- duplicates and reorderings are dropped; a root *change*
  (churn re-rooted the tree) resets the group's sequence horizon;
* across groups there is **no atomicity**: a fold may combine group
  partials captured at different instants (eventual consistency).  At
  quiesce -- no in-flight messages anywhere -- the folded answer equals
  the centralized recompute over live membership (the campaign oracle's
  standing invariant checks exactly this);
* a fold's ``value`` is a full replacement answer, never an increment.

Enmeshed replanning: every ``standing_replan_every`` folds the manager
re-runs cover choice against the refreshed group-size cache (standing
updates piggyback a cost estimate, so the cache stays warm without
probes).  A cover change is applied **make-before-break**: new groups
are installed and must each deliver one update before the fold switches
over and the removed groups are cancelled -- the live answer never
regresses to a partial cover.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from repro.core import messages as mt
from repro.core.moara_node import group_attribute
from repro.core.parser import parse_query
from repro.core.predicates import Predicate, TruePredicate
from repro.core.query import Query, QueryResult
from repro.sim.network import Message

__all__ = ["StandingHandle", "StandingQueryManager"]

UpdateCallback = Callable[[QueryResult], None]

#: folds retained per handle for pull-style consumers (the HTTP
#: ``updates?since=`` endpoint); older folds are dropped and counted.
MAX_UPDATES = 256


@dataclass
class StandingHandle:
    """A registered standing query, owned by the caller.

    The handle is the fold target: :attr:`value` / :meth:`current` track
    the live answer, :attr:`updates` the recent fold history (bounded to
    ``MAX_UPDATES``; :attr:`updates_dropped` counts what fell off).
    """

    sub_id: str
    query: Query
    #: canonical keys of the active cover (updated by replans).
    cover: list[str] = field(default_factory=list)
    lease: float = 0.0
    registered_at: float = 0.0
    #: strictly monotone fold counter (the ordering contract's spine).
    update_seq: int = 0
    #: (update_seq, QueryResult) pairs, oldest first, bounded.
    updates: list[tuple[int, QueryResult]] = field(default_factory=list)
    updates_dropped: int = 0
    on_update: Optional[UpdateCallback] = None
    #: False after cancel or lease expiry.
    active: bool = True
    #: True when the subscription's lease ran out at a root.
    expired: bool = False
    #: True when the planner proved the predicate unsatisfiable: the
    #: handle is a constant (no subscriptions exist anywhere).
    static: bool = False

    def current(self) -> Optional[QueryResult]:
        """The latest folded answer (None before the first update)."""
        if not self.updates:
            return None
        return self.updates[-1][1]

    def current_value(self) -> Any:
        """The latest folded value (None before the first update)."""
        result = self.current()
        return None if result is None else result.value

    def updates_since(self, seq: int) -> list[tuple[int, QueryResult]]:
        """Folds with ``update_seq > seq`` still in the bounded history."""
        return [(s, r) for s, r in self.updates if s > seq]

    def _record(self, result: QueryResult) -> None:
        self.updates.append((self.update_seq, result))
        if len(self.updates) > MAX_UPDATES:
            drop = len(self.updates) - MAX_UPDATES
            del self.updates[:drop]
            self.updates_dropped += drop
        if self.on_update is not None:
            self.on_update(result)


@dataclass
class _GroupState:
    """One cover group's delta stream state at the front-end."""

    predicate: Predicate
    root: int
    partial: Any = None
    contributors: int = 0
    #: monotone horizon per root: (root id, last seq applied from it).
    last_root: Optional[int] = None
    last_seq: int = 0
    #: True once this group delivered at least one update (the
    #: make-before-break switchover gate for pending groups).
    delivered: bool = False


@dataclass
class _StandingSub:
    """Manager-internal state for one registered standing query."""

    handle: StandingHandle
    plan: Any  # QueryPlan
    #: active cover: canonical key -> group state (folds read these).
    groups: dict[str, _GroupState] = field(default_factory=dict)
    #: the active cover's predicates (install payloads carry the full
    #: cover for enmeshed OR-dedup at the nodes).
    cover: tuple[Predicate, ...] = ()
    #: replan in flight: new-only groups awaiting their first update.
    pending: dict[str, _GroupState] = field(default_factory=dict)
    pending_cover: tuple[Predicate, ...] = ()
    folds: int = 0


class StandingQueryManager:
    """Registration, folding, and lifecycle for one front-end."""

    def __init__(self, frontend: Any) -> None:
        self._frontend = frontend
        self._counter = itertools.count(1)
        self._subs: dict[str, _StandingSub] = {}

    # ------------------------------------------------------------------
    # introspection (leak invariant / routing)
    # ------------------------------------------------------------------

    def active_sub_ids(self) -> set[str]:
        """Ids of standing queries this front-end considers live."""
        return set(self._subs)

    def __len__(self) -> int:
        return len(self._subs)

    # ------------------------------------------------------------------
    # registration / teardown
    # ------------------------------------------------------------------

    def register(
        self,
        query: Union[str, Query],
        on_update: Optional[UpdateCallback] = None,
        lease: float = 0.0,
    ) -> StandingHandle:
        """Plan a standing query and install its delta subscriptions.

        Synchronous: cover choice uses cached group sizes only (missing
        groups default to the planner's cost 2.0), so the handle returns
        immediately; the first folded update arrives with the roots'
        initial pushes.  ``lease`` > 0 arms root-side expiry (renew with
        :meth:`renew`); 0 means the subscription lives until cancelled.
        """
        frontend = self._frontend
        if isinstance(query, str):
            query = parse_query(query)
        sub_id = f"sub{frontend.node_id}-{next(self._counter)}"
        now = frontend.network.now
        frontend.network.stats.standing_registered += 1
        plan, _ = frontend._plan(query.predicate)
        handle = StandingHandle(
            sub_id=sub_id,
            query=query,
            lease=lease,
            registered_at=now,
            on_update=on_update,
        )
        sub = _StandingSub(handle=handle, plan=plan)
        self._subs[sub_id] = sub
        if plan.unsatisfiable:
            # Provably empty group: the answer is a constant; nothing is
            # installed anywhere and no deltas will ever arrive.
            handle.static = True
            handle.update_seq = 1
            handle._record(
                QueryResult(
                    query=query,
                    value=query.function.finalize(None),
                    cover=[],
                    short_circuited=True,
                )
            )
            return handle
        if plan.global_group:
            cover: list[Predicate] = [TruePredicate()]
        else:
            cover = sorted(
                frontend._choose_cover(plan, self._cached_costs(plan, now)),
                key=lambda p: p.canonical(),
            )
        sub.cover = tuple(cover)
        handle.cover = [p.canonical() for p in cover]
        for group in cover:
            state = _GroupState(
                predicate=group, root=self._root_for(group)
            )
            sub.groups[group.canonical()] = state
            self._send_install(sub_id, group, sub.cover, lease, state.root)
        return handle

    def cancel(self, handle: StandingHandle) -> None:
        """Tear the subscription down at every cover tree."""
        handle.active = False
        sub = self._subs.pop(handle.sub_id, None)
        if sub is None:
            return
        self._frontend.network.stats.standing_cancelled += 1
        for state in list(sub.groups.values()) + list(sub.pending.values()):
            self._send_cancel(handle.sub_id, state.predicate)

    def renew(
        self, handle: StandingHandle, lease: Optional[float] = None
    ) -> None:
        """Extend the lease at every cover root (no reinstall)."""
        sub = self._subs.get(handle.sub_id)
        if sub is None:
            return
        if lease is not None:
            handle.lease = lease
        for state in list(sub.groups.values()) + list(sub.pending.values()):
            self._frontend.network.send(
                self._frontend.node_id,
                self._root_for(state.predicate),
                mt.SUB_RENEW,
                {
                    "sub_id": handle.sub_id,
                    "predicate": state.predicate,
                    "lease": handle.lease,
                },
            )

    # ------------------------------------------------------------------
    # delta folding (routed from Frontend.handle_message)
    # ------------------------------------------------------------------

    def on_update(self, message: Message) -> None:
        payload = message.payload
        sub_id = payload["sub_id"]
        pred_key = payload["pred_key"]
        now = self._frontend.network.now
        sub = self._subs.get(sub_id)
        if sub is None:
            # We no longer know this subscription (cancelled here, state
            # lost to a restart): tell the pushing root to drop it so
            # node-side tables cannot leak.
            self._send_cancel(sub_id, payload["predicate"])
            return
        if payload.get("expired"):
            self._expire(sub, pred_key)
            return
        group = sub.groups.get(pred_key)
        if group is None:
            group = sub.pending.get(pred_key)
        if group is None:
            # A group this query no longer covers (replan switched away
            # while its update was in flight): cancel it at the root.
            self._send_cancel(sub_id, payload["predicate"])
            return
        seq = payload["seq"]
        if message.src == group.last_root and seq <= group.last_seq:
            return  # duplicate / reordered root delta: drop
        # A different root means churn re-rooted the tree: accept and
        # reset the sequence horizon to the new root's stream.
        group.last_root = message.src
        group.last_seq = seq
        group.root = message.src
        group.partial = payload["partial"]
        group.contributors = payload["contributors"]
        group.delivered = True
        if (
            self._frontend.config.piggyback_sizes
            and "cost" in payload
        ):
            # Standing updates keep the size cache warm for replans (and
            # for one-shot queries over the same groups) probe-free.
            self._frontend.size_cache.put(pred_key, payload["cost"], now)
        if sub.pending and all(g.delivered for g in sub.pending.values()):
            self._switch_cover(sub)
        if pred_key in sub.groups:
            self._fold(sub, now)

    # ------------------------------------------------------------------
    # churn hook (called from Frontend.on_membership_change)
    # ------------------------------------------------------------------

    def on_membership_change(self, joined: set[int], left: set[int]) -> None:
        """Re-install every live cover on any overlay change.

        Installs are idempotent and pushes are suppressed when nothing
        changed, so the sweep's steady-state cost is bounded; it is what
        reaches re-rooted trees and newly joined nodes (which hold no
        subscription state until an install arrives).
        """
        if not (joined or left):
            return
        for sub in self._subs.values():
            for state in sub.groups.values():
                state.root = self._root_for(state.predicate)
                self._send_install(
                    sub.handle.sub_id,
                    state.predicate,
                    sub.cover,
                    sub.handle.lease,
                    state.root,
                )
            for state in sub.pending.values():
                state.root = self._root_for(state.predicate)
                self._send_install(
                    sub.handle.sub_id,
                    state.predicate,
                    sub.pending_cover,
                    sub.handle.lease,
                    state.root,
                )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _root_for(self, group: Predicate) -> int:
        overlay = self._frontend.overlay
        return overlay.root(overlay.space.hash_name(group_attribute(group)))

    def _send_install(
        self,
        sub_id: str,
        group: Predicate,
        cover: tuple[Predicate, ...],
        lease: float,
        root: int,
    ) -> None:
        self._frontend.network.send(
            self._frontend.node_id,
            root,
            mt.SUB_INSTALL,
            {
                "sub_id": sub_id,
                "query": self._subs[sub_id].handle.query,
                "predicate": group,
                "cover": cover,
                "lease": lease,
                "frontend": self._frontend.node_id,
            },
        )

    def _send_cancel(self, sub_id: str, group: Predicate) -> None:
        self._frontend.network.send(
            self._frontend.node_id,
            self._root_for(group),
            mt.SUB_CANCEL,
            {"sub_id": sub_id, "predicate": group},
        )

    def _cached_costs(self, plan: Any, now: float) -> dict[str, float]:
        costs: dict[str, float] = {}
        for group in plan.all_groups():
            cached = self._frontend.size_cache.get(group.canonical(), now)
            if cached is not None:
                costs[group.canonical()] = cached
        return costs

    def _expire(self, sub: _StandingSub, pred_key: str) -> None:
        """One cover root expired the lease: the whole standing query is
        over.  The expiring root cancelled its own tree; cancel the
        remaining cover trees explicitly (their roots enforce leases
        lazily and might otherwise hold state until the next message)."""
        handle = sub.handle
        handle.expired = True
        handle.active = False
        del self._subs[handle.sub_id]
        for key, state in list(sub.groups.items()) + list(
            sub.pending.items()
        ):
            if key != pred_key:
                self._send_cancel(handle.sub_id, state.predicate)

    def _fold(self, sub: _StandingSub, now: float) -> None:
        handle = sub.handle
        function = handle.query.function
        partial: Any = None
        contributors = 0
        for group in sub.groups.values():
            partial = function.merge(partial, group.partial)
            contributors += group.contributors
        handle.update_seq += 1
        self._frontend.network.stats.standing_updates += 1
        handle._record(
            QueryResult(
                query=handle.query,
                value=function.finalize(partial),
                cover=sorted(sub.groups),
                contributors=contributors,
                latency=now - handle.registered_at,
            )
        )
        sub.folds += 1
        every = self._frontend.config.standing_replan_every
        if every and not sub.pending and sub.folds % every == 0:
            self._maybe_replan(sub, now)

    def _maybe_replan(self, sub: _StandingSub, now: float) -> None:
        """Re-run cover choice against refreshed group sizes; on a cover
        change, start a make-before-break transition."""
        plan = sub.plan
        if plan.global_group or plan.unsatisfiable or len(plan.clauses) <= 1:
            return
        cover = sorted(
            self._frontend._choose_cover(plan, self._cached_costs(plan, now)),
            key=lambda p: p.canonical(),
        )
        new_keys = {p.canonical() for p in cover}
        if new_keys == set(sub.groups):
            return
        self._frontend.network.stats.standing_replans += 1
        sub.pending_cover = tuple(cover)
        sub_id = sub.handle.sub_id
        for group in cover:
            key = group.canonical()
            if key in sub.groups:
                # Kept group: refresh its node-side cover tuple so the
                # enmeshed OR-dedup stays consistent across the new
                # cover (nodes re-push where their designation moved).
                self._send_install(
                    sub_id,
                    group,
                    sub.pending_cover,
                    sub.handle.lease,
                    self._root_for(group),
                )
                continue
            state = _GroupState(predicate=group, root=self._root_for(group))
            sub.pending[key] = state
            self._send_install(
                sub_id, group, sub.pending_cover, sub.handle.lease, state.root
            )
        if not sub.pending:
            # The new cover is a subset of the old: switch immediately.
            self._switch_cover(sub)

    def _switch_cover(self, sub: _StandingSub) -> None:
        """Make-before-break switchover: every pending group delivered,
        so fold over the new cover and cancel the removed groups."""
        new_keys = {p.canonical() for p in sub.pending_cover}
        removed = [
            state
            for key, state in sub.groups.items()
            if key not in new_keys
        ]
        sub.groups = {
            key: state
            for key, state in sub.groups.items()
            if key in new_keys
        }
        sub.groups.update(sub.pending)
        sub.pending = {}
        sub.cover = sub.pending_cover
        sub.pending_cover = ()
        sub.handle.cover = sorted(sub.groups)
        for state in removed:
            self._send_cancel(sub.handle.sub_id, state.predicate)
