"""Node-side standing subscriptions: install, delta push, lease expiry.

A :class:`StandingAgent` is composed into every
:class:`~repro.core.moara_node.MoaraNode` (as ``node.standing``).  It
keeps one entry per ``(sub_id, cover group)`` installed at this node and
pushes **replacement subtree partials** toward the group tree's root
whenever its subtree's contribution changes:

* the partial is the whole recomputed subtree aggregate, not an
  invertible increment -- correct for MIN/MAX/TOP-K, where a departed
  contributor cannot be "subtracted";
* pushes are suppressed when the recomputed partial equals the last one
  pushed (the :mod:`repro.sdims.continuous` suppression rule), so
  steady state costs zero messages;
* the subscription walks the **raw DHT tree** for the group attribute
  (``overlay.parent``/``overlay.children``), deliberately bypassing the
  PRUNE state of :mod:`repro.core.tree_state`: every churn event in the
  subtree is visible by construction.

Enmeshed covers and duplicate suppression: a node satisfying the
standing query's predicate may belong to several groups of an OR cover.
It contributes its value in exactly one tree -- the cover group with the
lexicographically smallest canonical key among those it satisfies -- so
the front-end can merge per-group streams without double counting.  An
attribute change that moves the node between cover groups surfaces as
two deltas (leave one tree, join the other).

Leases are enforced **lazily** at the root: the simulation kernel's
``run_until_idle`` drains every scheduled event, so the agent never
schedules recurring timers.  :meth:`StandingAgent.expire_stale` runs on
every standing message receipt (and is exposed for drivers); an expired
subscription sends the front-end a final ``expired`` update and fans a
cancel down its tree.

Every payload keys the subscription id as ``sub_id`` -- never ``qid`` --
so the network's per-query tag accounting ignores this long-lived
traffic (see :mod:`repro.core.messages`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.core import messages as mt
from repro.baselines.centralized import local_answer
from repro.core.moara_node import group_attribute
from repro.core.predicates import Predicate
from repro.core.query import Query
from repro.sim.network import Message

if TYPE_CHECKING:
    from repro.core.moara_node import MoaraNode

__all__ = ["StandingAgent"]


@dataclass(slots=True)
class _Subscription:
    """One (standing query, cover group) installed at this node."""

    sub_id: str
    pred_key: str
    predicate: Predicate
    tree_key: int
    query: Query
    #: the full chosen cover (group predicates), for enmeshed OR-dedup.
    cover: tuple[Predicate, ...]
    lease: float
    frontend: int
    #: attribute names whose change can alter our contribution.
    attrs: frozenset[str]
    #: child node id -> (partial, contributors) it last pushed to us.
    child_partials: dict[int, tuple[Any, int]] = field(default_factory=dict)
    #: last (partial, contributors) pushed up (suppression state).
    last_pushed: Optional[tuple[Any, int]] = None
    #: parent at the time of the last push (re-push on change).
    known_parent: Optional[int] = None
    #: root-side lease deadline (0.0 = no expiry / not the root).
    expires_at: float = 0.0
    #: root-side monotone delta sequence for STANDING_UPDATE.
    seq: int = 0


def _install_payload(sub: _Subscription) -> dict[str, Any]:
    """The SUB_INSTALL schema for ``sub`` (also piggybacked on deltas so
    a parent that never saw the install can install itself lazily)."""
    return {
        "sub_id": sub.sub_id,
        "query": sub.query,
        "predicate": sub.predicate,
        "cover": sub.cover,
        "lease": sub.lease,
        "frontend": sub.frontend,
    }


class StandingAgent:
    """Per-node standing-subscription state machine."""

    def __init__(self, node: "MoaraNode") -> None:
        self._node = node
        #: (sub_id, pred_key) -> subscription state.
        self._subs: dict[tuple[str, str], _Subscription] = {}

    # ------------------------------------------------------------------
    # introspection (leak invariant)
    # ------------------------------------------------------------------

    def sub_ids(self) -> set[str]:
        """Subscription ids with state at this node (leak checking)."""
        return {sub_id for sub_id, _ in self._subs}

    def __len__(self) -> int:
        return len(self._subs)

    # ------------------------------------------------------------------
    # tree navigation (raw DHT tree -- no prune state)
    # ------------------------------------------------------------------

    def _children(self, sub: _Subscription) -> list[int]:
        overlay = self._node.overlay
        if self._node.node_id not in overlay:
            return []
        return overlay.children(self._node.node_id, sub.tree_key)

    def _parent(self, sub: _Subscription) -> Optional[int]:
        overlay = self._node.overlay
        if self._node.node_id not in overlay:
            return None
        return overlay.parent(self._node.node_id, sub.tree_key)

    # ------------------------------------------------------------------
    # message handlers (wired into MoaraNode's dispatch table)
    # ------------------------------------------------------------------

    def handle_install(self, message: Message) -> None:
        sub = self._install(message.payload)
        # Idempotent fan-down: reach children that joined since the last
        # sweep (the front-end re-installs on every membership change).
        self._fan_down(sub, mt.SUB_INSTALL, _install_payload(sub))
        self._push(sub)
        self.expire_stale(self._node.network.engine.now)

    def handle_delta(self, message: Message) -> None:
        payload = message.payload
        key = (payload["sub_id"], payload["pred_key"])
        sub = self._subs.get(key)
        if sub is None:
            # Post-churn re-rooting: a child pushed to us before our own
            # install arrived.  The delta carries the install schema, so
            # install lazily (no fan-down; the front-end's re-install
            # sweep covers the rest of the tree).
            sub = self._install(payload)
        if message.src not in self._children(sub):
            # Stale sender (no longer our child after reconfiguration):
            # accepting it would double-count its subtree, which now
            # reaches the root through its new parent.
            return
        sub.child_partials[message.src] = (
            payload["partial"],
            payload["contributors"],
        )
        self._push(sub)
        self.expire_stale(self._node.network.engine.now)

    def handle_cancel(self, message: Message) -> None:
        payload = message.payload
        sub_id = payload["sub_id"]
        key = (sub_id, payload["predicate"].canonical())
        sub = self._subs.pop(key, None)
        # Fan down unconditionally: teardown must reach descendants that
        # still hold state even if our own entry drifted away (each node
        # receives one cancel from its parent; the tree is finite and
        # acyclic, so the fan terminates).
        overlay = self._node.overlay
        if self._node.node_id in overlay:
            tree_key = (
                sub.tree_key
                if sub is not None
                else overlay.space.hash_name(
                    group_attribute(payload["predicate"])
                )
            )
            children = overlay.children(self._node.node_id, tree_key)
            if children:
                self._node.network.send_many(
                    self._node.node_id, sorted(children), mt.SUB_CANCEL, payload
                )

    def handle_renew(self, message: Message) -> None:
        payload = message.payload
        key = (payload["sub_id"], payload["predicate"].canonical())
        sub = self._subs.get(key)
        now = self._node.network.engine.now
        if sub is not None:
            sub.lease = payload["lease"]
            if sub.lease > 0 and self._parent(sub) is None:
                sub.expires_at = now + sub.lease
        self.expire_stale(now)

    # ------------------------------------------------------------------
    # churn hooks (called from MoaraNode)
    # ------------------------------------------------------------------

    def on_attribute_change(self, name: str) -> None:
        """A local attribute changed: re-push every affected subscription
        (suppressed when the recomputed subtree partial is unchanged)."""
        for sub in list(self._subs.values()):
            if name in sub.attrs:
                self._push(sub)

    def on_membership_change(self, joined: set[int], left: set[int]) -> None:
        """Overlay churn: re-derive parents/children per subscription.

        Partials from nodes that stopped being our children are dropped
        (their subtrees now reach the root through another path --
        keeping them would double-count), and a changed parent gets a
        forced push carrying the install schema so it can install itself
        lazily before its own install arrives.
        """
        if self._node.node_id not in self._node.overlay:
            self._subs.clear()
            return
        now = self._node.network.engine.now
        for sub in list(self._subs.values()):
            children = set(self._children(sub))
            for child in [
                c for c in sub.child_partials if c not in children
            ]:
                del sub.child_partials[child]
            parent = self._parent(sub)
            if parent != sub.known_parent:
                if parent is None and sub.lease > 0 and sub.expires_at == 0.0:
                    # We just became this tree's root: start the lease
                    # clock (the old root's deadline died with it).
                    sub.expires_at = now + sub.lease
                self._push(sub, force=True)
            else:
                self._push(sub)
        self.expire_stale(now)

    # ------------------------------------------------------------------
    # lease enforcement (lazy -- no engine timers)
    # ------------------------------------------------------------------

    def expire_stale(self, now: float) -> None:
        """Drop root-side subscriptions whose lease ran out.

        The front-end gets a final ``expired`` STANDING_UPDATE and the
        subtree a cancel fan-down.  Called on every standing message
        receipt and exposed for drivers; never scheduled (the simulation
        kernel's ``run_until_idle`` must terminate).
        """
        node = self._node
        for key, sub in list(self._subs.items()):
            if sub.expires_at <= 0.0 or sub.expires_at > now:
                continue
            if self._parent(sub) is not None:
                sub.expires_at = 0.0  # no longer the root: not our call
                continue
            del self._subs[key]
            node.network.stats.standing_expired += 1
            sub.seq += 1
            node.network.send(
                node.node_id,
                sub.frontend,
                mt.STANDING_UPDATE,
                {
                    "sub_id": sub.sub_id,
                    "pred_key": sub.pred_key,
                    "predicate": sub.predicate,
                    "partial": None,
                    "contributors": 0,
                    "seq": sub.seq,
                    "cost": 2.0,
                    "expired": True,
                },
            )
            self._fan_down(
                sub,
                mt.SUB_CANCEL,
                {"sub_id": sub.sub_id, "predicate": sub.predicate},
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _install(self, payload: dict[str, Any]) -> _Subscription:
        predicate: Predicate = payload["predicate"]
        pred_key = predicate.canonical()
        key = (payload["sub_id"], pred_key)
        sub = self._subs.get(key)
        now = self._node.network.engine.now
        if sub is None:
            query: Query = payload["query"]
            attrs = set(query.predicate.attributes())
            if query.attr != "*":
                attrs.add(query.attr)
            for group in payload["cover"]:
                attrs |= group.attributes()
            sub = _Subscription(
                sub_id=payload["sub_id"],
                pred_key=pred_key,
                predicate=predicate,
                tree_key=self._node.overlay.space.hash_name(
                    group_attribute(predicate)
                ),
                query=query,
                cover=tuple(payload["cover"]),
                lease=payload["lease"],
                frontend=payload["frontend"],
                attrs=frozenset(attrs),
            )
            self._subs[key] = sub
        else:
            # Refresh (re-install sweep / lease change): covers and
            # leases may move; the subtree state is kept.
            sub.cover = tuple(payload["cover"])
            sub.lease = payload["lease"]
            sub.frontend = payload["frontend"]
        sub.known_parent = self._parent(sub)
        if sub.known_parent is None and sub.lease > 0:
            sub.expires_at = now + sub.lease
        return sub

    def _fan_down(
        self, sub: _Subscription, mtype: str, payload: dict[str, Any]
    ) -> None:
        children = self._children(sub)
        if children:
            self._node.network.send_many(
                self._node.node_id, sorted(children), mtype, payload
            )

    def _local_contribution(self, sub: _Subscription) -> tuple[Any, int]:
        """This node's own (partial, contributed) for the standing query,
        with enmeshed OR-dedup: contribute in this tree only if it is the
        lexicographically smallest cover group we satisfy."""
        node = self._node
        partial, contributed = local_answer(
            sub.query, node.node_id, node.attributes
        )
        if not contributed:
            return None, 0
        attrs = node.attributes.data
        designated = min(
            (
                group.canonical()
                for group in sub.cover
                if group.evaluate(attrs)
            ),
            # A node satisfying the query predicate satisfies at least
            # one cover group (the CNF clause property); the fallback
            # only fires on a cover/predicate mismatch mid-replan.
            default=sub.pred_key,
        )
        if designated != sub.pred_key:
            return None, 0
        return partial, 1

    def _subtree(self, sub: _Subscription) -> tuple[Any, int]:
        """Merge our contribution with every live child's partial."""
        partial, contributors = self._local_contribution(sub)
        merge = sub.query.function.merge
        for child_partial, child_count in sub.child_partials.values():
            partial = merge(partial, child_partial)
            contributors += child_count
        return partial, contributors

    def _push(self, sub: _Subscription, force: bool = False) -> None:
        """Recompute the subtree partial and push it toward the root
        (suppressed when unchanged, exactly like sdims continuous)."""
        current = self._subtree(sub)
        parent = self._parent(sub)
        if (
            not force
            and parent == sub.known_parent
            and sub.last_pushed is not None
            and sub.last_pushed == current
        ):
            return
        sub.last_pushed = current
        sub.known_parent = parent
        node = self._node
        partial, contributors = current
        if parent is None:
            # We are the root: fold into a front-end update.
            sub.seq += 1
            node.network.send(
                node.node_id,
                sub.frontend,
                mt.STANDING_UPDATE,
                {
                    "sub_id": sub.sub_id,
                    "pred_key": sub.pred_key,
                    "predicate": sub.predicate,
                    "partial": partial,
                    "contributors": contributors,
                    "seq": sub.seq,
                    # The same 2*np-style estimate a SIZE_RESPONSE would
                    # carry, approximated by live contributor count:
                    # feeds the front-end size cache for standing
                    # replans without a probe round-trip.
                    "cost": 2.0 * max(contributors, 1),
                },
            )
            return
        payload = _install_payload(sub)
        payload["pred_key"] = sub.pred_key
        payload["partial"] = partial
        payload["contributors"] = contributors
        node.network.send(node.node_id, parent, mt.SUB_DELTA, payload)
