"""Overlay membership and prefix routing.

The overlay is the simulation-side stand-in for a deployed FreePastry ring:
it tracks live membership in an :class:`~repro.pastry.idindex.IdIndex`,
answers routing queries, caches the implicit aggregation tree per key, and
notifies listeners (the Moara layer) when membership changes so they can
re-parent per-predicate state (paper Section 7, "Reconfigurations").

Routing semantics (classic Pastry):

1. *Prefix correction* -- from node *n* toward key *k*, hop to a node whose
   shared prefix with *k* is strictly longer than *n*'s.  The hop target is
   a deterministic pseudo-random candidate per (node, slot), modelling
   Pastry's proximity-based table-entry choice (see
   :meth:`repro.pastry.idindex.IdIndex.pseudo_random_with_prefix`).
2. *Numeric (leaf-set) hop* -- when no longer-prefix node exists, hop
   directly to the node ring-closest to *k*, which is the key's *root*.

Each prefix hop fixes at least one digit, so routes terminate in at most
``num_digits + 1`` hops and the hop count grows logarithmically with the
overlay size (verified by tests).
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Optional

from repro.pastry.dht_tree import DHTTree
from repro.pastry.idindex import IdIndex
from repro.pastry.idspace import IdSpace

__all__ = ["Overlay"]

MembershipListener = Callable[[set[int], set[int]], None]


class Overlay:
    """Membership, routing, and implicit-tree services for one DHT ring."""

    def __init__(self, space: Optional[IdSpace] = None, leafset_size: int = 16) -> None:
        self.space = space or IdSpace()
        self.leafset_size = leafset_size
        self.index = IdIndex(self.space)
        self._tree_cache: dict[int, DHTTree] = {}
        #: (key -> (membership version, root)) memo: the query plane asks
        #: for the same handful of group roots on every submit.
        self._root_cache: dict[int, tuple[int, int]] = {}
        self._listeners: list[MembershipListener] = []

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def add_listener(self, listener: MembershipListener) -> None:
        """Register a callback invoked as ``listener(joined, left)``."""
        self._listeners.append(listener)

    def add_node(self, node_id: int) -> None:
        """A node joins the ring."""
        self.index.add(node_id)
        self._membership_changed({node_id}, set())

    def remove_node(self, node_id: int) -> None:
        """A node leaves (or is declared failed by the failure detector)."""
        self.index.remove(node_id)
        self._membership_changed(set(), {node_id})

    def bulk_join(self, node_ids: Iterable[int]) -> None:
        """Join many nodes at once (initial overlay construction)."""
        joined = set()
        for node_id in node_ids:
            self.index.add(node_id)
            joined.add(node_id)
        if joined:
            self._membership_changed(joined, set())

    def generate_ids(self, count: int, seed: int = 0) -> list[int]:
        """Draw ``count`` distinct random IDs (overlay bootstrap helper)."""
        rng = random.Random(seed)
        ids: set[int] = set()
        while len(ids) < count:
            candidate = self.space.random_id(rng)
            if candidate not in ids and candidate not in self.index:
                ids.add(candidate)
        return sorted(ids)

    def _membership_changed(self, joined: set[int], left: set[int]) -> None:
        self._tree_cache.clear()
        for listener in self._listeners:
            listener(joined, left)

    @property
    def node_ids(self) -> list[int]:
        """Sorted list of live node IDs."""
        return self.index.ids

    def __len__(self) -> int:
        return len(self.index)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.index

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def root(self, key: int) -> int:
        """The live node ring-closest to ``key`` (the DHT tree root).

        Memoized per membership version (hot: every query submit and
        probe resolves its group roots through here).
        """
        version = self.index.version
        cached = self._root_cache.get(key)
        if cached is not None and cached[0] == version:
            return cached[1]
        root = self.index.closest_to(key)
        if root is None:
            raise RuntimeError("overlay is empty")
        self._root_cache[key] = (version, root)
        return root

    def next_hop(self, node_id: int, key: int) -> Optional[int]:
        """One routing step from ``node_id`` toward ``key``.

        Returns None when ``node_id`` is the root of ``key``.
        """
        root = self.root(key)
        if node_id == root:
            return None
        prefix = self.space.common_prefix_len(node_id, key)
        candidate = self.index.pseudo_random_with_prefix(
            key, prefix + 1, salt=node_id, exclude=node_id
        )
        if candidate is not None:
            return candidate
        return root

    def route(self, src: int, key: int) -> list[int]:
        """The full routing path ``[src, ..., root(key)]``."""
        path = [src]
        current = src
        for _ in range(self.space.num_digits + 2):
            nxt = self.next_hop(current, key)
            if nxt is None:
                return path
            path.append(nxt)
            current = nxt
        raise RuntimeError(
            f"routing from {src} to key {key} did not converge: {path}"
        )

    # ------------------------------------------------------------------
    # implicit aggregation trees (paper Section 3.2, Figure 3)
    # ------------------------------------------------------------------

    def tree(self, key: int) -> DHTTree:
        """The implicit DHT aggregation tree for ``key`` (cached)."""
        cached = self._tree_cache.get(key)
        if cached is not None and cached.version == self.index.version:
            return cached
        tree = DHTTree.build(self, key)
        self._tree_cache[key] = tree
        return tree

    def parent(self, node_id: int, key: int) -> Optional[int]:
        """The node's parent in the tree for ``key`` (None at the root)."""
        return self.tree(key).parent_of(node_id)

    def children(self, node_id: int, key: int) -> list[int]:
        """The node's children in the tree for ``key``."""
        return self.tree(key).children_of(node_id)
