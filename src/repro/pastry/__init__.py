"""Pastry DHT substrate (reproduction of the FreePastry layer).

Moara is built on a structured overlay: node IDs live in a fixed-size
circular identifier space, routing proceeds by prefix correction (Pastry),
and the aggregation tree for a key is *implicit* in the routing structure:
``parent(n, key) = next_hop(n, key)``, rooted at the node numerically
closest to the key (paper Section 3.2 and Figure 3).

This package implements that substrate from scratch:

* :mod:`repro.pastry.idspace` -- identifier arithmetic (digits, prefixes,
  ring distance, hashing attribute names to group IDs with MD5 as in the
  paper).
* :mod:`repro.pastry.idindex` -- a sorted index over live IDs supporting
  prefix-range and nearest-ID queries; this is the ground truth from which
  routing tables and leaf sets are materialized.
* :mod:`repro.pastry.routing_table` / :mod:`repro.pastry.leafset` --
  per-node Pastry state, materialized for inspection and used by tests.
* :mod:`repro.pastry.overlay` -- membership, routing, and churn callbacks.
* :mod:`repro.pastry.dht_tree` -- the implicit aggregation tree for a key.
"""

from repro.pastry.dht_tree import DHTTree
from repro.pastry.idindex import IdIndex
from repro.pastry.idspace import IdSpace
from repro.pastry.leafset import LeafSet
from repro.pastry.node import PastryNode
from repro.pastry.overlay import Overlay
from repro.pastry.routing_table import RoutingTable

__all__ = [
    "DHTTree",
    "IdIndex",
    "IdSpace",
    "LeafSet",
    "Overlay",
    "PastryNode",
    "RoutingTable",
]
