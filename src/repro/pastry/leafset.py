"""Materialized Pastry leaf set.

The leaf set of a node holds its ``size // 2`` nearest neighbors on each
side of the ring.  Pastry uses it for the final hop of routing (numeric
correction) and for failure repair; Moara additionally relies on the
underlying overlay's repair to re-parent group-tree state after churn
(paper Section 7, "Reconfigurations").
"""

from __future__ import annotations

from typing import Optional

from repro.pastry.idindex import IdIndex
from repro.pastry.idspace import IdSpace

__all__ = ["LeafSet"]


class LeafSet:
    """The leaf set of a single node, built from a membership index."""

    def __init__(
        self,
        space: IdSpace,
        owner: int,
        smaller: list[int],
        larger: list[int],
        size: int = 16,
    ) -> None:
        self.space = space
        self.owner = owner
        self.smaller = smaller  # counterclockwise neighbors, nearest first
        self.larger = larger  # clockwise neighbors, nearest first
        self.size = size

    @classmethod
    def build(cls, index: IdIndex, owner: int, size: int = 16) -> "LeafSet":
        """Construct the leaf set with ``size // 2`` neighbors per side."""
        if size < 2 or size % 2:
            raise ValueError("leaf-set size must be a positive even number")
        half = size // 2
        return cls(
            index.space,
            owner,
            smaller=index.neighbors_counterclockwise(owner, half),
            larger=index.neighbors_clockwise(owner, half),
            size=size,
        )

    def members(self) -> set[int]:
        """All nodes in the leaf set (excluding the owner)."""
        return set(self.smaller) | set(self.larger)

    def covers(self, key: int) -> bool:
        """Whether ``key`` falls inside the leaf-set span.

        When it does, the ring-closest leaf (or the owner) is the root of the
        key and routing finishes in one numeric hop.
        """
        if not self.smaller and not self.larger:
            return True  # singleton overlay: owner is root of everything
        half = self.size // 2
        if (
            len(self.smaller) < half
            or len(self.larger) < half
            or set(self.smaller) & set(self.larger)
        ):
            # The leaf set wraps the whole ring: the overlay has at most
            # `size` nodes, so every key is covered.
            return True
        span_lo = self.smaller[-1] if self.smaller else self.owner
        span_hi = self.larger[-1] if self.larger else self.owner
        # Walk clockwise from span_lo to span_hi; key must lie within.
        width = self.space.clockwise_distance(span_lo, span_hi)
        offset = self.space.clockwise_distance(span_lo, key)
        return offset <= width

    def closest_to(self, key: int) -> Optional[int]:
        """The leaf (or the owner) ring-closest to ``key``."""
        best = self.owner
        best_dist = self.space.ring_distance(self.owner, key)
        for candidate in self.members():
            dist = self.space.ring_distance(candidate, key)
            if (dist, candidate) < (best_dist, best):
                best = candidate
                best_dist = dist
        return best
