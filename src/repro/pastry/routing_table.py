"""Materialized Pastry routing table.

A routing table has ``num_digits`` rows and ``digit_base`` columns.  The
entry at (row *p*, column *d*) is a node whose ID shares exactly the first
*p* digits with the table owner and whose digit *p* equals *d*.  Among
candidates, a deterministic pseudo-random node is chosen per (owner, slot),
modelling Pastry's proximity-based entry selection (proximity is
uncorrelated with the ID space, so independent per-owner choices are the
faithful stand-in).

The overlay routes directly off the :class:`~repro.pastry.idindex.IdIndex`
for speed; the materialized table exists so that tests can verify the
routing decisions equal classic table-based Pastry, and to expose per-node
state for inspection/debugging.
"""

from __future__ import annotations

from typing import Optional

from repro.pastry.idindex import IdIndex
from repro.pastry.idspace import IdSpace

__all__ = ["RoutingTable"]


class RoutingTable:
    """The routing table of a single node, built from a membership index."""

    def __init__(self, space: IdSpace, owner: int) -> None:
        self.space = space
        self.owner = owner
        self.rows: list[list[Optional[int]]] = [
            [None] * space.digit_base for _ in range(space.num_digits)
        ]

    @classmethod
    def build(cls, index: IdIndex, owner: int) -> "RoutingTable":
        """Populate every slot of the table from the full membership."""
        table = cls(index.space, owner)
        space = index.space
        for row in range(space.num_digits):
            own_digit = space.digit(owner, row)
            for col in range(space.digit_base):
                if col == own_digit:
                    continue  # the owner itself covers this slot
                probe = space.with_digit(owner, row, col)
                entry = index.pseudo_random_with_prefix(
                    probe, row + 1, salt=owner, exclude=owner
                )
                table.rows[row][col] = entry
        return table

    def entry(self, row: int, col: int) -> Optional[int]:
        """The node filling slot (row, col), or None if empty."""
        return self.rows[row][col]

    def lookup(self, key: int) -> Optional[int]:
        """Classic Pastry table lookup for ``key``.

        Returns the entry at row = shared-prefix-length, column = next digit
        of the key, or None when the slot is empty (the numeric-routing
        fallback then applies).
        """
        prefix = self.space.common_prefix_len(self.owner, key)
        if prefix == self.space.num_digits:
            return None  # key equals owner
        return self.rows[prefix][self.space.digit(key, prefix)]

    def populated_slots(self) -> int:
        """Number of non-empty slots (used in scaling tests)."""
        return sum(
            1 for row in self.rows for entry in row if entry is not None
        )

    def known_nodes(self) -> set[int]:
        """All distinct nodes referenced by the table."""
        return {
            entry for row in self.rows for entry in row if entry is not None
        }
