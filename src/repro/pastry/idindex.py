"""Sorted index over live node IDs.

The index answers the two queries Pastry routing needs:

* *prefix-range queries* -- "is there a node whose ID starts with these
  digits?" (routing-table lookups), and
* *nearest-ID queries* -- "which live node is numerically closest to this
  key on the ring?" (root determination / the final leaf-set hop).

Both are O(log n) over a sorted list.  The index is the ground truth from
which per-node routing tables and leaf sets are materialized; keeping it
centralized is a simulation convenience and does not change protocol
behaviour (each node's *view* is still only its own table/leaf set).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Iterator, Optional

from repro.pastry.idspace import IdSpace

__all__ = ["IdIndex"]


class IdIndex:
    """A mutable sorted set of node IDs with ring-aware queries."""

    def __init__(self, space: IdSpace, ids: Iterable[int] = ()) -> None:
        self.space = space
        self._ids: list[int] = sorted(set(ids))
        for node_id in self._ids:
            space.validate(node_id)
        self.version = 0

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, node_id: int) -> bool:
        i = bisect.bisect_left(self._ids, node_id)
        return i < len(self._ids) and self._ids[i] == node_id

    def __iter__(self) -> Iterator[int]:
        return iter(self._ids)

    @property
    def ids(self) -> list[int]:
        """A copy of the sorted membership."""
        return list(self._ids)

    def add(self, node_id: int) -> None:
        """Insert a node; raises if already present."""
        self.space.validate(node_id)
        i = bisect.bisect_left(self._ids, node_id)
        if i < len(self._ids) and self._ids[i] == node_id:
            raise ValueError(f"id {node_id} already in index")
        self._ids.insert(i, node_id)
        self.version += 1

    def remove(self, node_id: int) -> None:
        """Delete a node; raises if absent."""
        i = bisect.bisect_left(self._ids, node_id)
        if i >= len(self._ids) or self._ids[i] != node_id:
            raise KeyError(f"id {node_id} not in index")
        del self._ids[i]
        self.version += 1

    def ids_in_range(self, lo: int, hi: int) -> list[int]:
        """All IDs in the half-open interval ``[lo, hi)``."""
        i = bisect.bisect_left(self._ids, lo)
        j = bisect.bisect_left(self._ids, hi)
        return self._ids[i:j]

    def count_in_range(self, lo: int, hi: int) -> int:
        """Number of IDs in ``[lo, hi)`` without materializing them."""
        return bisect.bisect_left(self._ids, hi) - bisect.bisect_left(self._ids, lo)

    def any_with_prefix(
        self, key: int, prefix_len: int, exclude: Optional[int] = None
    ) -> bool:
        """Is any node (other than ``exclude``) sharing ``prefix_len`` digits
        with ``key``?"""
        lo, hi = self.space.prefix_range(key, prefix_len)
        count = self.count_in_range(lo, hi)
        if exclude is not None and lo <= exclude < hi and exclude in self:
            count -= 1
        return count > 0

    def closest_with_prefix(
        self, key: int, prefix_len: int, near: int, exclude: Optional[int] = None
    ) -> Optional[int]:
        """The node sharing ``prefix_len`` digits with ``key`` that is
        ring-closest to ``near`` (ties to the lower ID).

        This models routing-table entry selection: among all candidates for a
        (row, column) slot, Pastry picks the "closest" one.  We use ring
        distance to the table owner as the deterministic proximity metric.
        """
        lo, hi = self.space.prefix_range(key, prefix_len)
        candidates = self.ids_in_range(lo, hi)
        best: Optional[int] = None
        best_dist = None
        for candidate in candidates:
            if candidate == exclude:
                continue
            dist = self.space.ring_distance(candidate, near)
            if best is None or (dist, candidate) < (best_dist, best):
                best = candidate
                best_dist = dist
        return best

    def pseudo_random_with_prefix(
        self, key: int, prefix_len: int, salt: int, exclude: Optional[int] = None
    ) -> Optional[int]:
        """A deterministic pseudo-random node sharing ``prefix_len`` digits
        with ``key``.

        This models Pastry's routing-table entry selection: among all
        candidates for a (row, column) slot, a real deployment picks the
        nearest by *network proximity*, which is uncorrelated with the ID
        space.  Hashing the (salt, slot) pair spreads different nodes'
        choices over the candidate set exactly like independent proximity
        does; a deterministic "closest ID" rule would instead funnel every
        outside node to the same entry and produce unrealistically shallow,
        hub-heavy aggregation trees.
        """
        lo, hi = self.space.prefix_range(key, prefix_len)
        i = bisect.bisect_left(self._ids, lo)
        j = bisect.bisect_left(self._ids, hi)
        count = j - i
        if count == 0:
            return None
        # Stable per (salt, prefix-slot) choice, independent of Python's
        # hash randomization.
        digest = hashlib.md5(
            f"{salt}:{lo}:{prefix_len}".encode("ascii")
        ).digest()
        pick = i + int.from_bytes(digest[:8], "big") % count
        candidate = self._ids[pick]
        if candidate == exclude:
            if count == 1:
                return None
            pick = i + (pick - i + 1) % count
            candidate = self._ids[pick]
        return candidate

    def closest_to(self, key: int, exclude: Optional[int] = None) -> Optional[int]:
        """The live node ring-closest to ``key`` (ties to the lower ID).

        This is the *root* of the DHT tree for ``key`` (paper Section 3.2).
        """
        if not self._ids:
            return None
        ids = self._ids
        i = bisect.bisect_left(ids, key)
        # Candidates: neighbors on both sides, with wraparound.
        candidate_indices = {i % len(ids), (i - 1) % len(ids)}
        if exclude is not None:
            # Widen the candidate window so exclusion cannot starve us.
            candidate_indices |= {(i + 1) % len(ids), (i - 2) % len(ids)}
        best: Optional[int] = None
        best_dist = None
        for j in candidate_indices:
            candidate = ids[j]
            if candidate == exclude:
                continue
            dist = self.space.ring_distance(candidate, key)
            if best is None or (dist, candidate) < (best_dist, best):
                best = candidate
                best_dist = dist
        return best

    def neighbors_clockwise(self, node_id: int, count: int) -> list[int]:
        """Up to ``count`` successors of ``node_id`` on the ring (leaf set)."""
        if not self._ids:
            return []
        ids = self._ids
        n = len(ids)
        i = bisect.bisect_right(ids, node_id)
        result = []
        for k in range(min(count, n - 1 if node_id in self else n)):
            candidate = ids[(i + k) % n]
            if candidate == node_id:
                break
            result.append(candidate)
        return result

    def neighbors_counterclockwise(self, node_id: int, count: int) -> list[int]:
        """Up to ``count`` predecessors of ``node_id`` on the ring."""
        if not self._ids:
            return []
        ids = self._ids
        n = len(ids)
        i = bisect.bisect_left(ids, node_id)
        result = []
        for k in range(1, min(count, n - 1 if node_id in self else n) + 1):
            candidate = ids[(i - k) % n]
            if candidate == node_id:
                break
            result.append(candidate)
        return result
