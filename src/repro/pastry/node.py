"""Per-node Pastry view: routing table + leaf set.

The overlay routes off the global index for speed; :class:`PastryNode`
materializes the classic node-local state (routing table rows, leaf set)
and implements table-based routing.  Tests assert that node-local routing
reaches the same root as index-based routing, i.e., that the fast path is a
faithful shortcut and not a different protocol.
"""

from __future__ import annotations

from typing import Optional

from repro.pastry.idindex import IdIndex
from repro.pastry.idspace import IdSpace
from repro.pastry.leafset import LeafSet
from repro.pastry.routing_table import RoutingTable

__all__ = ["PastryNode"]


class PastryNode:
    """A single Pastry node's local routing state."""

    def __init__(
        self,
        space: IdSpace,
        node_id: int,
        index: IdIndex,
        leafset_size: int = 16,
    ) -> None:
        self.space = space
        self.node_id = space.validate(node_id)
        self._index = index
        self._leafset_size = leafset_size
        self._table: Optional[RoutingTable] = None
        self._leafset: Optional[LeafSet] = None
        self._built_version = -1

    def _ensure_state(self) -> None:
        if self._built_version != self._index.version:
            self.rebuild()

    def rebuild(self) -> None:
        """(Re)materialize the routing table and leaf set from membership.

        In a live deployment this state is assembled by the Pastry join
        protocol (the join message's path supplies routing-table rows, the
        root supplies the leaf set) and repaired piecemeal on failures.  The
        result is the same state; we rebuild from the index for determinism.
        """
        self._table = RoutingTable.build(self._index, self.node_id)
        self._leafset = LeafSet.build(self._index, self.node_id, self._leafset_size)
        self._built_version = self._index.version

    @property
    def routing_table(self) -> RoutingTable:
        """The node's routing table (lazily materialized)."""
        self._ensure_state()
        assert self._table is not None
        return self._table

    @property
    def leafset(self) -> LeafSet:
        """The node's leaf set (lazily materialized)."""
        self._ensure_state()
        assert self._leafset is not None
        return self._leafset

    def local_next_hop(self, key: int) -> Optional[int]:
        """Table-based Pastry routing decision for ``key``.

        Returns None when this node is the root for ``key``.
        """
        self._ensure_state()
        assert self._leafset is not None and self._table is not None
        if self._leafset.covers(key):
            closest = self._leafset.closest_to(key)
            return None if closest == self.node_id else closest
        entry = self._table.lookup(key)
        if entry is not None:
            return entry
        # Rare case: no slot entry; pick any known node strictly closer to
        # the key with at least as long a shared prefix (Pastry's rule).
        prefix = self.space.common_prefix_len(self.node_id, key)
        own_dist = self.space.ring_distance(self.node_id, key)
        best: Optional[int] = None
        best_dist = own_dist
        for candidate in self._table.known_nodes() | self._leafset.members():
            if self.space.common_prefix_len(candidate, key) < prefix:
                continue
            dist = self.space.ring_distance(candidate, key)
            if dist < best_dist:
                best = candidate
                best_dist = dist
        return best
