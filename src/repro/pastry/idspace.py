"""Identifier-space arithmetic for the Pastry overlay.

IDs are integers in ``[0, 2**bits)``, interpreted as a sequence of digits of
``digit_bits`` bits each, most significant digit first.  The paper's
prototype uses FreePastry's 128-bit IDs with hexadecimal digits; we default
to 64-bit IDs with 4-bit digits (collision probability is negligible at the
scales simulated) and support the 3-bit/1-digit configuration of the
paper's Figure 3 for tests.

Group IDs are derived by hashing the group attribute with MD5, exactly as
Section 3.2 describes ("Moara uses MD-5 to hash the group-attribute field").
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

__all__ = ["IdSpace"]


@dataclass(frozen=True)
class IdSpace:
    """Arithmetic helpers over a ``bits``-wide circular ID space."""

    bits: int = 64
    digit_bits: int = 4

    def __post_init__(self) -> None:
        if self.bits <= 0 or self.digit_bits <= 0:
            raise ValueError("bits and digit_bits must be positive")
        if self.bits % self.digit_bits != 0:
            raise ValueError(
                f"bits ({self.bits}) must be a multiple of digit_bits"
                f" ({self.digit_bits})"
            )
        # Memo for hash_name: the same handful of attribute names is hashed
        # on every query submit and tree-state creation (hot path), and the
        # mapping is a pure function of the name.  Not a dataclass field,
        # so eq/hash/repr are unaffected.
        object.__setattr__(self, "_name_cache", {})

    @property
    def size(self) -> int:
        """Number of distinct IDs: ``2**bits``."""
        return 1 << self.bits

    @property
    def num_digits(self) -> int:
        """Digits per ID (= routing-table rows)."""
        return self.bits // self.digit_bits

    @property
    def digit_base(self) -> int:
        """Values per digit (= routing-table columns)."""
        return 1 << self.digit_bits

    def validate(self, node_id: int) -> int:
        """Check an ID is in range, returning it for chaining."""
        if not 0 <= node_id < self.size:
            raise ValueError(f"id {node_id} outside [0, 2**{self.bits})")
        return node_id

    def digit(self, node_id: int, index: int) -> int:
        """The ``index``-th digit (0 = most significant)."""
        if not 0 <= index < self.num_digits:
            raise IndexError(f"digit index {index} out of range")
        shift = self.bits - (index + 1) * self.digit_bits
        return (node_id >> shift) & (self.digit_base - 1)

    def common_prefix_len(self, a: int, b: int) -> int:
        """Number of leading digits shared by ``a`` and ``b``."""
        xor = a ^ b
        if xor == 0:
            return self.num_digits
        # Index of the most significant differing bit, then floor to digits.
        highest_bit = xor.bit_length() - 1
        differing_digit = (self.bits - 1 - highest_bit) // self.digit_bits
        return differing_digit

    def prefix_range(self, node_id: int, prefix_len: int) -> tuple[int, int]:
        """Half-open ID interval ``[lo, hi)`` sharing the first ``prefix_len``
        digits with ``node_id``."""
        if not 0 <= prefix_len <= self.num_digits:
            raise ValueError(f"prefix_len {prefix_len} out of range")
        if prefix_len == 0:
            return 0, self.size
        shift = self.bits - prefix_len * self.digit_bits
        lo = (node_id >> shift) << shift
        return lo, lo + (1 << shift)

    def with_digit(self, node_id: int, index: int, digit: int) -> int:
        """``node_id`` with digit ``index`` replaced by ``digit``."""
        if not 0 <= digit < self.digit_base:
            raise ValueError(f"digit {digit} out of range")
        shift = self.bits - (index + 1) * self.digit_bits
        mask = (self.digit_base - 1) << shift
        return (node_id & ~mask) | (digit << shift)

    def ring_distance(self, a: int, b: int) -> int:
        """Distance on the circular ID space (minimum of both directions)."""
        diff = abs(a - b)
        return min(diff, self.size - diff)

    def clockwise_distance(self, a: int, b: int) -> int:
        """Distance from ``a`` to ``b`` going clockwise (increasing IDs)."""
        return (b - a) % self.size

    def hash_name(self, name: str) -> int:
        """Map an attribute/group name to an ID via MD5 (paper Section 3.2).

        Memoized per instance: query planning and tree-state creation hash
        the same attribute names over and over.
        """
        cached = self._name_cache.get(name)
        if cached is None:
            digest = hashlib.md5(name.encode("utf-8")).digest()
            cached = int.from_bytes(digest, "big") % self.size
            self._name_cache[name] = cached
        return cached

    def random_id(self, rng: random.Random) -> int:
        """A uniformly random ID."""
        return rng.randrange(self.size)

    def format_id(self, node_id: int) -> str:
        """Render an ID as its digit string (hex-like, for debugging)."""
        digits = [self.digit(node_id, i) for i in range(self.num_digits)]
        if self.digit_base <= 10:
            return "".join(str(d) for d in digits)
        return "".join(format(d, "x") for d in digits)
