"""The implicit DHT aggregation tree for a key.

Paper Section 3.2: "A DHT tree contains all the nodes in the system, and is
rooted at a node that maps to the ID of the group" (Figure 3 shows the tree
for an ID with prefix 000).  The tree is the union of the routing paths of
every node toward the key: ``parent(n) = next_hop(n, key)``.

Because the tree is implicit in routing state, the paper charges no
maintenance traffic for it ("global aggregation trees are implicit from the
DHT routing and hence require no separate maintenance overhead"); we follow
the same accounting.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pastry.overlay import Overlay

__all__ = ["DHTTree"]


class DHTTree:
    """A snapshot of the aggregation tree for one key."""

    def __init__(
        self,
        key: int,
        root: int,
        parent: dict[int, Optional[int]],
        version: int,
    ) -> None:
        self.key = key
        self.root = root
        self._parent = parent
        self.version = version
        self._children: dict[int, list[int]] = {}
        for node, par in parent.items():
            if par is not None:
                self._children.setdefault(par, []).append(node)
        for children in self._children.values():
            children.sort()

    @classmethod
    def build(cls, overlay: "Overlay", key: int) -> "DHTTree":
        """Compute parents for every live node via one routing step each."""
        root = overlay.root(key)
        parent: dict[int, Optional[int]] = {}
        for node_id in overlay.index:
            parent[node_id] = None if node_id == root else overlay.next_hop(node_id, key)
        return cls(key, root, parent, overlay.index.version)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def nodes(self) -> list[int]:
        """All nodes in the tree."""
        return list(self._parent)

    def parent_of(self, node_id: int) -> Optional[int]:
        """Parent of ``node_id`` (None at the root)."""
        return self._parent[node_id]

    def children_of(self, node_id: int) -> list[int]:
        """Children of ``node_id`` (sorted for determinism)."""
        return self._children.get(node_id, [])

    def depth_of(self, node_id: int) -> int:
        """Number of hops from ``node_id`` up to the root."""
        depth = 0
        current = node_id
        while True:
            parent = self._parent[current]
            if parent is None:
                return depth
            current = parent
            depth += 1
            if depth > len(self._parent):
                raise RuntimeError("cycle detected in DHT tree")

    def height(self) -> int:
        """Maximum depth over all nodes."""
        return max(self.depth_of(node) for node in self._parent)

    def subtree_nodes(self, node_id: int) -> list[int]:
        """All nodes in the subtree rooted at ``node_id`` (BFS order)."""
        result = []
        queue = deque([node_id])
        while queue:
            current = queue.popleft()
            result.append(current)
            queue.extend(self.children_of(current))
        return result

    def path_to_root(self, node_id: int) -> list[int]:
        """The node's ancestor chain ``[node_id, ..., root]``."""
        path = [node_id]
        current = node_id
        while True:
            parent = self._parent[current]
            if parent is None:
                return path
            path.append(parent)
            current = parent
            if len(path) > len(self._parent):
                raise RuntimeError("cycle detected in DHT tree")
