"""Discrete-event simulation substrate.

The paper evaluates Moara in three environments: the FreePastry simulator
(bandwidth experiments), an Emulab LAN testbed (latency, medium scale), and
PlanetLab (latency, wide area).  This package provides the single substrate
that plays all three roles:

* :mod:`repro.sim.engine` -- a deterministic discrete-event engine.
* :mod:`repro.sim.network` -- a simulated message-passing network with
  per-node send/receive serialization (models fan-out and queueing delays).
* :mod:`repro.sim.latency` -- pluggable latency models: zero-cost (bandwidth
  accounting runs), a LAN model (Emulab), and a clustered WAN model with
  heavy-tailed stragglers (PlanetLab).
* :mod:`repro.sim.stats` -- message/byte accounting used by every bandwidth
  figure in the paper.
* :mod:`repro.sim.failures` -- crash/recovery injection.
"""

from repro.sim.engine import Engine, EventHandle
from repro.sim.latency import (
    LANLatencyModel,
    LatencyModel,
    UniformLatencyModel,
    WANLatencyModel,
    ZeroLatencyModel,
)
from repro.sim.network import Message, Network, Process
from repro.sim.stats import MessageStats, QueryRecord, StatsSnapshot

__all__ = [
    "Engine",
    "EventHandle",
    "LANLatencyModel",
    "LatencyModel",
    "Message",
    "MessageStats",
    "Network",
    "Process",
    "QueryRecord",
    "StatsSnapshot",
    "UniformLatencyModel",
    "WANLatencyModel",
    "ZeroLatencyModel",
]
