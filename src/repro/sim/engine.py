"""Deterministic discrete-event engine.

Every node in the reproduction runs on top of one :class:`Engine`.  Events
are callbacks scheduled at simulated timestamps; ties are broken by a
monotonically increasing sequence number so that runs are fully
deterministic for a given seed and call order.

Hot-path design (this module is the simulator's innermost loop):

* the heap holds ``(time, seq, handle, callback, args)`` tuples, so
  ordering is decided by C-level tuple comparison instead of a Python
  ``__lt__`` per sift step (``seq`` is unique, so comparison never reaches
  the non-comparable elements);
* :meth:`Engine.post_at` schedules *fire-and-forget* events with
  ``handle=None`` -- no :class:`EventHandle` allocation.  The network uses
  it for message deliveries (never cancelled), which is the bulk of all
  events in a query-heavy run;
* :attr:`Engine.pending` is a maintained live-event counter, not an O(n)
  scan of the heap;
* cancellation stays lazy (cancelled entries are skipped at pop time), but
  when cancelled entries outnumber live ones the heap is compacted in one
  O(n) pass, so a workload that schedules-and-cancels (per-query child
  timeouts) cannot grow the queue without bound;
* :meth:`Engine.request_stop` lets an event callback end the current
  :meth:`run` right after it returns -- the wake-up primitive behind the
  cluster's event-driven query completion (no per-event predicate polling).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = ["Engine", "EventHandle"]

#: below this queue size compaction is pointless (the scan costs more than
#: the dead entries ever will).
_COMPACT_MIN_QUEUE = 64


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is lazy: the event stays in the heap but is skipped when it
    reaches the front.  This keeps :meth:`Engine.schedule` and ``cancel`` both
    O(log n) / O(1) (amortized: the engine compacts the heap when cancelled
    entries outnumber live ones).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "engine", "in_heap")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: back-reference so ``cancel`` can keep the live-event counter
        #: exact; None for handles created outside an engine (tests).
        self.engine: Optional["Engine"] = None
        #: True while the entry is physically in the engine's heap.
        self.in_heap = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once,
        and safe to call after the event already fired."""
        if self.cancelled:
            return
        self.cancelled = True
        engine = self.engine
        if engine is not None and self.in_heap:
            engine._note_cancelled()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Engine:
    """A priority-queue discrete-event simulator.

    The engine owns the simulated clock.  Components schedule work with
    :meth:`schedule` / :meth:`schedule_at` (cancellable, returns an
    :class:`EventHandle`) or :meth:`post_at` (fire-and-forget, cheaper),
    and the driver advances time with :meth:`run` / :meth:`run_until_idle`.
    """

    __slots__ = (
        "_queue",
        "_now",
        "_seq",
        "_events_processed",
        "_live",
        "_stop_requested",
        "compactions",
    )

    def __init__(self) -> None:
        #: heap of (time, seq, EventHandle | None, callback, args).
        self._queue: list[tuple] = []
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
        #: number of non-cancelled entries currently in the heap.
        self._live = 0
        #: set by :meth:`request_stop`; ends the current :meth:`run` after
        #: the in-flight callback returns.
        self._stop_requested = False
        #: total heap compactions performed (observability / tests).
        self.compactions = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire at absolute time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, args)
        handle.engine = self
        handle.in_heap = True
        heapq.heappush(self._queue, (time, seq, handle, callback, args))
        self._live += 1
        return handle

    def post_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule a *fire-and-forget* event at absolute time ``time``.

        Like :meth:`schedule_at` but returns no handle and allocates none:
        the event cannot be cancelled.  Message deliveries -- the vast
        majority of all events -- use this path.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (time, seq, None, callback, args))
        self._live += 1

    def request_stop(self) -> None:
        """Make the current :meth:`run` return after the in-flight event.

        The wake-up half of event-driven completion: a completion callback
        (e.g. the cluster's query-waiter registry) calls this instead of
        the driver re-checking a predicate after every event.  A no-op
        when nothing is running; the flag is cleared when :meth:`run`
        starts, so a stale request cannot end a later run early.
        """
        self._stop_requested = True

    # ------------------------------------------------------------------
    # internal bookkeeping
    # ------------------------------------------------------------------

    def _note_cancelled(self) -> None:
        """A live in-heap entry was just cancelled: keep counters exact and
        compact the heap once dead entries outnumber live ones."""
        self._live -= 1
        queued = len(self._queue)
        if queued > _COMPACT_MIN_QUEUE and (queued - self._live) > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (O(n)).

        Heapify re-establishes the heap invariant over the same
        ``(time, seq)`` total order the entries were pushed with, so the
        pop order of live events -- and therefore the simulation -- is
        unchanged.  The list is compacted *in place*: compaction can be
        triggered from inside an event callback (a handler cancelling
        timeouts), while :meth:`run`/:meth:`step` hold a local alias to
        the queue list -- rebinding ``self._queue`` would strand their
        alias on the stale list and lose every event pushed afterwards.
        """
        queue = self._queue
        kept = []
        for entry in queue:
            handle = entry[2]
            if handle is not None and handle.cancelled:
                handle.in_heap = False
            else:
                kept.append(entry)
        queue[:] = kept
        heapq.heapify(queue)
        self.compactions += 1

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if the queue is empty."""
        queue = self._queue
        while queue:
            time, _seq, handle, callback, args = heapq.heappop(queue)
            if handle is not None:
                handle.in_heap = False
                if handle.cancelled:
                    continue
            self._live -= 1
            self._now = time
            self._events_processed += 1
            callback(*args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` passes, or the budget ends.

        ``until`` is an absolute simulated time; events scheduled at exactly
        ``until`` still fire.  ``max_events`` bounds the number of events and
        protects against livelock in tests.  An event callback may call
        :meth:`request_stop` to end the run early (event-driven wake-up).
        """
        self._stop_requested = False
        fired = 0
        queue = self._queue
        pop = heapq.heappop
        if until is None:
            # No time bound: pop directly (no peek) -- the common case for
            # event-driven drives, which end via request_stop instead.
            while queue:
                time, _seq, handle, callback, args = pop(queue)
                if handle is not None:
                    handle.in_heap = False
                    if handle.cancelled:
                        continue
                self._live -= 1
                self._now = time
                self._events_processed += 1
                callback(*args)
                if self._stop_requested:
                    self._stop_requested = False
                    return
                fired += 1
                if max_events is not None and fired >= max_events:
                    return
            return
        while queue:
            entry = queue[0]
            handle = entry[2]
            if handle is not None and handle.cancelled:
                pop(queue)
                handle.in_heap = False
                continue
            time = entry[0]
            if time > until:
                self._now = until
                return
            pop(queue)
            if handle is not None:
                handle.in_heap = False
            self._live -= 1
            self._now = time
            self._events_processed += 1
            entry[3](*entry[4])
            if self._stop_requested:
                self._stop_requested = False
                return
            fired += 1
            if max_events is not None and fired >= max_events:
                return
        if until > self._now:
            self._now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain.  Raises if ``max_events`` is exceeded."""
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise RuntimeError(
                    f"simulation did not go idle within {max_events} events"
                )

    def run_until(self, predicate: Callable[[], bool], max_events: int = 10_000_000) -> bool:
        """Run until ``predicate()`` is true or the queue drains.

        Returns True if the predicate was satisfied.

        .. note:: **Slow path.**  The predicate is re-evaluated after every
           event, which is fine for tests and small drives but O(events x
           predicate cost) overall.  Production-style drivers
           (:meth:`repro.core.cluster.MoaraCluster.query` and friends) use
           the completion-waiter registry plus :meth:`request_stop`
           instead, which costs one callback per *completion* rather than
           one predicate scan per *event*.
        """
        if predicate():
            return True
        fired = 0
        while self.step():
            fired += 1
            if predicate():
                return True
            if fired > max_events:
                raise RuntimeError(
                    f"predicate not satisfied within {max_events} events"
                )
        return predicate()
