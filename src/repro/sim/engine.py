"""Deterministic discrete-event engine.

Every node in the reproduction runs on top of one :class:`Engine`.  Events
are callbacks scheduled at simulated timestamps; ties are broken by a
monotonically increasing sequence number so that runs are fully
deterministic for a given seed and call order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = ["Engine", "EventHandle"]


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is lazy: the event stays in the heap but is skipped when it
    reaches the front.  This keeps :meth:`Engine.schedule` and ``cancel`` both
    O(log n) / O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Engine:
    """A priority-queue discrete-event simulator.

    The engine owns the simulated clock.  Components schedule work with
    :meth:`schedule` (relative delay) or :meth:`schedule_at` (absolute time)
    and the driver advances time with :meth:`run` / :meth:`run_until_idle`.
    """

    def __init__(self) -> None:
        self._queue: list[EventHandle] = []
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire at absolute time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        handle = EventHandle(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, handle)
        return handle

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` passes, or the budget ends.

        ``until`` is an absolute simulated time; events scheduled at exactly
        ``until`` still fire.  ``max_events`` bounds the number of events and
        protects against livelock in tests.
        """
        fired = 0
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and event.time > until:
                self._now = until
                return
            heapq.heappop(self._queue)
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            fired += 1
            if max_events is not None and fired >= max_events:
                return
        if until is not None and until > self._now:
            self._now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain.  Raises if ``max_events`` is exceeded."""
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise RuntimeError(
                    f"simulation did not go idle within {max_events} events"
                )

    def run_until(self, predicate: Callable[[], bool], max_events: int = 10_000_000) -> bool:
        """Run until ``predicate()`` is true or the queue drains.

        Returns True if the predicate was satisfied.
        """
        if predicate():
            return True
        fired = 0
        while self.step():
            fired += 1
            if predicate():
                return True
            if fired > max_events:
                raise RuntimeError(
                    f"predicate not satisfied within {max_events} events"
                )
        return predicate()
