"""Deterministic discrete-event engine with two interchangeable kernels.

Every node in the reproduction runs on top of one :class:`Engine`.  Events
are callbacks scheduled at simulated timestamps; ties are broken by a
monotonically increasing sequence number so that runs are fully
deterministic for a given seed and call order.

Two kernels implement the same contract (selected by the ``kernel``
constructor argument or the ``MOARA_SIM_KERNEL`` environment variable):

* ``wheel`` (the default) -- a calendar-queue hybrid tuned for the
  message-dominated workloads of the query plane.  Fire-and-forget events
  land in one of three structures chosen at post time:

  - a plain FIFO deque for events due *exactly now* (the dominant case in
    zero-latency bandwidth runs, where every delivery happens at the
    current tick): O(1) append, O(1) pop, no comparisons;
  - a ring of time buckets (the timer wheel) for events inside the
    horizon (``num_buckets * bucket_width`` seconds ahead): O(1) append
    into the bucket, one ``sort`` per bucket when the clock reaches it;
  - a binary-heap overflow for far-future events, and for *every*
    cancellable :meth:`schedule_at` event (so lazy cancellation and heap
    compaction live in exactly one place).

  Popping compares the heads of the three structures by ``(time, seq)``,
  which is what makes the wheel's fire order *bit-identical* to the heap
  kernel's: the data structure changes, the total order does not.  Spent
  wheel entries are recycled through free-lists (see below).

* ``heap`` -- the original single binary heap of
  ``(time, seq, tag, callback, payload)`` tuples, kept as the reference
  kernel for differential testing (``MOARA_SIM_KERNEL=heap``).

Hot-path design notes (this module is the simulator's innermost loop):

* heap entries are plain tuples so ordering is decided by C-level tuple
  comparison instead of a Python ``__lt__`` per sift step (``seq`` is
  unique, so comparison never reaches the non-comparable elements);
* :meth:`Engine.post_at` / :meth:`Engine.post1_at` schedule
  *fire-and-forget* events -- no :class:`EventHandle` allocation.  The
  network uses them for message deliveries (never cancelled), which is
  the bulk of all events in a query-heavy run;
* :meth:`Engine.post_batch_at` schedules N same-tick callbacks as *one*
  queue entry that consumes N sequence numbers: a k-way fan-out costs one
  scheduler operation instead of k, while ``events_processed`` still
  advances once per delivered item so burst accounting (the network's
  ``burst_seq``) is unchanged.  A mid-batch stop or budget exhaustion
  re-queues the unfired remainder under its original sequence numbers,
  so observable fire order is independent of batching;
* the wheel kernel recycles its 5-slot list entries (and batch item
  lists) through bounded free-lists, cutting the allocate-and-discard
  churn of one list per event;
* :attr:`Engine.pending` is a maintained live-event counter, not an O(n)
  scan of the queues;
* cancellation stays lazy (cancelled entries are skipped at pop time),
  but when cancelled entries outnumber live ones in the heap it is
  compacted in one O(n) pass, so a workload that schedules-and-cancels
  (per-query child timeouts) cannot grow the queue without bound;
* :meth:`Engine.request_stop` lets an event callback end the current
  :meth:`run` right after it returns -- the wake-up primitive behind the
  cluster's event-driven query completion (no per-event predicate
  polling);
* both kernels share one drive loop (:meth:`Engine._run_core`): the
  bounded (``until``) and unbounded paths are the same code, and a
  kernel only has to provide :meth:`_pop_due`.
"""

from __future__ import annotations

import os
from collections import deque
from heapq import heappop, heappush, heapify
from typing import Any, Callable, Optional

__all__ = ["Engine", "EventHandle", "HeapEngine", "WheelEngine"]

#: below this queue size compaction is pointless (the scan costs more than
#: the dead entries ever will).
_COMPACT_MIN_QUEUE = 64

#: free-list bounds: big enough to absorb a query wave's fan-out churn,
#: small enough that an idle engine pins only a few KB.
_ENTRY_POOL_MAX = 1024
_BATCH_POOL_MAX = 64

_INF = float("inf")


class _Tag:
    """Entry-kind sentinel stored in an entry's third slot (compared by
    identity on the pop path, never by value)."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self._name


#: single-argument fire-and-forget event: fires ``callback(payload)``.
_ONE = _Tag("<one>")
#: batched same-tick events: fires ``callback(item)`` per payload item.
_BATCH = _Tag("<batch>")


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is lazy: the event stays in the heap but is skipped when it
    reaches the front.  This keeps :meth:`Engine.schedule` and ``cancel`` both
    O(log n) / O(1) (amortized: the engine compacts the heap when cancelled
    entries outnumber live ones).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "engine", "in_heap")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: back-reference so ``cancel`` can keep the live-event counter
        #: exact; None for handles created outside an engine (tests).
        self.engine: Optional["Engine"] = None
        #: True while the entry is physically in the engine's heap.
        self.in_heap = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once,
        and safe to call after the event already fired."""
        if self.cancelled:
            return
        self.cancelled = True
        engine = self.engine
        if engine is not None and self.in_heap:
            engine._note_cancelled()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Engine:
    """A discrete-event simulator with pluggable scheduling kernels.

    The engine owns the simulated clock.  Components schedule work with
    :meth:`schedule` / :meth:`schedule_at` (cancellable, returns an
    :class:`EventHandle`), :meth:`post_at` / :meth:`post1_at`
    (fire-and-forget, cheaper), or :meth:`post_batch_at` (N same-tick
    events as one entry), and the driver advances time with :meth:`run` /
    :meth:`run_until_idle`.

    ``Engine(...)`` dispatches to :class:`WheelEngine` (default) or
    :class:`HeapEngine` per the ``kernel`` argument, falling back to the
    ``MOARA_SIM_KERNEL`` environment variable.  Both kernels fire the
    same events in the same ``(time, seq)`` order -- the differential
    suite in ``tests/sim/test_kernel_differential.py`` pins that.
    """

    __slots__ = (
        "_queue",
        "_now",
        "_seq",
        "_events_processed",
        "_live",
        "_dead",
        "_stop_requested",
        "compactions",
        "_pool",
        "_batch_pool",
    )

    #: kernel name ("heap" / "wheel"), overridden by subclasses.
    kernel = "?"
    #: empty stand-ins for the wheel kernel's structures so the shared
    #: drive loop can probe them on any kernel (WheelEngine shadows both
    #: with real slots; on HeapEngine they are always falsy).
    _fifo: Any = ()
    _cur: Any = ()

    def __new__(cls, kernel: Optional[str] = None, **kwargs: Any) -> "Engine":
        if cls is Engine:
            name = kernel or os.environ.get("MOARA_SIM_KERNEL") or "wheel"
            try:
                cls = _KERNELS[name]
            except KeyError:
                raise ValueError(
                    f"unknown simulation kernel {name!r} "
                    f"(valid: {sorted(_KERNELS)})"
                ) from None
        return object.__new__(cls)

    def __init__(self, kernel: Optional[str] = None) -> None:
        #: overflow / cancellable heap of (time, seq, tag, callback,
        #: payload) tuples, where tag is None (args tuple), _ONE (single
        #: arg), _BATCH (item list), or an EventHandle.
        self._queue: list[tuple] = []
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
        #: number of non-cancelled events currently queued (all structures).
        self._live = 0
        #: number of cancelled entries still physically in the heap.
        self._dead = 0
        #: set by :meth:`request_stop`; ends the current :meth:`run` after
        #: the in-flight callback returns.
        self._stop_requested = False
        #: total heap compactions performed (observability / tests).
        self.compactions = 0
        #: free-list of spent 5-slot entry lists (wheel kernel).
        self._pool: list[list] = []
        #: free-list of spent batch item lists (see :meth:`batch_list`).
        self._batch_pool: list[list] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired (batch items count
        individually, so burst accounting is batching-independent)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire at absolute time ``time``.

        Cancellable events always live in the heap (both kernels), so
        lazy cancellation and compaction have exactly one home.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, args)
        handle.engine = self
        handle.in_heap = True
        heappush(self._queue, (time, seq, handle, callback, args))
        self._live += 1
        return handle

    def post_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule a *fire-and-forget* event at absolute time ``time``.

        Like :meth:`schedule_at` but returns no handle and allocates none:
        the event cannot be cancelled.
        """
        raise NotImplementedError  # pragma: no cover - kernel implements

    def post1_at(
        self, time: float, callback: Callable[[Any], None], arg: Any
    ) -> None:
        """:meth:`post_at` specialised to one argument: fires
        ``callback(arg)`` with no args-tuple allocation.  Message
        deliveries -- the vast majority of all events -- use this path.
        """
        raise NotImplementedError  # pragma: no cover - kernel implements

    def post_batch_at(
        self, time: float, callback: Callable[[Any], None], items: list
    ) -> None:
        """Schedule ``callback(item)`` for every item, all at ``time``.

        One queue entry consuming ``len(items)`` sequence numbers; each
        item fires as its own event (``events_processed`` advances per
        item) in list order, exactly as ``len(items)`` consecutive
        :meth:`post1_at` calls would.  The engine takes ownership of
        ``items`` (obtain it from :meth:`batch_list` to recycle).
        """
        raise NotImplementedError  # pragma: no cover - kernel implements

    def batch_list(self) -> list:
        """An empty list for :meth:`post_batch_at`, recycled from the
        batch free-list when available."""
        pool = self._batch_pool
        return pool.pop() if pool else []

    def request_stop(self) -> None:
        """Make the current :meth:`run` return after the in-flight event.

        The wake-up half of event-driven completion: a completion callback
        (e.g. the cluster's query-waiter registry) calls this instead of
        the driver re-checking a predicate after every event.  A no-op
        when nothing is running; the flag is cleared when :meth:`run`
        starts, so a stale request cannot end a later run early.
        """
        self._stop_requested = True

    # ------------------------------------------------------------------
    # internal bookkeeping
    # ------------------------------------------------------------------

    def _note_cancelled(self) -> None:
        """A live in-heap entry was just cancelled: keep counters exact and
        compact the heap once dead entries outnumber live ones *in the
        heap* (wheel structures never hold cancellable entries)."""
        self._live -= 1
        dead = self._dead + 1
        self._dead = dead
        queued = len(self._queue)
        if queued > _COMPACT_MIN_QUEUE and dead > queued - dead:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (O(n)).

        Heapify re-establishes the heap invariant over the same
        ``(time, seq)`` total order the entries were pushed with, so the
        pop order of live events -- and therefore the simulation -- is
        unchanged.  The list is compacted *in place*: compaction can be
        triggered from inside an event callback (a handler cancelling
        timeouts), while the drive loop may hold a local alias to the
        queue list -- rebinding ``self._queue`` would strand their
        alias on the stale list and lose every event pushed afterwards.
        """
        queue = self._queue
        kept = []
        for entry in queue:
            tag = entry[2]
            if type(tag) is EventHandle and tag.cancelled:
                tag.in_heap = False
            else:
                kept.append(entry)
        queue[:] = kept
        heapify(queue)
        self._dead = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # driving (one code path for both kernels and all drive modes)
    # ------------------------------------------------------------------

    def _pop_due(self, limit: float) -> Optional[Any]:
        """Pop and return the next live entry with ``time <= limit``, or
        None (leaving any later entry queued).  Kernel-specific."""
        raise NotImplementedError  # pragma: no cover - kernel implements

    def _requeue_batch_front(
        self, time: float, seq: int, callback: Callable[[Any], None], items: list
    ) -> None:
        """Re-queue the unfired remainder of a batch under its original
        (time, seq) key -- it is, by construction, the globally smallest
        key outstanding.  Kernel-specific."""
        raise NotImplementedError  # pragma: no cover - kernel implements

    def _run_core(self, until: Optional[float], max_events: Optional[int]) -> int:
        """The single drive loop.  Fires due events in ``(time, seq)``
        order until the queues drain (or pass ``until``), the event budget
        is exhausted, or a callback requests a stop.  Returns the number
        of events fired."""
        limit = _INF if until is None else until
        # Old-contract quirk kept: a non-positive budget still fires one
        # event (the check runs after each event).
        budget = -1 if max_events is None else (max_events if max_events > 0 else 1)
        fired = 0
        pop_due = self._pop_due
        pool = self._pool
        # The wheel kernel's same-tick FIFO (identity is stable for the
        # engine's lifetime; () on the heap kernel).  When it alone holds
        # entries, its head is the global minimum -- the current-slot heap
        # and overflow heap are empty, and ring buckets hold strictly
        # later times -- so the three-way compare in _pop_due is skipped.
        fifo = self._fifo
        while True:
            if fifo and not self._cur and not self._queue:
                head = fifo[0]
                entry = fifo.popleft() if head[0] <= limit else None
            else:
                entry = pop_due(limit)
            if entry is None:
                if until is not None and until > self._now:
                    self._now = until
                return fired
            tag = entry[2]
            self._now = entry[0]
            if tag is _BATCH:
                callback = entry[3]
                items = entry[4]
                n = len(items)
                i = 0
                while i < n:
                    item = items[i]
                    i += 1
                    self._live -= 1
                    self._events_processed += 1
                    callback(item)
                    fired += 1
                    if self._stop_requested or fired == budget:
                        if i < n:
                            self._requeue_batch_front(
                                entry[0], entry[1] + i, callback, items[i:]
                            )
                        self._stop_requested = False
                        return fired
                items.clear()
                batch_pool = self._batch_pool
                if len(batch_pool) < _BATCH_POOL_MAX:
                    batch_pool.append(items)
            else:
                self._live -= 1
                self._events_processed += 1
                if tag is _ONE:
                    entry[3](entry[4])
                else:
                    if tag is not None:
                        tag.in_heap = False  # EventHandle (dead ones were
                        # already skipped by _pop_due)
                    entry[3](*entry[4])
                fired += 1
                if self._stop_requested or fired == budget:
                    self._stop_requested = False
                    return fired
            # Recycle spent entry lists (tuples come from the overflow
            # heap and are not pooled).  Slots are NOT cleared: a pooled
            # entry may pin its last callback/payload until reuse, which
            # is bounded by the pool size and saves two stores per event.
            if type(entry) is list and len(pool) < _ENTRY_POOL_MAX:
                pool.append(entry)

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if nothing is queued."""
        return self._run_core(None, 1) > 0

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Run events until the queue drains, ``until`` passes, or the budget ends.

        ``until`` is an absolute simulated time; events scheduled at exactly
        ``until`` still fire, and an idle engine's clock still advances to
        ``until``.  ``max_events`` bounds the number of events and protects
        against livelock in tests.  An event callback may call
        :meth:`request_stop` to end the run early (event-driven wake-up).
        """
        self._stop_requested = False
        self._run_core(until, max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain.  Raises if ``max_events`` is exceeded."""
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise RuntimeError(
                    f"simulation did not go idle within {max_events} events"
                )

    def run_until(
        self, predicate: Callable[[], bool], max_events: int = 10_000_000
    ) -> bool:
        """Run until ``predicate()`` is true or the queue drains.

        Returns True if the predicate was satisfied.

        .. note:: **Slow path.**  The predicate is re-evaluated after every
           event, which is fine for tests and small drives but O(events x
           predicate cost) overall.  Production-style drivers
           (:meth:`repro.core.cluster.MoaraCluster.query` and friends) use
           the completion-waiter registry plus :meth:`request_stop`
           instead, which costs one callback per *completion* rather than
           one predicate scan per *event*.
        """
        if predicate():
            return True
        fired = 0
        while self.step():
            fired += 1
            if predicate():
                return True
            if fired > max_events:
                raise RuntimeError(
                    f"predicate not satisfied within {max_events} events"
                )
        return predicate()


class HeapEngine(Engine):
    """The reference kernel: one binary heap of plain tuples.

    Retained behind ``MOARA_SIM_KERNEL=heap`` so the wheel kernel can be
    differentially tested against it -- both kernels must fire the same
    events in the same ``(time, seq)`` order.
    """

    __slots__ = ()

    kernel = "heap"

    def post_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> None:
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (time, seq, None, callback, args))
        self._live += 1

    def post1_at(
        self, time: float, callback: Callable[[Any], None], arg: Any
    ) -> None:
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (time, seq, _ONE, callback, arg))
        self._live += 1

    def post_batch_at(
        self, time: float, callback: Callable[[Any], None], items: list
    ) -> None:
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        n = len(items)
        if n == 0:
            return
        seq = self._seq
        self._seq = seq + n
        heappush(self._queue, (time, seq, _BATCH, callback, items))
        self._live += n

    def _requeue_batch_front(
        self, time: float, seq: int, callback: Callable[[Any], None], items: list
    ) -> None:
        heappush(self._queue, (time, seq, _BATCH, callback, items))

    def _pop_due(self, limit: float) -> Optional[tuple]:
        queue = self._queue
        while queue:
            entry = queue[0]
            tag = entry[2]
            if type(tag) is EventHandle and tag.cancelled:
                heappop(queue)
                tag.in_heap = False
                self._dead -= 1
                continue
            if entry[0] > limit:
                return None
            return heappop(queue)
        return None


class WheelEngine(Engine):
    """The calendar-queue kernel (default).

    Three structures, compared by head ``(time, seq)`` at pop time:

    * ``_fifo`` -- events posted for *exactly now* (O(1) both ends).  The
      clock cannot pass a FIFO entry (it always compares smallest-or-tied
      against the other heads), so entries never go stale.
    * ``_ring[slot(t) % num_buckets]`` -- events inside the wheel horizon.
      A bucket is sorted once when the cursor reaches it and becomes the
      *current-slot heap* ``_cur`` (a sorted list satisfies the heap
      invariant, so later same-slot posts can ``heappush`` into it).
      Events posted behind the cursor land directly in ``_cur``.
    * ``_queue`` -- the shared overflow heap: far-future events and every
      cancellable :meth:`schedule_at` entry.

    Ring entries always live *ahead* of the cursor (inserts behind it go
    to ``_cur``), and a bucket is emptied wholesale when visited, so a
    physical bucket never mixes entries from different wheel wraps.
    """

    __slots__ = (
        "_fifo",
        "_cur",
        "_ring",
        "_cursor",
        "_wheel_count",
        "_width",
        "_inv_width",
        "_mask",
        "_horizon_t",
    )

    kernel = "wheel"

    def __init__(
        self,
        kernel: Optional[str] = None,
        bucket_width: float = 0.001,
        num_buckets: int = 2048,
    ) -> None:
        super().__init__()
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        if num_buckets < 2:
            raise ValueError(f"need at least 2 buckets, got {num_buckets}")
        size = 1
        while size < num_buckets:
            size <<= 1
        #: events due exactly at the current clock (list entries).
        self._fifo: deque[list] = deque()
        #: current-slot heap (list entries, heap-ordered by (time, seq)).
        self._cur: list[list] = []
        self._ring: list[list[list]] = [[] for _ in range(size)]
        self._cursor = 0
        #: entries currently in ring buckets (excludes _fifo/_cur/_queue).
        self._wheel_count = 0
        self._width = bucket_width
        self._inv_width = 1.0 / bucket_width
        self._mask = size - 1
        #: absolute time beyond which posts overflow to the heap.
        self._horizon_t = size * bucket_width

    def post_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> None:
        now = self._now
        if time < now:
            raise ValueError(f"cannot schedule in the past: {time} < now {now}")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        if time == now:
            pool = self._pool
            if pool:
                entry = pool.pop()
                entry[0] = time
                entry[1] = seq
                entry[2] = None
                entry[3] = callback
                entry[4] = args
            else:
                entry = [time, seq, None, callback, args]
            self._fifo.append(entry)
            return
        self._wheel_insert(time, [time, seq, None, callback, args])

    def post1_at(
        self, time: float, callback: Callable[[Any], None], arg: Any
    ) -> None:
        now = self._now
        if time < now:
            raise ValueError(f"cannot schedule in the past: {time} < now {now}")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        if time == now:
            pool = self._pool
            if pool:
                entry = pool.pop()
                entry[0] = time
                entry[1] = seq
                entry[2] = _ONE
                entry[3] = callback
                entry[4] = arg
            else:
                entry = [time, seq, _ONE, callback, arg]
            self._fifo.append(entry)
            return
        self._wheel_insert(time, [time, seq, _ONE, callback, arg])

    def post_batch_at(
        self, time: float, callback: Callable[[Any], None], items: list
    ) -> None:
        now = self._now
        if time < now:
            raise ValueError(f"cannot schedule in the past: {time} < now {now}")
        n = len(items)
        if n == 0:
            return
        seq = self._seq
        self._seq = seq + n
        self._live += n
        if time == now:
            pool = self._pool
            if pool:
                entry = pool.pop()
                entry[0] = time
                entry[1] = seq
                entry[2] = _BATCH
                entry[3] = callback
                entry[4] = items
            else:
                entry = [time, seq, _BATCH, callback, items]
            self._fifo.append(entry)
            return
        self._wheel_insert(time, [time, seq, _BATCH, callback, items])

    def _requeue_batch_front(
        self, time: float, seq: int, callback: Callable[[Any], None], items: list
    ) -> None:
        # time == self._now (the batch was firing), so the FIFO front is
        # the right home; its seq precedes every other queued same-time
        # entry because batch sequence numbers are contiguous.
        self._fifo.appendleft([time, seq, _BATCH, callback, items])

    # ------------------------------------------------------------------
    # wheel internals
    # ------------------------------------------------------------------

    def _wheel_insert(self, time: float, entry: list) -> None:
        """Route a future-time entry to the current-slot heap, a ring
        bucket, or the overflow heap."""
        if time >= self._horizon_t and not self._wheel_count and not self._cur:
            # The wheel is empty: re-anchor the cursor at the clock so the
            # horizon tracks simulated time even after long idle jumps.
            cursor = int(self._now * self._inv_width)
            self._cursor = cursor
            self._horizon_t = (cursor + self._mask + 1) * self._width
        if time < self._horizon_t:
            slot = int(time * self._inv_width)
            if slot <= self._cursor:
                heappush(self._cur, entry)
            else:
                self._ring[slot & self._mask].append(entry)
                self._wheel_count += 1
            return
        # Far future: the overflow heap holds tuples only (it is shared
        # with cancellable entries; mixed list/tuple keys don't compare).
        heappush(self._queue, (entry[0], entry[1], entry[2], entry[3], entry[4]))

    def _advance_wheel(self) -> None:
        """Collect the next non-empty ring bucket into the (empty)
        current-slot heap.  Only called while the ring holds entries, so
        the scan terminates within one wrap."""
        ring = self._ring
        mask = self._mask
        cursor = self._cursor
        while True:
            cursor += 1
            bucket = ring[cursor & mask]
            if bucket:
                break
        bucket.sort()
        # Hand the bucket over as the new current-slot heap (a sorted list
        # is a valid heap) and recycle the drained old one as the bucket.
        ring[cursor & mask] = self._cur
        self._cur = bucket
        self._wheel_count -= len(bucket)
        self._cursor = cursor
        self._horizon_t = (cursor + mask + 1) * self._width

    def _pop_due(self, limit: float) -> Optional[Any]:
        fifo = self._fifo
        cur = self._cur
        if not cur and self._wheel_count:
            self._advance_wheel()
            cur = self._cur
        queue = self._queue
        while queue:
            tag = queue[0][2]
            if type(tag) is EventHandle and tag.cancelled:
                heappop(queue)
                tag.in_heap = False
                self._dead -= 1
                continue
            break
        if fifo:
            best = fifo[0]
            src = 1
        else:
            best = None
            src = 0
        if cur:
            head = cur[0]
            if (
                best is None
                or head[0] < best[0]
                or (head[0] == best[0] and head[1] < best[1])
            ):
                best = head
                src = 2
        if queue:
            head = queue[0]
            if (
                best is None
                or head[0] < best[0]
                or (head[0] == best[0] and head[1] < best[1])
            ):
                best = head
                src = 3
        if best is None or best[0] > limit:
            return None
        if src == 1:
            return fifo.popleft()
        if src == 2:
            return heappop(cur)
        return heappop(queue)


_KERNELS: dict[str, type] = {"heap": HeapEngine, "wheel": WheelEngine}
