"""Latency models for the three evaluation environments.

The paper measures bandwidth in the FreePastry simulator (latency is
irrelevant there), and latency on Emulab (a 100 Mbps LAN hosting 500 Moara
instances on 50 machines) and PlanetLab (200 wide-area nodes).  Because
neither testbed is available, each is replaced by a latency model whose
parameters are documented in DESIGN.md:

* :class:`ZeroLatencyModel` -- messages are free and instantaneous; used for
  the pure bandwidth experiments (Figs. 9-11).
* :class:`LANLatencyModel` -- small wire delay plus per-message service time.
  The service time models the 10-instances-per-host queueing that dominates
  the paper's Emulab latencies; fan-out at a node serializes sends.
* :class:`WANLatencyModel` -- nodes live in geographic clusters with
  intra/inter-cluster RTTs, and a configurable fraction of *straggler* nodes
  have heavy per-message service times.  Stragglers are what give PlanetLab
  its multi-second tails (Figs. 14-16).

All models are deterministic for a given seed: per-pair latencies are drawn
once and cached.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional

#: shared per-pair delay memos, keyed by (low, high, seed) -- see
#: :class:`UniformLatencyModel`.  Bounded in practice by the number of
#: distinct model parameterizations in one process (a handful).
_UNIFORM_PAIR_CACHES: dict[tuple, dict[tuple[int, int], float]] = {}

__all__ = [
    "LatencyModel",
    "ZeroLatencyModel",
    "UniformLatencyModel",
    "LANLatencyModel",
    "WANLatencyModel",
]


class LatencyModel(ABC):
    """Strategy interface consumed by :class:`repro.sim.network.Network`."""

    #: when a model's send/receive service time is the same for every node,
    #: it publishes the value here and the network skips the per-message
    #: method call (hot path).  ``None`` (the safe default) means "call
    #: the method every time".
    constant_send_service: Optional[float] = None
    constant_receive_service: Optional[float] = None
    #: models that memoize per-pair wire delays expose the memo dict
    #: (symmetric ``(min, max)`` id key -> delay) so the network can probe
    #: it inline; a miss (or no dict) falls back to :meth:`wire_delay`.
    pair_delay_cache: Optional[dict] = None
    #: the send-time fused-delivery decision: models whose receive-side
    #: service is a published constant may opt in, letting the network
    #: compute the receiver-serialized ready time *at send time* and
    #: schedule one fused delivery event instead of an arrive+deliver
    #: pair.  Opt-in (False default) because fusing serializes the
    #: receiver in *send* order rather than *arrival* order, and models
    #: with per-message randomness (WAN stragglers) must keep drawing
    #: their service times in arrival order to stay seed-stable.
    fuse_delivery: bool = False

    @abstractmethod
    def wire_delay(self, src: int, dst: int) -> float:
        """One-way propagation delay in seconds from ``src`` to ``dst``."""

    def send_service_time(self, node: int) -> float:
        """Time ``node`` spends putting one message on the wire."""
        return 0.0

    def receive_service_time(self, node: int) -> float:
        """Time ``node`` spends ingesting one message before handling it."""
        return 0.0

    def rtt(self, a: int, b: int) -> float:
        """Round-trip wire time between two nodes (no service time)."""
        return self.wire_delay(a, b) + self.wire_delay(b, a)


class ZeroLatencyModel(LatencyModel):
    """All messages are free; used for bandwidth-only simulations."""

    constant_send_service = 0.0
    constant_receive_service = 0.0
    fuse_delivery = True

    def wire_delay(self, src: int, dst: int) -> float:
        return 0.0


class UniformLatencyModel(LatencyModel):
    """Per-pair one-way delays drawn uniformly from ``[low, high]``.

    Delays are symmetric and stable across calls, so repeated messages
    between the same pair observe the same link.
    """

    constant_send_service = 0.0
    constant_receive_service = 0.0
    fuse_delivery = True

    def __init__(self, low: float, high: float, seed: int = 0) -> None:
        if low < 0 or high < low:
            raise ValueError(f"invalid latency range [{low}, {high}]")
        self._low = low
        self._high = high
        self._seed = seed
        # Per-pair delays are a pure function of (low, high, seed, pair),
        # so identically-parameterized models share one memo: the second
        # cluster in an A/B benchmark (and every fixture re-build in a
        # test run) reuses the pairs the first one already drew instead
        # of re-seeding a Mersenne Twister per pair.
        self._cache = _UNIFORM_PAIR_CACHES.setdefault((low, high, seed), {})
        self.pair_delay_cache = self._cache
        # One reusable generator, re-seeded per pair miss: ``Random(x)``
        # is exactly ``seed(x)`` on a fresh instance, so the drawn delays
        # are identical to a per-pair instance while the allocation
        # disappears.
        self._pair_rng = random.Random()

    def wire_delay(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        key = (src, dst) if src <= dst else (dst, src)
        delay = self._cache.get(key)
        if delay is None:
            rng = self._pair_rng
            # String seeds hash deterministically across interpreter runs.
            rng.seed(f"{self._seed}:{key[0]}:{key[1]}")
            delay = rng.uniform(self._low, self._high)
            self._cache[key] = delay
        return delay


class LANLatencyModel(LatencyModel):
    """Emulab stand-in: sub-millisecond wire, service time dominates.

    ``service_time`` is the per-message processing/serialization cost at a
    node.  Sending a 16-way fan-out therefore takes 16x service_time at the
    sender, which reproduces the fan-out-dominated latencies the paper sees
    with 10 Moara instances per Emulab machine.
    """

    def __init__(
        self,
        wire_low: float = 0.0002,
        wire_high: float = 0.001,
        service_time: float = 0.002,
        seed: int = 0,
    ) -> None:
        self._wire = UniformLatencyModel(wire_low, wire_high, seed=seed)
        self._service_time = service_time
        # Shadow the method with the inner model's bound method: one call
        # instead of two on the per-message hot path.
        self.wire_delay = self._wire.wire_delay  # type: ignore[method-assign]
        # Node-independent service times, published for the network's
        # constant fast path.
        self.constant_send_service = service_time
        self.constant_receive_service = service_time / 2
        self.pair_delay_cache = self._wire.pair_delay_cache
        # Deterministic constant receive service: the ready time is
        # computable at send time, so arrive+deliver fuse into one event.
        self.fuse_delivery = True

    def wire_delay(self, src: int, dst: int) -> float:
        return self._wire.wire_delay(src, dst)

    def send_service_time(self, node: int) -> float:
        return self._service_time

    def receive_service_time(self, node: int) -> float:
        return self._service_time / 2


class WANLatencyModel(LatencyModel):
    """PlanetLab stand-in: clustered RTTs plus heavy-tailed stragglers.

    Nodes are hashed into ``num_clusters`` "continents".  Intra-cluster
    one-way delays are drawn from ``intra``, inter-cluster from ``inter``.
    A ``straggler_fraction`` of nodes is overloaded: each message they
    process costs ``straggler_service`` seconds drawn from the given range,
    which produces the multi-second completion tails of Figs. 14-16.
    """

    def __init__(
        self,
        nodes: list[int],
        num_clusters: int = 4,
        intra: tuple[float, float] = (0.005, 0.02),
        inter: tuple[float, float] = (0.04, 0.15),
        straggler_fraction: float = 0.05,
        straggler_service: tuple[float, float] = (0.2, 1.2),
        base_service: float = 0.0005,
        jitter: tuple[float, float] = (0.3, 2.5),
        client_service: float = 0.01,
        seed: int = 0,
    ) -> None:
        if not 0 <= straggler_fraction <= 1:
            raise ValueError("straggler_fraction must be in [0, 1]")
        self._intra = intra
        self._inter = inter
        self._base_service = base_service
        self._jitter = jitter
        self._client_service = client_service
        self._seed = seed
        self._cache: dict[tuple[int, int], float] = {}
        self.pair_delay_cache = self._cache
        rng = random.Random(seed)
        self._cluster = {node: rng.randrange(num_clusters) for node in nodes}
        shuffled = sorted(nodes)
        rng.shuffle(shuffled)
        num_stragglers = int(round(straggler_fraction * len(nodes)))
        self._straggler_service: dict[int, float] = {}
        for node in shuffled[:num_stragglers]:
            self._straggler_service[node] = rng.uniform(*straggler_service)
        # Per-message load variability: straggler service times fluctuate
        # (overload comes and goes), which is what spreads PlanetLab's
        # completion-time CDF.  Drawn from a private stream so runs stay
        # deterministic.
        self._message_rng = random.Random(f"wan-jitter-{seed}")

    @property
    def stragglers(self) -> set[int]:
        """Node ids that were designated as overloaded."""
        return set(self._straggler_service)

    def cluster_of(self, node: int) -> int:
        """The cluster ("continent") a node was assigned to."""
        return self._cluster[node]

    def wire_delay(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        key = (src, dst) if src <= dst else (dst, src)
        delay = self._cache.get(key)
        if delay is None:
            rng = random.Random(f"{self._seed}:{key[0]}:{key[1]}")
            if self._cluster.get(src) == self._cluster.get(dst):
                delay = rng.uniform(*self._intra)
            else:
                delay = rng.uniform(*self._inter)
            self._cache[key] = delay
        return delay

    def _service(self, node: int) -> float:
        if node < 0:
            # Client machines (front-ends) sit behind a single access link:
            # each message they send or ingest costs `client_service`.
            # This is the incast penalty that makes a centralized
            # aggregator's completion lag a tree that delivers one answer.
            return self._client_service
        base = self._straggler_service.get(node)
        if base is None:
            return self._base_service
        return base * self._message_rng.uniform(*self._jitter)

    def send_service_time(self, node: int) -> float:
        return self._service(node)

    def receive_service_time(self, node: int) -> float:
        return self._service(node)
