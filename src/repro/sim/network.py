"""Simulated message-passing network.

The network delivers :class:`Message` objects between registered
:class:`Process` instances, charging wire delay and per-node service time
according to the configured :class:`~repro.sim.latency.LatencyModel`, and
recording every send in :class:`~repro.sim.stats.MessageStats`.

Queueing model: a node serializes its sends (a k-way fan-out costs k send
service times at the sender) and serializes the ingestion of arrivals.  This
is what lets the LAN/WAN models reproduce the fan-out- and straggler-
dominated latencies of the paper's Emulab and PlanetLab experiments.

Byte accounting is lazy: a :class:`Message` no longer walks its payload at
construction.  ``message.size`` is computed (and cached) on first access,
and the network only touches it when its :class:`MessageStats` runs with
``detailed_bytes=True`` -- the default counts-only mode skips payload
walks entirely, which is what the paper's message-count metrics need.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Protocol, runtime_checkable

from repro.sim.engine import _BATCH, _ONE, Engine
from repro.sim.latency import LatencyModel, ZeroLatencyModel
from repro.sim.stats import MessageStats

__all__ = [
    "FrontendTransport",
    "Message",
    "Network",
    "Process",
    "estimate_size",
]

_BASE_HEADER_BYTES = 40  # rough IP+UDP+framing overhead per message

#: bound ``object.__new__`` used by the network's inlined Message
#: construction (skips the ``__init__`` call frame on the hot path).
_new_message = object.__new__


def estimate_size(value: Any) -> int:
    """Rough serialized size in bytes of a payload value.

    Used only for byte accounting; the paper reports message counts, so this
    is informational.
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, dict):
        return sum(estimate_size(k) + estimate_size(v) for k, v in value.items()) + 4
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(estimate_size(item) for item in value) + 4
    # Fall back to the repr for unusual payloads (e.g., partial aggregates).
    return len(repr(value))


@runtime_checkable
class Process(Protocol):
    """Anything that can be attached to the network."""

    node_id: int

    def handle_message(self, message: "Message") -> None:
        """Process one delivered message."""


@runtime_checkable
class FrontendTransport(Protocol):
    """The transport seam the query plane's :class:`~repro.core.frontend.
    Frontend` is written against.

    This protocol is the *entire* surface a front-end needs from the
    world, which is what lets the simulated plane (this module's
    :class:`Network`) and the deployed asyncio plane
    (:class:`repro.serve.transport.RemoteNetwork` /
    :class:`repro.serve.transport.LocalLoopback`) share the
    planner/cache/router code verbatim:

    * :meth:`attach` / :meth:`send` — register the front-end for inbound
      :class:`Message` delivery and emit wire messages toward tree roots;
    * :attr:`stats` — the :class:`~repro.sim.stats.MessageStats` ledger
      every send and query completion is recorded in;
    * :attr:`now` — the transport's clock (simulated seconds on the
      engine, monotonic wall seconds in a deployed front-end);
    * :attr:`burst_seq` — a counter that advances whenever an inbound
      event is processed.  Probe/sub-query joins are only legal within
      one ``burst_seq`` value ("same synchronous burst"), which is the
      rule that stops a lost response from poisoning later queries.
    """

    stats: MessageStats

    def attach(self, process: Process) -> None: ...

    def send(
        self,
        src: int,
        dst: int,
        mtype: str,
        payload: Optional[dict[str, Any]] = None,
    ) -> Any: ...

    @property
    def now(self) -> float: ...

    @property
    def burst_seq(self) -> int: ...


class Message:
    """A single network message.

    ``size`` is computed lazily from the payload on first access and cached
    (pass an explicit non-zero ``size`` to pin it).  Constructing a message
    therefore costs no payload walk -- the simulator's hottest allocation
    site stays O(1).
    """

    __slots__ = ("mtype", "src", "dst", "payload", "sent_at", "_size")

    def __init__(
        self,
        mtype: str,
        src: int,
        dst: int,
        payload: Optional[dict[str, Any]] = None,
        size: int = 0,
        sent_at: float = 0.0,
    ) -> None:
        self.mtype = mtype
        self.src = src
        self.dst = dst
        self.payload = {} if payload is None else payload
        self.sent_at = sent_at
        self._size: Optional[int] = size if size else None

    @property
    def size(self) -> int:
        """Estimated wire size in bytes (header + payload), computed lazily."""
        size = self._size
        if size is None:
            size = _BASE_HEADER_BYTES + estimate_size(self.payload)
            self._size = size
        return size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.mtype!r}, {self.src}->{self.dst}, "
            f"payload={self.payload!r}, sent_at={self.sent_at})"
        )


class Network:
    """Delivers messages between processes over a latency model."""

    def __init__(
        self,
        engine: Engine,
        latency_model: Optional[LatencyModel] = None,
        stats: Optional[MessageStats] = None,
    ) -> None:
        self.engine = engine
        self.latency_model = latency_model or ZeroLatencyModel()
        self.stats = stats or MessageStats()
        # Hot-path bindings to the stats' counter objects (their identity
        # survives MessageStats.reset, which clears them in place): saves
        # one attribute hop per counter per send.
        stats_obj = self.stats
        self._by_type = stats_obj.by_type
        self._sent_by_node = stats_obj.sent_by_node
        self._received_by_node = stats_obj.received_by_node
        self._per_query = stats_obj.per_query
        self._closed_tags = stats_obj._closed_tags
        self._processes: dict[int, Process] = {}
        self._crashed: set[int] = set()
        self._sender_free: dict[int, float] = {}
        self._receiver_free: dict[int, float] = {}
        #: the delivery callback bound ONCE: ``self._deliver`` creates a
        #: fresh bound-method object per access, and it is scheduled once
        #: per message.
        self._deliver_cb = self._deliver
        #: wheel kernel detected: the zero-latency fast path may append
        #: pooled entries straight onto the engine's same-tick FIFO
        #: (kept in sync with Engine.post1_at / post_batch_at).
        self._wheel = engine.kernel == "wheel"
        self._fast_path = isinstance(self.latency_model, ZeroLatencyModel)
        self._const_send_service = self.latency_model.constant_send_service
        self._const_receive_service = self.latency_model.constant_receive_service
        self._pair_delay_cache = self.latency_model.pair_delay_cache
        self._fused = bool(
            self.latency_model.fuse_delivery
            and self._const_receive_service is not None
        )

    @property
    def now(self) -> float:
        """The transport clock (:class:`FrontendTransport` seam)."""
        return self.engine._now

    @property
    def burst_seq(self) -> int:
        """Synchronous-burst counter (:class:`FrontendTransport` seam):
        the engine's processed-event count, which only advances between
        bursts of same-tick submissions."""
        return self.engine.events_processed

    def set_latency_model(self, model: LatencyModel) -> None:
        """Swap the latency model (e.g., after node ids are known)."""
        self.latency_model = model
        self._fast_path = isinstance(model, ZeroLatencyModel)
        # Models with node-independent service times publish them as
        # constants so the per-message path skips two method calls.
        self._const_send_service = model.constant_send_service
        self._const_receive_service = model.constant_receive_service
        self._pair_delay_cache = model.pair_delay_cache
        # Models with a deterministic constant receive service opt into
        # fused delivery: the receiver-serialized ready time is computed
        # at send time and the arrive+deliver event pair collapses to one.
        self._fused = bool(
            model.fuse_delivery and self._const_receive_service is not None
        )

    def attach(self, process: Process) -> None:
        """Register a process under its ``node_id``."""
        node_id = process.node_id
        if node_id in self._processes:
            raise ValueError(f"node {node_id} already attached")
        self._processes[node_id] = process
        self._crashed.discard(node_id)

    def detach(self, node_id: int) -> None:
        """Remove a process entirely (graceful leave)."""
        self._processes.pop(node_id, None)
        self._crashed.discard(node_id)

    def crash(self, node_id: int) -> None:
        """Mark a node as failed; its in-flight and future messages drop."""
        if node_id in self._processes:
            self._crashed.add(node_id)

    def recover(self, node_id: int) -> None:
        """Bring a crashed node back."""
        self._crashed.discard(node_id)

    def is_alive(self, node_id: int) -> bool:
        """True if the node is attached and not crashed."""
        return node_id in self._processes and node_id not in self._crashed

    def filter_alive(self, node_ids: Iterable[int]) -> set[int]:
        """The subset of ``node_ids`` that is attached and not crashed.

        One call for a whole fan-out target set instead of one
        :meth:`is_alive` call per target (hot path: query forwarding).
        When every target is alive the *input set itself* is returned --
        callers must treat the result as read-only."""
        processes = self._processes
        crashed = self._crashed
        if not crashed:
            if isinstance(node_ids, (set, frozenset)):
                # C-level subset probe; the common no-failures case does
                # no per-element Python work and allocates nothing.
                if processes.keys() >= node_ids:
                    return node_ids
                return {n for n in node_ids if n in processes}
            return {n for n in node_ids if n in processes}
        return {n for n in node_ids if n in processes and n not in crashed}

    @property
    def node_ids(self) -> list[int]:
        """All attached node ids (crashed or not)."""
        return list(self._processes)

    @property
    def live_node_ids(self) -> list[int]:
        """Attached node ids that are not crashed."""
        return [n for n in self._processes if n not in self._crashed]

    def process_for(self, node_id: int) -> Process:
        """Look up the process object for a node id."""
        return self._processes[node_id]

    def send(
        self,
        src: int,
        dst: int,
        mtype: str,
        payload: Optional[dict[str, Any]] = None,
    ) -> Message:
        """Send one message; returns the Message for inspection in tests.

        The send is always counted in stats (the bytes left ``src`` whether
        or not ``dst`` is alive on arrival), matching the paper's message
        accounting.
        """
        engine = self.engine
        now = engine._now  # plain slot read; .now is a property
        if payload is None:
            payload = {}
        # Inlined Message construction (bypasses the __init__ frame on the
        # simulator's hottest allocation site; keep in sync with Message).
        message = _new_message(Message)
        message.mtype = mtype
        message.src = src
        message.dst = dst
        message.payload = payload
        message.sent_at = now
        message._size = None
        # Per-query attribution: any payload carrying a query or probe id is
        # charged to that id's tag (see MessageStats.per_query).  One lookup
        # on the hot path; "absent" (-> probe_id fallback) is distinguished
        # from a falsy-but-present qid, which is attributed as-is.
        tag = payload.get("qid")
        if tag is None:
            tag = payload.get("probe_id")
        # Inlined MessageStats.record_send (this is the single hottest call
        # site in the simulator); counts-only mode never materializes
        # message.size (no payload walk).
        stats = self.stats
        stats.total_messages += 1
        if stats.detailed_bytes:
            stats.total_bytes += message.size
        self._by_type[mtype] += 1
        self._sent_by_node[src] += 1
        self._received_by_node[dst] += 1
        if tag is not None and tag not in self._closed_tags:
            self._per_query[tag] += 1
        crashed = self._crashed
        if crashed and src in crashed:
            # A crashed node cannot actually emit traffic.
            stats.record_drop()
            return message
        if self._fast_path:
            # Zero-latency delivery lands at the current tick: the wheel
            # kernel's FIFO absorbs it with no heap operation at all.
            # Inlined Engine.post1_at (time == now always holds here;
            # keep in sync with the engine).
            if self._wheel:
                seq = engine._seq
                engine._seq = seq + 1
                engine._live += 1
                pool = engine._pool
                if pool:
                    entry = pool.pop()
                    entry[0] = now
                    entry[1] = seq
                    entry[2] = _ONE
                    entry[3] = self._deliver_cb
                    entry[4] = message
                else:
                    entry = [now, seq, _ONE, self._deliver_cb, message]
                engine._fifo.append(entry)
            else:
                engine.post1_at(now, self._deliver_cb, message)
            return message
        model = self.latency_model
        depart = self._sender_free.get(src, 0.0)
        if depart < now:
            depart = now
        svc = self._const_send_service
        depart += svc if svc is not None else model.send_service_time(src)
        self._sender_free[src] = depart
        # Probe the model's per-pair memo inline (saves a method call on
        # every warm pair); a miss computes and fills it.
        cache = self._pair_delay_cache
        if cache is not None:
            delay = cache.get((src, dst) if src <= dst else (dst, src))
            if delay is None:
                delay = model.wire_delay(src, dst)
        else:
            delay = model.wire_delay(src, dst)
        arrival = depart + delay
        if self._fused:
            # Fused arrive+deliver: the receive-side serialization is a
            # published constant, so the ready time is computable here and
            # the message schedules as ONE delivery event instead of an
            # arrive event that re-schedules a deliver event.
            stats.fused_deliveries += 1
            rsvc = self._const_receive_service
            if rsvc:
                ready = self._receiver_free.get(dst, 0.0)
                if ready < arrival:
                    ready = arrival
                ready += rsvc
                self._receiver_free[dst] = ready
                engine.post1_at(ready, self._deliver_cb, message)
            else:
                engine.post1_at(arrival, self._deliver_cb, message)
        else:
            engine.post1_at(arrival, self._arrive, message)
        return message

    def send_many(
        self,
        src: int,
        dsts: list[int],
        mtype: str,
        payload: Optional[dict[str, Any]] = None,
    ) -> None:
        """Fan one payload out to several destinations (shared dict).

        Semantically identical to calling :meth:`send` per destination --
        receivers treat payloads as read-only, so sharing the dict is safe
        -- but the per-message constants (tag extraction, counter and
        model bindings, crash check) are hoisted out of the loop: query
        fan-out is the simulator's dominant traffic.
        """
        if payload is None:
            payload = {}
        engine = self.engine
        now = engine._now  # plain slot read; .now is a property
        tag = payload.get("qid")
        if tag is None:
            tag = payload.get("probe_id")
        stats = self.stats
        detailed = stats.detailed_bytes
        by_type = self._by_type
        sent_by_node = self._sent_by_node
        received_by_node = self._received_by_node
        count_tag = tag is not None and tag not in self._closed_tags
        per_query = self._per_query
        # Aggregate counters don't depend on the destination: bump them
        # once per burst instead of once per message (nothing observes
        # the stats mid-call, so the final counts are identical).
        n = len(dsts)
        if n == 0:
            return
        stats.total_messages += n
        by_type[mtype] += n
        sent_by_node[src] += n
        if count_tag:
            per_query[tag] += n
        if src in self._crashed:
            # Byte parity with send(): the per-message size is charged
            # even though a crashed sender's traffic never departs.
            if detailed:
                size = _BASE_HEADER_BYTES + estimate_size(payload)
                stats.total_bytes += size * n
            stats.dropped_messages += n
            for dst in dsts:
                received_by_node[dst] += 1
            return
        if self._fast_path:
            # Same-tick fan-out: every delivery lands at `now`, so the
            # whole burst schedules as ONE batch entry (the engine fires
            # one event per item, in order, with per-item accounting --
            # burst_seq advances exactly as it would for N single posts).
            items = engine.batch_list()
            for dst in dsts:
                message = _new_message(Message)
                message.mtype = mtype
                message.src = src
                message.dst = dst
                message.payload = payload
                message.sent_at = now
                message._size = None
                if detailed:
                    stats.total_bytes += message.size
                received_by_node[dst] += 1
                items.append(message)
            stats.batched_messages += n
            # Inlined Engine.post_batch_at (time == now, n > 0; keep in
            # sync with the engine).
            if self._wheel:
                seq = engine._seq
                engine._seq = seq + n
                engine._live += n
                pool = engine._pool
                if pool:
                    entry = pool.pop()
                    entry[0] = now
                    entry[1] = seq
                    entry[2] = _BATCH
                    entry[3] = self._deliver_cb
                    entry[4] = items
                else:
                    entry = [now, seq, _BATCH, self._deliver_cb, items]
                engine._fifo.append(entry)
            else:
                engine.post_batch_at(now, self._deliver_cb, items)
            return
        model = self.latency_model
        svc = self._const_send_service
        cache = self._pair_delay_cache
        fused = self._fused
        rsvc = self._const_receive_service
        receiver_free = self._receiver_free
        post1 = engine.post1_at
        deliver = self._deliver_cb
        depart = self._sender_free.get(src, 0.0)
        if depart < now:
            depart = now
        for dst in dsts:
            message = _new_message(Message)
            message.mtype = mtype
            message.src = src
            message.dst = dst
            message.payload = payload
            message.sent_at = now
            message._size = None
            if detailed:
                stats.total_bytes += message.size
            received_by_node[dst] += 1
            depart += svc if svc is not None else model.send_service_time(src)
            if cache is not None:
                delay = cache.get((src, dst) if src <= dst else (dst, src))
                if delay is None:
                    delay = model.wire_delay(src, dst)
            else:
                delay = model.wire_delay(src, dst)
            arrival = depart + delay
            if fused:
                # Fused arrive+deliver, as in send().
                stats.fused_deliveries += 1
                if rsvc:
                    ready = receiver_free.get(dst, 0.0)
                    if ready < arrival:
                        ready = arrival
                    ready += rsvc
                    receiver_free[dst] = ready
                    post1(ready, deliver, message)
                else:
                    post1(arrival, deliver, message)
            else:
                post1(arrival, self._arrive, message)
        self._sender_free[src] = depart

    def _arrive(self, message: Message) -> None:
        """Arrival at the destination NIC: queue behind earlier arrivals."""
        dst = message.dst
        if dst not in self._processes or dst in self._crashed:
            self.stats.record_drop()
            return
        now = self.engine._now
        ready = self._receiver_free.get(dst, 0.0)
        if ready < now:
            ready = now
        svc = self._const_receive_service
        ready += svc if svc is not None else self.latency_model.receive_service_time(dst)
        self._receiver_free[dst] = ready
        if ready <= now:
            self._deliver(message)
        else:
            self.engine.post1_at(ready, self._deliver_cb, message)

    def _deliver(self, message: Message) -> None:
        dst = message.dst
        process = self._processes.get(dst)
        crashed = self._crashed
        if process is None or (crashed and dst in crashed):
            self.stats.record_drop()
            return
        process.handle_message(message)
