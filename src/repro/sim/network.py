"""Simulated message-passing network.

The network delivers :class:`Message` objects between registered
:class:`Process` instances, charging wire delay and per-node service time
according to the configured :class:`~repro.sim.latency.LatencyModel`, and
recording every send in :class:`~repro.sim.stats.MessageStats`.

Queueing model: a node serializes its sends (a k-way fan-out costs k send
service times at the sender) and serializes the ingestion of arrivals.  This
is what lets the LAN/WAN models reproduce the fan-out- and straggler-
dominated latencies of the paper's Emulab and PlanetLab experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Protocol, runtime_checkable

from repro.sim.engine import Engine
from repro.sim.latency import LatencyModel, ZeroLatencyModel
from repro.sim.stats import MessageStats

__all__ = ["Message", "Network", "Process", "estimate_size"]

_BASE_HEADER_BYTES = 40  # rough IP+UDP+framing overhead per message


def estimate_size(value: Any) -> int:
    """Rough serialized size in bytes of a payload value.

    Used only for byte accounting; the paper reports message counts, so this
    is informational.
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, dict):
        return sum(estimate_size(k) + estimate_size(v) for k, v in value.items()) + 4
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(estimate_size(item) for item in value) + 4
    # Fall back to the repr for unusual payloads (e.g., partial aggregates).
    return len(repr(value))


@runtime_checkable
class Process(Protocol):
    """Anything that can be attached to the network."""

    node_id: int

    def handle_message(self, message: "Message") -> None:
        """Process one delivered message."""


@dataclass
class Message:
    """A single network message."""

    mtype: str
    src: int
    dst: int
    payload: dict[str, Any] = field(default_factory=dict)
    size: int = 0
    sent_at: float = 0.0

    def __post_init__(self) -> None:
        if self.size == 0:
            self.size = _BASE_HEADER_BYTES + estimate_size(self.payload)


class Network:
    """Delivers messages between processes over a latency model."""

    def __init__(
        self,
        engine: Engine,
        latency_model: Optional[LatencyModel] = None,
        stats: Optional[MessageStats] = None,
    ) -> None:
        self.engine = engine
        self.latency_model = latency_model or ZeroLatencyModel()
        self.stats = stats or MessageStats()
        self._processes: dict[int, Process] = {}
        self._crashed: set[int] = set()
        self._sender_free: dict[int, float] = {}
        self._receiver_free: dict[int, float] = {}
        self._fast_path = isinstance(self.latency_model, ZeroLatencyModel)

    def set_latency_model(self, model: LatencyModel) -> None:
        """Swap the latency model (e.g., after node ids are known)."""
        self.latency_model = model
        self._fast_path = isinstance(model, ZeroLatencyModel)

    def attach(self, process: Process) -> None:
        """Register a process under its ``node_id``."""
        node_id = process.node_id
        if node_id in self._processes:
            raise ValueError(f"node {node_id} already attached")
        self._processes[node_id] = process
        self._crashed.discard(node_id)

    def detach(self, node_id: int) -> None:
        """Remove a process entirely (graceful leave)."""
        self._processes.pop(node_id, None)
        self._crashed.discard(node_id)

    def crash(self, node_id: int) -> None:
        """Mark a node as failed; its in-flight and future messages drop."""
        if node_id in self._processes:
            self._crashed.add(node_id)

    def recover(self, node_id: int) -> None:
        """Bring a crashed node back."""
        self._crashed.discard(node_id)

    def is_alive(self, node_id: int) -> bool:
        """True if the node is attached and not crashed."""
        return node_id in self._processes and node_id not in self._crashed

    @property
    def node_ids(self) -> list[int]:
        """All attached node ids (crashed or not)."""
        return list(self._processes)

    @property
    def live_node_ids(self) -> list[int]:
        """Attached node ids that are not crashed."""
        return [n for n in self._processes if n not in self._crashed]

    def process_for(self, node_id: int) -> Process:
        """Look up the process object for a node id."""
        return self._processes[node_id]

    def send(
        self,
        src: int,
        dst: int,
        mtype: str,
        payload: Optional[dict[str, Any]] = None,
    ) -> Message:
        """Send one message; returns the Message for inspection in tests.

        The send is always counted in stats (the bytes left ``src`` whether
        or not ``dst`` is alive on arrival), matching the paper's message
        accounting.
        """
        message = Message(
            mtype=mtype,
            src=src,
            dst=dst,
            payload=payload or {},
            sent_at=self.engine.now,
        )
        # Per-query attribution: any payload carrying a query or probe id is
        # charged to that id's tag (see MessageStats.per_query).
        tag = message.payload.get("qid") or message.payload.get("probe_id")
        self.stats.record_send(src, dst, mtype, message.size, tag=tag)
        if src in self._crashed:
            # A crashed node cannot actually emit traffic.
            self.stats.record_drop()
            return message
        if self._fast_path:
            self.engine.schedule(0.0, self._deliver, message)
            return message
        model = self.latency_model
        now = self.engine.now
        depart = max(now, self._sender_free.get(src, 0.0))
        depart += model.send_service_time(src)
        self._sender_free[src] = depart
        arrival = depart + model.wire_delay(src, dst)
        self.engine.schedule_at(arrival, self._arrive, message)
        return message

    def _arrive(self, message: Message) -> None:
        """Arrival at the destination NIC: queue behind earlier arrivals."""
        dst = message.dst
        if not self.is_alive(dst):
            self.stats.record_drop()
            return
        now = self.engine.now
        ready = max(now, self._receiver_free.get(dst, 0.0))
        ready += self.latency_model.receive_service_time(dst)
        self._receiver_free[dst] = ready
        if ready <= now:
            self._deliver(message)
        else:
            self.engine.schedule_at(ready, self._deliver, message)

    def _deliver(self, message: Message) -> None:
        process = self._processes.get(message.dst)
        if process is None or message.dst in self._crashed:
            self.stats.record_drop()
            return
        process.handle_message(message)
