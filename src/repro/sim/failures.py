"""Crash/recovery injection for robustness tests.

The paper relies on FreePastry's failure detector plus Moara's own query
timeouts (Section 7, "Reconfigurations").  Tests use this module to crash
nodes mid-query and assert that queries still terminate with answers from
the surviving satisfying nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.network import Network

__all__ = ["FailureInjector", "FailureEvent"]


@dataclass(frozen=True)
class FailureEvent:
    """A record of one injected failure or recovery."""

    time: float
    node_id: int
    kind: str  # "crash" or "recover"


@dataclass
class FailureInjector:
    """Schedules crashes and recoveries against a network."""

    network: Network
    on_crash: Optional[Callable[[int], None]] = None
    on_recover: Optional[Callable[[int], None]] = None
    history: list[FailureEvent] = field(default_factory=list)

    def crash_at(self, time: float, node_id: int) -> None:
        """Crash ``node_id`` at absolute simulated time ``time``."""
        self.network.engine.schedule_at(time, self._do_crash, node_id)

    def recover_at(self, time: float, node_id: int) -> None:
        """Recover ``node_id`` at absolute simulated time ``time``."""
        self.network.engine.schedule_at(time, self._do_recover, node_id)

    def crash_now(self, node_id: int) -> None:
        """Crash immediately."""
        self._do_crash(node_id)

    def _do_crash(self, node_id: int) -> None:
        self.network.crash(node_id)
        self.history.append(
            FailureEvent(self.network.engine.now, node_id, "crash")
        )
        if self.on_crash is not None:
            self.on_crash(node_id)

    def _do_recover(self, node_id: int) -> None:
        self.network.recover(node_id)
        self.history.append(
            FailureEvent(self.network.engine.now, node_id, "recover")
        )
        if self.on_recover is not None:
            self.on_recover(node_id)
