"""Message and byte accounting.

Every bandwidth number in the paper (Figs. 9, 10, 11, 12(a)) is a message
count: "average number of messages per node", "query cost", "update cost".
:class:`MessageStats` mirrors that accounting.  Counters can be snapshotted
and diffed so one simulation can serve several measurement windows (e.g.,
the warm-up join phase is excluded exactly as in the paper's Emulab runs).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["MessageStats", "StatsSnapshot"]


@dataclass(frozen=True)
class StatsSnapshot:
    """An immutable copy of the counters at one instant."""

    total_messages: int
    total_bytes: int
    by_type: dict[str, int]
    sent_by_node: dict[int, int]
    received_by_node: dict[int, int]

    def messages_of(self, *types: str) -> int:
        """Total messages whose type is one of ``types``."""
        return sum(self.by_type.get(t, 0) for t in types)


@dataclass
class MessageStats:
    """Mutable counters updated by :class:`repro.sim.network.Network`."""

    total_messages: int = 0
    total_bytes: int = 0
    by_type: Counter = field(default_factory=Counter)
    sent_by_node: Counter = field(default_factory=Counter)
    received_by_node: Counter = field(default_factory=Counter)
    dropped_messages: int = 0

    def record_send(self, src: int, dst: int, mtype: str, size: int) -> None:
        """Count one message leaving ``src`` for ``dst``."""
        self.total_messages += 1
        self.total_bytes += size
        self.by_type[mtype] += 1
        self.sent_by_node[src] += 1
        self.received_by_node[dst] += 1

    def record_drop(self) -> None:
        """Count a message that was lost (e.g., destination crashed)."""
        self.dropped_messages += 1

    def snapshot(self) -> StatsSnapshot:
        """Freeze the current counters."""
        return StatsSnapshot(
            total_messages=self.total_messages,
            total_bytes=self.total_bytes,
            by_type=dict(self.by_type),
            sent_by_node=dict(self.sent_by_node),
            received_by_node=dict(self.received_by_node),
        )

    def reset(self) -> None:
        """Zero all counters (start of a measurement window)."""
        self.total_messages = 0
        self.total_bytes = 0
        self.by_type.clear()
        self.sent_by_node.clear()
        self.received_by_node.clear()
        self.dropped_messages = 0

    def messages_per_node(self, num_nodes: int) -> float:
        """The paper's headline bandwidth metric (Figs. 9 and 10)."""
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        return self.total_messages / num_nodes

    def delta_since(self, earlier: StatsSnapshot) -> StatsSnapshot:
        """Counters accumulated since ``earlier`` was taken."""
        by_type = {
            mtype: count - earlier.by_type.get(mtype, 0)
            for mtype, count in self.by_type.items()
            if count - earlier.by_type.get(mtype, 0)
        }
        sent = {
            node: count - earlier.sent_by_node.get(node, 0)
            for node, count in self.sent_by_node.items()
            if count - earlier.sent_by_node.get(node, 0)
        }
        received = {
            node: count - earlier.received_by_node.get(node, 0)
            for node, count in self.received_by_node.items()
            if count - earlier.received_by_node.get(node, 0)
        }
        return StatsSnapshot(
            total_messages=self.total_messages - earlier.total_messages,
            total_bytes=self.total_bytes - earlier.total_bytes,
            by_type=by_type,
            sent_by_node=sent,
            received_by_node=received,
        )
