"""Message and byte accounting.

Every bandwidth number in the paper (Figs. 9, 10, 11, 12(a)) is a message
count: "average number of messages per node", "query cost", "update cost".
:class:`MessageStats` mirrors that accounting.  Counters can be snapshotted
and diffed so one simulation can serve several measurement windows (e.g.,
the warm-up join phase is excluded exactly as in the paper's Emulab runs).

Per-query accounting: with many queries in flight at once, "total messages
between submit and answer" no longer attributes cost to the right query.
The network therefore tags every message that carries a query/probe id
(``tag``), and :class:`MessageStats` keeps a per-tag counter that the
front-end drains into exact per-query message costs; completed queries are
appended to a :class:`QueryRecord` ledger for throughput/latency analysis.

Counts-only vs detailed bytes: by default the stats run *counts-only* --
:attr:`MessageStats.detailed_bytes` is False and the network records every
message with size 0, skipping the recursive payload walk entirely (the
simulator's former number-one hot spot).  Set ``detailed_bytes=True`` to
restore per-message byte estimation for the bandwidth figures;
:attr:`MessageStats.total_bytes` is only meaningful in that mode.
"""

from __future__ import annotations

import math
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Optional

#: how many recently closed query tags are remembered so that straggler
#: messages (late child responses after a timeout) cannot re-create a
#: drained per-query counter entry
_CLOSED_TAG_MEMORY = 4096

__all__ = ["MessageStats", "QueryRecord", "StatsSnapshot"]


#: adaptive-TTL histogram bucket edges, in seconds (see
#: :meth:`MessageStats.record_adaptive_ttl`).
_TTL_BUCKETS = (1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)


@dataclass(frozen=True, slots=True)
class QueryRecord:
    """One completed query, as recorded by a front-end."""

    qid: str
    latency: float
    messages: int
    probe_latency: float = 0.0
    #: index of the front-end shard that executed the query (0 for the
    #: primary front-end; see repro.core.shard_router).
    shard: int = 0
    #: True when the query rode an already-in-flight shared sub-query
    #: (its marginal message cost is 0 for the shared portion).
    shared: bool = False
    #: True when every sub-query in the cover was answered from a tree
    #: root's TTL'd result cache (zero tree messages; answer stale by at
    #: most the root-cache TTL).
    root_cached: bool = False
    #: True when at least one sub-query was answered by subscribing to an
    #: identical in-flight execution at the root (cross-front-end
    #: sub-query sharing; fresh data, zero marginal tree messages).
    root_shared: bool = False
    completed_at: float = 0.0


@dataclass(frozen=True)
class StatsSnapshot:
    """An immutable copy of the counters at one instant."""

    total_messages: int
    total_bytes: int
    by_type: dict[str, int]
    sent_by_node: dict[int, int]
    received_by_node: dict[int, int]

    def messages_of(self, *types: str) -> int:
        """Total messages whose type is one of ``types``."""
        return sum(self.by_type.get(t, 0) for t in types)


@dataclass
class MessageStats:
    """Mutable counters updated by :class:`repro.sim.network.Network`."""

    total_messages: int = 0
    total_bytes: int = 0
    by_type: Counter = field(default_factory=Counter)
    sent_by_node: Counter = field(default_factory=Counter)
    received_by_node: Counter = field(default_factory=Counter)
    dropped_messages: int = 0
    #: messages attributed to an in-flight query/probe tag; drained by the
    #: front-end via :meth:`pop_tag` when the query (or probe) completes.
    per_query: Counter = field(default_factory=Counter)
    #: completed-query ledger, appended to by front-ends.
    query_log: list[QueryRecord] = field(default_factory=list)
    #: ledger bound: when full, the oldest half is dropped (and counted in
    #: :attr:`query_log_dropped`) so endless monitoring runs stay bounded.
    max_query_log: int = 100_000
    query_log_dropped: int = 0
    #: root-side optimization-layer counters, incremented by tree roots
    #: (see :mod:`repro.core.result_cache`): sub-queries answered from a
    #: root's TTL'd result cache / missed there / answered by subscribing
    #: to an identical in-flight execution.
    root_cache_hits: int = 0
    root_cache_misses: int = 0
    root_subscriptions: int = 0
    #: sharded-query-plane counters (see repro.core.shard_router and
    #: SharedGroupSizeCache in repro.core.plan_cache): queries submitted
    #: per front-end shard, shared-size-cache lookups per shard, and
    #: cluster-wide cross-shard probe joins (a probe another shard had
    #: already sent was reused instead of a duplicate wire probe).
    shard_queries: Counter = field(default_factory=Counter)
    shard_size_hits: Counter = field(default_factory=Counter)
    shard_size_misses: Counter = field(default_factory=Counter)
    shared_probe_joins: int = 0
    #: histogram of per-entry TTLs assigned by the churn-adaptive policies
    #: (repro.core.adaptive_ttl), bucketed by upper edge in seconds.
    adaptive_ttl_hist: Counter = field(default_factory=Counter)
    #: serve-plane link health (see repro.serve.resilience): successful
    #: reconnects of a dead transport link, sends that failed fast on a
    #: dead link (surfaced as explicitly failed queries rather than
    #: silent drops), circuit-breaker trips, and frames dropped because
    #: their end-to-end deadline budget had already expired.
    link_reconnects: int = 0
    link_send_failures: int = 0
    breaker_trips: int = 0
    deadline_expired: int = 0
    #: queries that completed with an explicit link-failure NULL
    #: resolution (QueryResult.failed).
    failed_queries: int = 0
    #: event-wheel kernel observability (see repro.sim.network): messages
    #: whose arrive+deliver pair was fused into a single scheduled event
    #: (constant-receive-service models), and messages delivered through a
    #: batched same-tick fan-out entry (one scheduler operation for a
    #: whole ``send_many``).  Pure diagnostics -- the protocol-visible
    #: message counters above are independent of either optimization.
    fused_deliveries: int = 0
    batched_messages: int = 0
    #: standing-query plane counters (see repro.standing): subscriptions
    #: registered at front-ends, folded live-answer updates emitted,
    #: planner cover re-evaluations triggered by churned group sizes,
    #: root-side lease expiries, and explicit cancels.
    standing_registered: int = 0
    standing_updates: int = 0
    standing_replans: int = 0
    standing_expired: int = 0
    standing_cancelled: int = 0
    #: opt-in byte accounting: when True the network estimates every
    #: message's wire size (recursive payload walk) and feeds
    #: :attr:`total_bytes`; when False (the default, counts-only mode) it
    #: records size 0 and never touches the payload.  Configuration, not a
    #: counter: :meth:`reset` leaves it unchanged.
    detailed_bytes: bool = False
    #: recently drained tags (LRU set): tagged stragglers arriving after
    #: :meth:`pop_tag` are counted in the aggregates but not re-attributed.
    _closed_tags: OrderedDict = field(default_factory=OrderedDict)

    def record_send(
        self,
        src: int,
        dst: int,
        mtype: str,
        size: int,
        tag: Optional[str] = None,
    ) -> None:
        """Count one message leaving ``src`` for ``dst``.

        ``tag`` attributes the message to one logical query or probe (the
        payload's query id); untagged control traffic (status updates,
        state sync) is counted only in the aggregate counters.
        """
        self.total_messages += 1
        self.total_bytes += size
        self.by_type[mtype] += 1
        self.sent_by_node[src] += 1
        self.received_by_node[dst] += 1
        if tag is not None and tag not in self._closed_tags:
            self.per_query[tag] += 1

    def record_drop(self) -> None:
        """Count a message that was lost (e.g., destination crashed)."""
        self.dropped_messages += 1

    # ------------------------------------------------------------------
    # per-query accounting
    # ------------------------------------------------------------------

    def tagged(self, tag: str) -> int:
        """Messages attributed to ``tag`` so far."""
        return self.per_query.get(tag, 0)

    def pop_tag(self, tag: str) -> int:
        """Drain and return the message count attributed to ``tag``.

        The tag is tombstoned: stragglers sent after the drain no longer
        accumulate under it (bounding :attr:`per_query` for long runs).
        """
        self._closed_tags[tag] = None
        if len(self._closed_tags) > _CLOSED_TAG_MEMORY:
            self._closed_tags.popitem(last=False)
        return self.per_query.pop(tag, 0)

    def record_adaptive_ttl(self, ttl: float) -> None:
        """Count one adaptive-TTL assignment in the bucketed histogram."""
        for edge in _TTL_BUCKETS:
            if ttl <= edge:
                self.adaptive_ttl_hist[f"<={edge:g}s"] += 1
                return
        self.adaptive_ttl_hist[f">{_TTL_BUCKETS[-1]:g}s"] += 1

    def record_query(self, record: QueryRecord) -> None:
        """Append one completed query to the ledger (bounded)."""
        if len(self.query_log) >= self.max_query_log:
            drop = self.max_query_log // 2
            del self.query_log[:drop]
            self.query_log_dropped += drop
        self.query_log.append(record)

    @property
    def queries_completed(self) -> int:
        """Total completed queries, including any trimmed off the ledger."""
        return len(self.query_log) + self.query_log_dropped

    def avg_messages_per_query(self) -> float:
        """Mean per-query marginal message cost over the ledger."""
        if not self.query_log:
            return 0.0
        return sum(r.messages for r in self.query_log) / len(self.query_log)

    def avg_query_latency(self) -> float:
        """Mean completion latency over the ledger."""
        if not self.query_log:
            return 0.0
        return sum(r.latency for r in self.query_log) / len(self.query_log)

    def query_latency_percentile(self, fraction: float) -> float:
        """Latency at the given fraction (0 < fraction <= 1) of the ledger."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if not self.query_log:
            return 0.0
        ordered = sorted(r.latency for r in self.query_log)
        index = max(0, math.ceil(fraction * len(ordered)) - 1)
        return ordered[index]

    def snapshot(self) -> StatsSnapshot:
        """Freeze the current counters."""
        return StatsSnapshot(
            total_messages=self.total_messages,
            total_bytes=self.total_bytes,
            by_type=dict(self.by_type),
            sent_by_node=dict(self.sent_by_node),
            received_by_node=dict(self.received_by_node),
        )

    def reset(self) -> None:
        """Zero all counters (start of a measurement window)."""
        self.total_messages = 0
        self.total_bytes = 0
        self.by_type.clear()
        self.sent_by_node.clear()
        self.received_by_node.clear()
        self.dropped_messages = 0
        self.per_query.clear()
        self.query_log.clear()
        self.query_log_dropped = 0
        self.root_cache_hits = 0
        self.root_cache_misses = 0
        self.root_subscriptions = 0
        self.shard_queries.clear()
        self.shard_size_hits.clear()
        self.shard_size_misses.clear()
        self.shared_probe_joins = 0
        self.adaptive_ttl_hist.clear()
        self.link_reconnects = 0
        self.link_send_failures = 0
        self.breaker_trips = 0
        self.deadline_expired = 0
        self.failed_queries = 0
        self.fused_deliveries = 0
        self.batched_messages = 0
        self.standing_registered = 0
        self.standing_updates = 0
        self.standing_replans = 0
        self.standing_expired = 0
        self.standing_cancelled = 0
        self._closed_tags.clear()

    def messages_per_node(self, num_nodes: int) -> float:
        """The paper's headline bandwidth metric (Figs. 9 and 10)."""
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        return self.total_messages / num_nodes

    def delta_since(self, earlier: StatsSnapshot) -> StatsSnapshot:
        """Counters accumulated since ``earlier`` was taken."""
        by_type = {
            mtype: count - earlier.by_type.get(mtype, 0)
            for mtype, count in self.by_type.items()
            if count - earlier.by_type.get(mtype, 0)
        }
        sent = {
            node: count - earlier.sent_by_node.get(node, 0)
            for node, count in self.sent_by_node.items()
            if count - earlier.sent_by_node.get(node, 0)
        }
        received = {
            node: count - earlier.received_by_node.get(node, 0)
            for node, count in self.received_by_node.items()
            if count - earlier.received_by_node.get(node, 0)
        }
        return StatsSnapshot(
            total_messages=self.total_messages - earlier.total_messages,
            total_bytes=self.total_bytes - earlier.total_bytes,
            by_type=by_type,
            sent_by_node=sent,
            received_by_node=received,
        )
