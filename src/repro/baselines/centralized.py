"""The centralized-aggregator baseline (paper Section 7.3, Figure 15).

"... a centralized approach which maintains no trees but has the Moara
front-end directly query all nodes in parallel regardless of whether they
satisfy the given predicate or not.  The response for a query from this
centralized aggregator is considered complete when the centralized
aggregator has received a response from every node."

The aggregator tracks per-response arrival times so benchmarks can plot the
completion CDF (the "tortoise and the hare" comparison): the central
approach collects its first answers quickly but must wait out every
straggler in the system, while Moara only waits on stragglers inside the
queried group's tree.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Union

from repro.core.attributes import AttributeStore
from repro.core.errors import QueryTimeoutError
from repro.core.parser import parse_query
from repro.core.query import Query, QueryResult, STAR_ATTRIBUTE
from repro.sim.engine import Engine
from repro.sim.latency import LatencyModel, ZeroLatencyModel
from repro.sim.network import Message, Network
from repro.sim.stats import MessageStats, QueryRecord

__all__ = [
    "CentralizedAggregator",
    "CentralizedSystem",
    "centralized_answer",
    "local_answer",
]

CENTRAL_QUERY = "CENTRAL_QUERY"
CENTRAL_RESPONSE = "CENTRAL_RESPONSE"


def local_answer(
    query: Query, node_id: int, attributes: AttributeStore
) -> tuple[Any, int]:
    """One node's contribution to a query: ``(partial, contributed)``.

    This is the centralized aggregator's per-node evaluation rule --
    predicate over the local attribute store, then ``lift`` of the local
    value -- shared by the simulated :class:`_PlainAgent` and by the
    campaign invariant checker's online oracle
    (:mod:`repro.campaigns.oracle`), so the oracle and the baseline can
    never drift apart.
    """
    if not query.predicate.evaluate(attributes):
        return None, 0
    if query.attr == STAR_ATTRIBUTE:
        value: Any = 1
    elif query.attr in attributes:
        value = attributes[query.attr]
    else:
        value = None
    if value is None:
        return None, 0
    return query.function.lift(value, node_id), 1


def centralized_answer(
    query: Union[str, Query],
    stores: Iterable[tuple[int, AttributeStore]],
) -> Any:
    """The centralized oracle's answer, computed with zero messages.

    Folds :func:`local_answer` over ``(node_id, attribute_store)`` pairs
    -- exactly what :class:`CentralizedSystem` computes by fanning the
    query out over the network, minus the network.  Campaign runs use it
    as the ground-truth oracle for online differential checks.
    """
    if isinstance(query, str):
        query = parse_query(query)
    partial: Any = None
    for node_id, attributes in stores:
        contribution, _ = local_answer(query, node_id, attributes)
        partial = query.function.merge(partial, contribution)
    return query.function.finalize(partial)


class _PlainAgent:
    """A monitored server: evaluates the predicate and answers directly."""

    def __init__(self, node_id: int, network: Network) -> None:
        self.node_id = node_id
        self.network = network
        self.attributes = AttributeStore()

    def handle_message(self, message: Message) -> None:
        if message.mtype != CENTRAL_QUERY:
            raise ValueError(f"unexpected message {message.mtype!r}")
        query: Query = message.payload["query"]
        partial, contributed = local_answer(
            query, self.node_id, self.attributes
        )
        self.network.send(
            self.node_id,
            message.src,
            CENTRAL_RESPONSE,
            {
                "qid": message.payload["qid"],
                "partial": partial,
                "contributors": contributed,
            },
        )


@dataclass
class _PendingCentral:
    query: Query
    waiting: set[int]
    partial: Any = None
    contributors: int = 0
    started_at: float = 0.0
    #: node -> arrival time of its response (for completion CDFs)
    arrival_times: dict[int, float] = field(default_factory=dict)


class CentralizedAggregator:
    """The front-end that fans a query out to every node directly."""

    def __init__(self, network: Network, node_id: int = -2) -> None:
        self.network = network
        self.node_id = node_id
        self._qid_counter = itertools.count(1)
        self._pending: dict[str, _PendingCentral] = {}
        self.results: dict[str, QueryResult] = {}
        #: qid -> sorted arrival times of individual responses
        self.arrival_profiles: dict[str, list[float]] = {}
        network.attach(self)

    def submit(self, query: Union[str, Query], targets: list[int]) -> str:
        """Send the query to every target node; returns the query id."""
        if isinstance(query, str):
            query = parse_query(query)
        qid = f"central-{next(self._qid_counter)}"
        pending = _PendingCentral(
            query=query,
            waiting=set(targets),
            started_at=self.network.engine.now,
        )
        self._pending[qid] = pending
        for target in targets:
            self.network.send(
                self.node_id,
                target,
                CENTRAL_QUERY,
                {"qid": qid, "query": query},
            )
        return qid

    def handle_message(self, message: Message) -> None:
        if message.mtype != CENTRAL_RESPONSE:
            raise ValueError(f"unexpected message {message.mtype!r}")
        payload = message.payload
        pending = self._pending.get(payload["qid"])
        if pending is None or message.src not in pending.waiting:
            return
        pending.waiting.discard(message.src)
        pending.arrival_times[message.src] = self.network.engine.now
        pending.partial = pending.query.function.merge(
            pending.partial, payload["partial"]
        )
        pending.contributors += payload["contributors"]
        if pending.waiting:
            return
        qid = payload["qid"]
        del self._pending[qid]
        now = self.network.engine.now
        latency = now - pending.started_at
        # Per-query tagged accounting (the payload qid tags every CENTRAL_*
        # message), so concurrent central queries attribute cost correctly.
        message_cost = self.network.stats.pop_tag(qid)
        self.results[qid] = QueryResult(
            query=pending.query,
            value=pending.query.function.finalize(pending.partial),
            cover=["<all nodes>"],
            contributors=pending.contributors,
            latency=latency,
            message_cost=message_cost,
        )
        self.network.stats.record_query(
            QueryRecord(
                qid=qid,
                latency=latency,
                messages=message_cost,
                completed_at=now,
            )
        )
        self.arrival_profiles[qid] = sorted(
            t - pending.started_at for t in pending.arrival_times.values()
        )


class CentralizedSystem:
    """A standalone deployment of plain agents plus the central front-end."""

    def __init__(
        self,
        num_nodes: int,
        seed: int = 0,
        latency_model: Optional[LatencyModel] = None,
        node_ids: Optional[list[int]] = None,
    ) -> None:
        self.engine = Engine()
        self.stats = MessageStats()
        self.network = Network(
            self.engine, latency_model or ZeroLatencyModel(), self.stats
        )
        if node_ids is None:
            # Deterministic ids detached from any overlay.
            node_ids = [1000 + i for i in range(num_nodes)]
        self.nodes: dict[int, _PlainAgent] = {}
        for node_id in node_ids:
            agent = _PlainAgent(node_id, self.network)
            self.nodes[node_id] = agent
            self.network.attach(agent)
        self.aggregator = CentralizedAggregator(self.network)

    @property
    def node_ids(self) -> list[int]:
        return sorted(self.nodes)

    def set_attribute(self, node_id: int, name: str, value: Any) -> None:
        self.nodes[node_id].attributes.set(name, value)

    def query(
        self, query: Union[str, Query], max_events: int = 10_000_000
    ) -> QueryResult:
        """Query all nodes and wait for every response."""
        qid = self.aggregator.submit(query, self.node_ids)
        done = self.engine.run_until(
            lambda: qid in self.aggregator.results, max_events=max_events
        )
        if not done:
            raise QueryTimeoutError(f"centralized query {qid} never completed")
        return self.aggregator.results.pop(qid)

    def last_arrival_profile(self) -> list[float]:
        """Arrival times (seconds since injection) of the most recent query's
        responses; used for the Figure 15 CDF."""
        if not self.aggregator.arrival_profiles:
            return []
        last_qid = max(self.aggregator.arrival_profiles)
        return self.aggregator.arrival_profiles[last_qid]
