"""Baseline systems the paper compares against.

* :class:`CentralizedAggregator` -- Figure 15's "Central": a front-end that
  directly queries every node in parallel, with no in-network aggregation.
* The "Global" / "SDIMS" broadcast baseline lives in :mod:`repro.sdims`
  (:class:`repro.sdims.SDIMSCluster`).
* The "Moara (Always-Update)" baseline is a maintenance policy
  (:class:`repro.core.MaintenancePolicy.ALWAYS_UPDATE`).
"""

from repro.baselines.centralized import (
    CentralizedAggregator,
    CentralizedSystem,
    centralized_answer,
    local_answer,
)

__all__ = [
    "CentralizedAggregator",
    "CentralizedSystem",
    "centralized_answer",
    "local_answer",
]
