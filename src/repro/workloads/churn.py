"""Periodic group-churn driver (paper Section 7.2, "Dynamic Groups").

"We considered a group of 100 nodes, with group churn controlled by two
parameters churn and interval.  Every `interval` seconds, we randomly
select `churn` nodes in the group to leave, and `churn` nodes outside the
group to join."
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.cluster import MoaraCluster

__all__ = ["GroupChurnDriver"]


@dataclass
class GroupChurnDriver:
    """Keeps a group's size constant while rotating its membership."""

    cluster: MoaraCluster
    attr: str
    group_size: int
    churn: int
    interval: float
    seed: int = 0
    #: timestamps at which churn batches fired (for timeline plots)
    batch_times: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rng = random.Random(f"churn-{self.seed}")
        node_ids = self.cluster.node_ids
        if self.group_size > len(node_ids):
            raise ValueError("group larger than the cluster")
        self._members: set[int] = set(
            self._rng.sample(node_ids, self.group_size)
        )
        self.cluster.set_group(self.attr, self._members)
        self._running = False

    @property
    def members(self) -> set[int]:
        """Current group membership (ground truth)."""
        return set(self._members)

    def start(self) -> None:
        """Begin firing churn batches every ``interval`` seconds."""
        if self._running:
            return
        self._running = True
        self.cluster.engine.schedule(self.interval, self._batch)

    def stop(self) -> None:
        self._running = False

    def _batch(self) -> None:
        if not self._running:
            return
        self.apply_batch()
        self.cluster.engine.schedule(self.interval, self._batch)

    def apply_batch(self) -> None:
        """One churn step: ``churn`` members leave, ``churn`` outsiders join."""
        node_ids = self.cluster.node_ids
        outside = [n for n in node_ids if n not in self._members]
        leave_count = min(self.churn, len(self._members))
        join_count = min(self.churn, len(outside))
        leaving = self._rng.sample(sorted(self._members), leave_count)
        joining = self._rng.sample(outside, join_count)
        for node_id in leaving:
            self._members.discard(node_id)
            self.cluster.set_attribute(node_id, self.attr, False)
        for node_id in joining:
            self._members.add(node_id)
            self.cluster.set_attribute(node_id, self.attr, True)
        self.batch_times.append(self.cluster.engine.now)
