"""Query:churn event mixes (paper Section 7.1).

"To study the dynamic maintenance mechanism under different workload types,
we stress the system by injecting two types of events -- query events and
group churn events -- at different ratios. ... Each group churn event
selects m nodes at random, and toggles the value of their attribute A.
...  We fix the total number of events to 500, and randomly inject query or
group churn events at the chosen ratio."
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Union

from repro.core.cluster import MoaraCluster
from repro.core.query import Query, QueryResult

__all__ = ["EventMix", "run_query_churn_workload"]


@dataclass(frozen=True)
class EventMix:
    """A randomized interleaving of query and churn events."""

    num_queries: int
    num_churn: int
    seed: int = 0

    def schedule(self) -> list[str]:
        """The shuffled event sequence ("query" / "churn" tags)."""
        events = ["query"] * self.num_queries + ["churn"] * self.num_churn
        random.Random(f"event-mix-{self.seed}").shuffle(events)
        return events

    @property
    def label(self) -> str:
        """The paper's x-axis label, e.g. ``300:200``."""
        return f"{self.num_queries}:{self.num_churn}"


def run_query_churn_workload(
    cluster: MoaraCluster,
    query: Union[str, Query],
    attr: str,
    mix: EventMix,
    burst_size: int,
    seed: int = 0,
) -> list[QueryResult]:
    """Drive a cluster through one query:churn mix (the Figure 9 workload).

    Each churn event toggles binary attribute ``attr`` (0/1) on
    ``burst_size`` random nodes; each query event runs ``query`` to
    completion.  Returns the query results (message accounting accumulates
    in ``cluster.stats``).
    """
    rng = random.Random(f"workload-{seed}")
    node_ids = cluster.node_ids
    results: list[QueryResult] = []
    for event in mix.schedule():
        if event == "query":
            results.append(cluster.query(query))
        else:
            for node_id in rng.sample(node_ids, min(burst_size, len(node_ids))):
                node = cluster.nodes[node_id]
                current = node.attributes.get(attr, 0)
                node.attributes.set(attr, 1 - current)
            cluster.run_until_idle()
    return results
