"""Synthetic HP utility-computing rendering trace (paper Figure 2(b)).

"Figure 2(b) presents the behavior of two jobs over a 20-hour period from a
real 6-month trace of a utility computing environment at HP with 500
machines receiving animation rendering batch jobs.  This plot shows the
dynamism in each group over time."

The real trace is proprietary; this generator reproduces its qualitative
envelope -- two batch jobs that ramp up, plateau with bursty fluctuations,
and tear down at different times, over a 1400-minute window on a 500-machine
pool.  Benchmarks and examples use it solely as a source of realistic group
dynamism, which is what Figure 2(b) illustrates.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

__all__ = ["RenderingJobTrace"]


@dataclass(frozen=True)
class _JobProfile:
    """Shape parameters for one batch job's lifetime."""

    start_min: int
    ramp_min: int
    plateau_min: int
    peak_machines: int
    burstiness: float  # relative amplitude of plateau fluctuations


@dataclass
class RenderingJobTrace:
    """Machines-in-use time series for two rendering jobs."""

    duration_min: int = 1400
    pool_size: int = 500
    step_min: int = 5
    seed: int = 0
    #: job name -> list of (minute, machines_in_use)
    series: dict[str, list[tuple[int, int]]] = field(default_factory=dict)

    _PROFILES = {
        "job0": _JobProfile(
            start_min=30, ramp_min=120, plateau_min=700, peak_machines=160,
            burstiness=0.25,
        ),
        "job1": _JobProfile(
            start_min=400, ramp_min=200, plateau_min=600, peak_machines=110,
            burstiness=0.35,
        ),
    }

    def __post_init__(self) -> None:
        if not self.series:
            self._generate()

    def _generate(self) -> None:
        rng = random.Random(f"jobs-{self.seed}")
        for name, profile in self._PROFILES.items():
            points: list[tuple[int, int]] = []
            for minute in range(0, self.duration_min + 1, self.step_min):
                points.append((minute, self._usage(profile, minute, rng)))
            self.series[name] = points

    def _usage(self, profile: _JobProfile, minute: int, rng: random.Random) -> int:
        t = minute - profile.start_min
        end_of_ramp = profile.ramp_min
        end_of_plateau = profile.ramp_min + profile.plateau_min
        teardown_len = max(1, profile.ramp_min // 2)
        if t < 0:
            return 0
        if t < end_of_ramp:
            base = profile.peak_machines * (t / profile.ramp_min)
        elif t < end_of_plateau:
            # Bursty plateau: slow sinusoidal drift plus random jitter.
            drift = math.sin(t / 45.0) * profile.burstiness / 2
            jitter = rng.uniform(-profile.burstiness, profile.burstiness) / 2
            base = profile.peak_machines * (1 + drift + jitter)
        elif t < end_of_plateau + teardown_len:
            remaining = 1 - (t - end_of_plateau) / teardown_len
            base = profile.peak_machines * remaining
        else:
            return 0
        return max(0, min(self.pool_size, int(round(base))))

    # ------------------------------------------------------------------
    # Figure 2(b) inspection helpers
    # ------------------------------------------------------------------

    @property
    def job_names(self) -> list[str]:
        return sorted(self.series)

    def peak_usage(self, job: str) -> int:
        """Maximum machines the job ever used."""
        return max(machines for _, machines in self.series[job])

    def active_window(self, job: str) -> tuple[int, int]:
        """(first, last) minute with non-zero usage."""
        active = [minute for minute, machines in self.series[job] if machines]
        return (active[0], active[-1])

    def churn_events(self, job: str) -> list[tuple[int, int]]:
        """(minute, delta_machines) at each step -- the group-churn signal a
        monitoring system would observe."""
        events = []
        points = self.series[job]
        for (_, prev), (minute, current) in zip(points, points[1:]):
            if current != prev:
                events.append((minute, current - prev))
        return events
