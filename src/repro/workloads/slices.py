"""Synthetic PlanetLab slice-size trace (paper Figure 2(a)).

The paper analyzes a CoTop snapshot of ~400 slices: "As many as 50% of the
400 slices have fewer than 10 assigned nodes ... If we consider only nodes
that were actually in use ..., as many as 100 out of 170 slices have fewer
than 10 active nodes."  The real snapshot is not available, so this module
generates a Zipf-like distribution calibrated to those quoted facts;
``tests/workloads/test_slices.py`` asserts the calibration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["SliceTrace"]


@dataclass
class SliceTrace:
    """Assigned and in-use node counts for a population of slices."""

    num_slices: int = 400
    num_nodes: int = 700  # PlanetLab's approximate size in 2008
    max_slice_size: int = 450
    seed: int = 0
    #: slice name -> number of assigned nodes
    assigned: dict[str, int] = field(default_factory=dict)
    #: slice name -> number of nodes actually in use (> 1 process running)
    in_use: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.assigned:
            self._generate()

    def _generate(self) -> None:
        rng = random.Random(f"slices-{self.seed}")
        for index in range(self.num_slices):
            name = f"slice{index:03d}"
            # Zipf-like assigned sizes: a heavy head of large slices and a
            # long tail of tiny ones; rank-size exponent tuned so ~half the
            # slices stay below 10 assigned nodes as in the CoTop snapshot.
            rank = index + 1
            base = self.max_slice_size / (rank**0.72)
            noise = rng.uniform(0.6, 1.4)
            size = max(1, min(self.max_slice_size, int(base * noise)))
            self.assigned[name] = size
            # Large slices are likelier to be actively used; active slices
            # run processes on a sizeable fraction of their assignment.
            # Tuned to the paper's "100 out of 170 slices have fewer than
            # 10 active nodes".
            p_active = 0.6 if size >= 10 else 0.28
            if rng.random() < p_active:
                used = max(1, int(size * rng.uniform(0.3, 0.95)))
                self.in_use[name] = min(used, size)

    # ------------------------------------------------------------------
    # Figure 2(a) series and the quoted statistics
    # ------------------------------------------------------------------

    def ranked_assigned(self) -> list[int]:
        """Assigned sizes sorted descending (the Figure 2(a) x-axis)."""
        return sorted(self.assigned.values(), reverse=True)

    def ranked_in_use(self) -> list[int]:
        """In-use sizes sorted descending."""
        return sorted(self.in_use.values(), reverse=True)

    def fraction_assigned_below(self, threshold: int) -> float:
        """Fraction of slices with fewer than ``threshold`` assigned nodes."""
        small = sum(1 for size in self.assigned.values() if size < threshold)
        return small / len(self.assigned)

    def count_in_use_below(self, threshold: int) -> tuple[int, int]:
        """(slices with < threshold active nodes, active slices total)."""
        small = sum(1 for size in self.in_use.values() if size < threshold)
        return small, len(self.in_use)

    def sample_slice_members(
        self, name: str, node_ids: list[int], seed: int = 0
    ) -> list[int]:
        """Choose which physical nodes host a slice (for deployments)."""
        size = min(self.assigned[name], len(node_ids))
        rng = random.Random(f"slice-members-{self.seed}-{seed}-{name}")
        return rng.sample(node_ids, size)
