"""Workload generators for the paper's evaluation.

* :mod:`repro.workloads.events` -- the query:churn event mixes of the
  Section 7.1 bandwidth experiments (Figures 9 and 10).
* :mod:`repro.workloads.slices` -- synthetic PlanetLab slice-size
  distribution calibrated to the Figure 2(a) CoMon/CoTop facts.
* :mod:`repro.workloads.jobs` -- synthetic HP utility-computing rendering
  trace in the shape of Figure 2(b).
* :mod:`repro.workloads.churn` -- the periodic group-churn driver of the
  Emulab dynamic-group experiments (Figures 12(b) and 13(a)).
* :mod:`repro.workloads.groups` -- a synthetic virtualized-enterprise
  inventory (floors/clusters/racks/services/VMs) for the Figure 1 queries.
"""

from repro.workloads.churn import GroupChurnDriver
from repro.workloads.events import EventMix, run_query_churn_workload
from repro.workloads.groups import DatacenterInventory
from repro.workloads.jobs import RenderingJobTrace
from repro.workloads.slices import SliceTrace

__all__ = [
    "DatacenterInventory",
    "EventMix",
    "GroupChurnDriver",
    "RenderingJobTrace",
    "SliceTrace",
    "run_query_churn_workload",
]
