"""Synthetic virtualized-enterprise inventory (paper Figure 1).

Figure 1 lists the queries data-center managers run: utilization by floor /
cluster / rack, VM counts by application and hypervisor, firewall audits,
service dashboards, and patch management.  This module populates a
:class:`~repro.core.cluster.MoaraCluster` with a plausible inventory so
those exact queries can be executed (see
``examples/datacenter_monitoring.py`` and
``benchmarks/bench_fig01_queries.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.cluster import MoaraCluster

__all__ = ["DatacenterInventory"]


@dataclass
class DatacenterInventory:
    """Attribute assignment for a simulated enterprise data center."""

    num_floors: int = 2
    clusters_per_floor: int = 3
    racks_per_cluster: int = 4
    applications: tuple[str, ...] = ("AppX", "AppY", "AppZ")
    services: tuple[str, ...] = ("ServiceX", "ServiceY")
    seed: int = 0
    #: node -> attribute map actually assigned (ground truth for tests)
    assignment: dict[int, dict] = field(default_factory=dict)

    def populate(self, cluster: MoaraCluster) -> None:
        """Assign every node a floor/cluster/rack plus software inventory."""
        rng = random.Random(f"inventory-{self.seed}")
        for node_id in cluster.node_ids:
            floor = rng.randrange(self.num_floors)
            cluster_idx = rng.randrange(self.clusters_per_floor)
            rack = rng.randrange(self.racks_per_cluster)
            app = rng.choice(self.applications)
            attrs = {
                "floor": f"F{floor}",
                "cluster": f"C{floor}{cluster_idx}",
                "rack": f"R{floor}{cluster_idx}{rack}",
                "is-vm": rng.random() < 0.6,
                "hypervisor": rng.choice(("ESX", "VMWare", "Xen", "none")),
                "app": app,
                "app-version": rng.choice((1, 2)),
                "firewall": rng.random() < 0.7,
                "sygate-firewall": rng.random() < 0.3,
                "cpu-util": round(rng.uniform(0.0, 100.0), 1),
                "mem-util": round(rng.uniform(0.0, 100.0), 1),
                "response-time-ms": round(rng.uniform(1.0, 500.0), 1),
                "up": rng.random() < 0.97,
            }
            for service in self.services:
                attrs[service] = rng.random() < 0.4
            for name, value in attrs.items():
                cluster.set_attribute(node_id, name, value)
            self.assignment[node_id] = attrs

    # ------------------------------------------------------------------
    # the Figure 1 query catalogue
    # ------------------------------------------------------------------

    @staticmethod
    def figure1_queries() -> list[tuple[str, str]]:
        """(task, query text) pairs mirroring the Figure 1 table."""
        return [
            (
                "Resource allocation: average utilization on floor F0",
                "SELECT AVG(cpu-util) WHERE floor = 'F0'",
            ),
            (
                "Resource allocation: machines/VMs in cluster C01",
                "SELECT COUNT(*) WHERE cluster = 'C01'",
            ),
            (
                "VM migration: average utilization of VMs running AppX v1 or v2",
                "SELECT AVG(cpu-util) WHERE is-vm = true AND "
                "(app = 'AppX' AND app-version = 1 OR app = 'AppX' AND app-version = 2)",
            ),
            (
                "VM migration: VMs running AppX that are VMWare based",
                "SELECT LIST(app-version) WHERE is-vm = true AND app = 'AppX' "
                "AND hypervisor = 'VMWare'",
            ),
            (
                "Auditing: count of VMs/machines running a firewall",
                "SELECT COUNT(*) WHERE firewall = true",
            ),
            (
                "Auditing: VMs running ESX server and Sygate firewall",
                "SELECT COUNT(*) WHERE is-vm = true AND hypervisor = 'ESX' "
                "AND sygate-firewall = true",
            ),
            (
                "Dashboard: max response time for ServiceX",
                "SELECT MAX(response-time-ms) WHERE ServiceX = true",
            ),
            (
                "Dashboard: machines up and running ServiceX",
                "SELECT COUNT(*) WHERE up = true AND ServiceX = true",
            ),
            (
                "Patch management: version numbers used for ServiceX",
                "SELECT LIST(app-version) WHERE ServiceX = true",
            ),
            (
                "Patch management: machines in cluster C00 running AppX v2",
                "SELECT COUNT(*) WHERE cluster = 'C00' AND app = 'AppX' "
                "AND app-version = 2",
            ),
        ]
