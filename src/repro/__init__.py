"""Reproduction of *Moara: Flexible and Scalable Group-Based Querying
System* (Ko et al., MIDDLEWARE 2008).

Packages:

* :mod:`repro.core` -- Moara itself: group trees, dynamic maintenance,
  the separate query plane, and the composite-query planner.
* :mod:`repro.pastry` -- the Pastry DHT substrate (FreePastry stand-in).
* :mod:`repro.sim` -- discrete-event simulation, latency models, and
  message accounting.
* :mod:`repro.sdims` -- the SDIMS-style global-aggregation baseline.
* :mod:`repro.baselines` -- the centralized-aggregator baseline.
* :mod:`repro.workloads` -- trace generators and query/churn event mixes.
"""

__version__ = "1.0.0"

from repro.core import MoaraCluster, Query, QueryResult, parse_query

__all__ = ["MoaraCluster", "Query", "QueryResult", "parse_query", "__version__"]
