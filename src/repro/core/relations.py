"""Semantic relations between simple predicates (paper Figures 7 and 8).

Section 6.3 ("Using Semantic Optimizations"): Moara infers relations between
groups by analyzing the comparison operators that define them -- e.g. from
``A = {memory < 2G}`` and ``B = {memory < 1G}`` it infers ``B ⊆ A`` -- and
uses the relations to shrink covers (Figure 7) and to recognize complements
(implicit *not* support).

We implement the inference with exact interval algebra over the value
domain of the shared attribute:

* numeric and string values: sets of intervals over a totally ordered,
  *dense* domain.  Density is the conservative assumption: over the dense
  rationals ``(2, 3)`` is non-empty, so for integer-valued attributes we may
  miss an optimization (reporting OVERLAP where the sets are truly
  disjoint) but never claim disjointness/complement that does not hold.
* boolean values: exact set algebra over the two-point domain
  ``{false, true}``; this is what lets Moara see that ``(X != true)`` is the
  same group as ``(X = false)``.

Predicates over different attributes, or with incomparable value types, get
relation UNKNOWN and are never optimized.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Optional

from repro.core.predicates import Comparison, SimplePredicate

__all__ = ["IntervalSet", "Relation", "relation"]


class Relation(Enum):
    """How the satisfying sets of two predicates relate (Figure 8)."""

    EQUIVALENT = "equivalent"  # A = B
    SUBSET = "subset"  # A ⊂ B (proper)
    SUPERSET = "superset"  # A ⊃ B (proper)
    DISJOINT = "disjoint"  # A ∩ B = ∅, A ∪ B ≠ universe
    COMPLEMENT = "complement"  # A ∩ B = ∅ and A ∪ B = universe
    OVERLAP = "overlap"  # proper intersection
    UNKNOWN = "unknown"  # incomparable (different attrs/types)


# ----------------------------------------------------------------------
# interval algebra over a dense totally ordered domain
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Interval:
    """One interval; ``lo=None`` means -inf and ``hi=None`` means +inf."""

    lo: Optional[Any]
    lo_incl: bool
    hi: Optional[Any]
    hi_incl: bool

    def is_valid(self) -> bool:
        if self.lo is None or self.hi is None:
            return True
        if self.lo < self.hi:
            return True
        return self.lo == self.hi and self.lo_incl and self.hi_incl


class IntervalSet:
    """A normalized union of disjoint, non-adjacent intervals."""

    def __init__(self, intervals: list[_Interval]) -> None:
        self.intervals = _normalize(intervals)

    # constructors -------------------------------------------------------

    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls([])

    @classmethod
    def universe(cls) -> "IntervalSet":
        return cls([_Interval(None, False, None, False)])

    @classmethod
    def from_predicate(cls, pred: SimplePredicate) -> "IntervalSet":
        value, op = pred.value, pred.op
        if op is Comparison.LT:
            return cls([_Interval(None, False, value, False)])
        if op is Comparison.LE:
            return cls([_Interval(None, False, value, True)])
        if op is Comparison.GT:
            return cls([_Interval(value, False, None, False)])
        if op is Comparison.GE:
            return cls([_Interval(value, True, None, False)])
        if op is Comparison.EQ:
            return cls([_Interval(value, True, value, True)])
        # NE: everything except the point.
        return cls(
            [
                _Interval(None, False, value, False),
                _Interval(value, False, None, False),
            ]
        )

    # predicates ----------------------------------------------------------

    def is_empty(self) -> bool:
        return not self.intervals

    def is_universe(self) -> bool:
        return self.intervals == [_Interval(None, False, None, False)]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntervalSet) and self.intervals == other.intervals

    def __hash__(self) -> int:  # pragma: no cover - sets of IntervalSets unused
        return hash(tuple(self.intervals))

    # algebra --------------------------------------------------------------

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        result = []
        for a in self.intervals:
            for b in other.intervals:
                merged = _intersect_one(a, b)
                if merged is not None:
                    result.append(merged)
        return IntervalSet(result)

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(self.intervals + other.intervals)

    def contains_set(self, other: "IntervalSet") -> bool:
        """True when ``other ⊆ self``."""
        return other.intersect(self) == other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        for iv in self.intervals:
            lo = "-inf" if iv.lo is None else repr(iv.lo)
            hi = "+inf" if iv.hi is None else repr(iv.hi)
            parts.append(
                f"{'[' if iv.lo_incl else '('}{lo}, {hi}{']' if iv.hi_incl else ')'}"
            )
        return "IntervalSet(" + " U ".join(parts) + ")" if parts else "IntervalSet(∅)"


def _lo_key(iv: _Interval) -> tuple:
    # -inf sorts first; at equal bounds, inclusive starts first.
    return (iv.lo is not None, iv.lo, not iv.lo_incl)


def _normalize(intervals: list[_Interval]) -> list[_Interval]:
    valid = [iv for iv in intervals if iv.is_valid()]
    if not valid:
        return []
    valid.sort(key=_lo_key)
    merged = [valid[0]]
    for current in valid[1:]:
        last = merged[-1]
        if _gap_between(last, current):
            merged.append(current)
        else:
            merged[-1] = _hull(last, current)
    return merged


def _gap_between(a: _Interval, b: _Interval) -> bool:
    """True when a real gap separates ``a`` (lower) from ``b``."""
    if a.hi is None or b.lo is None:
        return False
    if a.hi > b.lo:
        return False
    if a.hi < b.lo:
        return True
    # Touching bounds: contiguous unless both endpoints are exclusive.
    return not (a.hi_incl or b.lo_incl)


def _hull(a: _Interval, b: _Interval) -> _Interval:
    """Smallest interval covering two overlapping/adjacent intervals
    (``a.lo`` is known to be <= ``b.lo`` from sorting)."""
    if a.hi is None:
        hi, hi_incl = None, False
    elif b.hi is None:
        hi, hi_incl = None, False
    elif a.hi > b.hi:
        hi, hi_incl = a.hi, a.hi_incl
    elif b.hi > a.hi:
        hi, hi_incl = b.hi, b.hi_incl
    else:
        hi, hi_incl = a.hi, a.hi_incl or b.hi_incl
    return _Interval(a.lo, a.lo_incl, hi, hi_incl)


def _intersect_one(a: _Interval, b: _Interval) -> Optional[_Interval]:
    # Lower bound: the larger of the two.
    if a.lo is None:
        lo, lo_incl = b.lo, b.lo_incl
    elif b.lo is None:
        lo, lo_incl = a.lo, a.lo_incl
    elif a.lo > b.lo:
        lo, lo_incl = a.lo, a.lo_incl
    elif b.lo > a.lo:
        lo, lo_incl = b.lo, b.lo_incl
    else:
        lo, lo_incl = a.lo, a.lo_incl and b.lo_incl
    # Upper bound: the smaller of the two.
    if a.hi is None:
        hi, hi_incl = b.hi, b.hi_incl
    elif b.hi is None:
        hi, hi_incl = a.hi, a.hi_incl
    elif a.hi < b.hi:
        hi, hi_incl = a.hi, a.hi_incl
    elif b.hi < a.hi:
        hi, hi_incl = b.hi, b.hi_incl
    else:
        hi, hi_incl = a.hi, a.hi_incl and b.hi_incl
    candidate = _Interval(lo, lo_incl, hi, hi_incl)
    return candidate if candidate.is_valid() else None


# ----------------------------------------------------------------------
# relation inference
# ----------------------------------------------------------------------


def _value_kind(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    return "other"


def _boolean_set(pred: SimplePredicate) -> Optional[frozenset]:
    """The subset of {False, True} satisfying a boolean predicate."""
    domain = (False, True)
    try:
        return frozenset(v for v in domain if pred.op.apply(v, pred.value))
    except Exception:  # pragma: no cover - defensive
        return None


def relation(a: SimplePredicate, b: SimplePredicate) -> Relation:
    """Infer the Figure 8 relation between two simple predicates."""
    if a.attr != b.attr:
        return Relation.UNKNOWN
    kind_a, kind_b = _value_kind(a.value), _value_kind(b.value)
    if kind_a != kind_b or kind_a == "other":
        return Relation.UNKNOWN

    if kind_a == "bool":
        set_a, set_b = _boolean_set(a), _boolean_set(b)
        if set_a is None or set_b is None:
            return Relation.UNKNOWN
        if set_a == set_b:
            return Relation.EQUIVALENT
        if not (set_a & set_b):
            both = set_a | set_b
            return (
                Relation.COMPLEMENT
                if both == {False, True}
                else Relation.DISJOINT
            )
        if set_a < set_b:
            return Relation.SUBSET
        if set_b < set_a:
            return Relation.SUPERSET
        return Relation.OVERLAP

    set_a = IntervalSet.from_predicate(a)
    set_b = IntervalSet.from_predicate(b)
    if set_a == set_b:
        return Relation.EQUIVALENT
    intersection = set_a.intersect(set_b)
    if intersection.is_empty():
        union = set_a.union(set_b)
        return (
            Relation.COMPLEMENT if union.is_universe() else Relation.DISJOINT
        )
    if intersection == set_a:
        return Relation.SUBSET
    if intersection == set_b:
        return Relation.SUPERSET
    return Relation.OVERLAP
