"""Group predicates: AST, evaluation, negation, and CNF conversion.

Paper Section 3.1: "A group-predicate ... is specified as a boolean
expression with *and* and *or* operators, over simple predicates of the
following form: (group-attribute op value), where op ∈ {<, >, =, ≤, ≥, ≠}.
Note that this set of operators allows us to implicitly support *not* in a
group predicate."

Accordingly the AST has no Not node: negation is pushed to the leaves where
it flips the comparison operator (De Morgan at And/Or, operator inversion at
simple predicates).

Section 6.3: composite predicates are rewritten to Conjunctive Normal Form;
every CNF clause (an *or* of simple predicates) is a structural cover for
the query.  :func:`to_cnf` performs that rewriting with absorption-based
minimization.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterable, Mapping

from repro.core.errors import PlanningError

__all__ = [
    "And",
    "Comparison",
    "Or",
    "Predicate",
    "SimplePredicate",
    "TruePredicate",
    "evaluate_cnf",
    "to_cnf",
]


class Comparison(Enum):
    """The six comparison operators of the paper's query model."""

    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "="
    NE = "!="

    @property
    def negated(self) -> "Comparison":
        """The complementary operator (`not (a < v)` is `a >= v`)."""
        return _NEGATIONS[self]

    def apply(self, left: Any, right: Any) -> bool:
        """Evaluate ``left op right`` defensively.

        Cross-type comparisons (e.g. a string attribute against a numeric
        constant) are treated as not-satisfied rather than raising, because
        attribute values on remote nodes are beyond the querier's control.
        """
        try:
            if self is Comparison.EQ:
                return bool(left == right)
            if self is Comparison.NE:
                return bool(left != right)
            if self is Comparison.LT:
                return bool(left < right)
            if self is Comparison.GT:
                return bool(left > right)
            if self is Comparison.LE:
                return bool(left <= right)
            return bool(left >= right)
        except TypeError:
            return False


_NEGATIONS = {
    Comparison.LT: Comparison.GE,
    Comparison.GE: Comparison.LT,
    Comparison.GT: Comparison.LE,
    Comparison.LE: Comparison.GT,
    Comparison.EQ: Comparison.NE,
    Comparison.NE: Comparison.EQ,
}

#: C-level comparison functions, keyed by operator: the evaluation hot
#: path (every query probes its predicate at every receiving node) uses
#: these instead of walking :meth:`Comparison.apply`'s branch chain.
_OP_FUNCS = {
    Comparison.EQ: operator.eq,
    Comparison.NE: operator.ne,
    Comparison.LT: operator.lt,
    Comparison.GT: operator.gt,
    Comparison.LE: operator.le,
    Comparison.GE: operator.ge,
}


class Predicate(ABC):
    """A group predicate over per-node attributes."""

    @abstractmethod
    def evaluate(self, attrs: Mapping[str, Any]) -> bool:
        """Does a node with these attributes belong to the group?"""

    @abstractmethod
    def negate(self) -> "Predicate":
        """The logical complement, with negation pushed to the leaves."""

    @abstractmethod
    def attributes(self) -> set[str]:
        """All attribute names mentioned."""

    @abstractmethod
    def simple_predicates(self) -> set["SimplePredicate"]:
        """All simple-predicate leaves."""

    @abstractmethod
    def _canonical(self) -> str:
        """Build the canonical form (uncached; see :meth:`canonical`)."""

    def canonical(self) -> str:
        """A stable textual key (used to identify per-predicate tree state).

        Computed once per instance and cached: predicates are immutable,
        and the simulator keys tree state, caches, and message routing by
        this string on every delivered message, so rebuilding it each time
        was a measurable hot spot.
        """
        cached = self.__dict__.get("_canonical_cache")
        if cached is None:
            cached = self._canonical()
            # Frozen dataclasses forbid plain attribute assignment; the
            # cache is not a field, so it never affects eq/hash/repr.
            object.__setattr__(self, "_canonical_cache", cached)
        return cached

    def __str__(self) -> str:
        return self.canonical()


#: sentinel distinguishing "attribute absent" from any real value.
_MISSING = object()


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return f"'{value}'"
    return repr(value)


@dataclass(frozen=True)
class SimplePredicate(Predicate):
    """``(group-attribute op value)`` -- the unit of group membership."""

    attr: str
    op: Comparison
    value: Any

    def __post_init__(self) -> None:
        # Resolve the comparison once per instance to a C-level operator
        # (same defensive cross-type semantics as :meth:`Comparison.apply`).
        object.__setattr__(self, "_op_fn", _OP_FUNCS[self.op])

    def evaluate(self, attrs: Mapping[str, Any]) -> bool:
        # Single probe (hot path: every query evaluates its predicate at
        # every receiving node); absent attributes never satisfy.
        found = attrs.get(self.attr, _MISSING)
        if found is _MISSING:
            return False
        try:
            return bool(self._op_fn(found, self.value))
        except TypeError:
            return False

    def negate(self) -> "SimplePredicate":
        return SimplePredicate(self.attr, self.op.negated, self.value)

    def attributes(self) -> set[str]:
        return {self.attr}

    def simple_predicates(self) -> set["SimplePredicate"]:
        return {self}

    def _canonical(self) -> str:
        return f"({self.attr} {self.op.value} {_format_value(self.value)})"


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """The default group: every node in the system (paper Section 3.1,
    "If no group is specified, the default is to aggregate values from all
    nodes")."""

    def evaluate(self, attrs: Mapping[str, Any]) -> bool:
        return True

    def negate(self) -> "Predicate":
        # The complement of "everything" never occurs in well-formed queries;
        # encode it as an unsatisfiable comparison on a reserved attribute.
        return SimplePredicate("__nothing__", Comparison.EQ, True)

    def attributes(self) -> set[str]:
        return set()

    def simple_predicates(self) -> set[SimplePredicate]:
        return set()

    def _canonical(self) -> str:
        return "*"


def _flatten(
    parts: Iterable[Predicate], kind: type
) -> tuple[Predicate, ...]:
    """Flatten nested And(And(...)) / Or(Or(...)) and de-duplicate parts."""
    flat: list[Predicate] = []
    seen: set[str] = set()
    for part in parts:
        inner = part.parts if isinstance(part, kind) else (part,)
        for p in inner:
            key = p.canonical()
            if key not in seen:
                seen.add(key)
                flat.append(p)
    return tuple(flat)


@dataclass(frozen=True, init=False)
class And(Predicate):
    """Conjunction (set intersection of groups)."""

    parts: tuple[Predicate, ...]

    def __init__(self, *parts: Predicate) -> None:
        if not parts:
            raise ValueError("And requires at least one part")
        object.__setattr__(self, "parts", _flatten(parts, And))

    def evaluate(self, attrs: Mapping[str, Any]) -> bool:
        for part in self.parts:  # plain loop: no genexpr frame per call
            if not part.evaluate(attrs):
                return False
        return True

    def negate(self) -> "Predicate":
        negated = [part.negate() for part in self.parts]
        return negated[0] if len(negated) == 1 else Or(*negated)

    def attributes(self) -> set[str]:
        return set().union(*(part.attributes() for part in self.parts))

    def simple_predicates(self) -> set[SimplePredicate]:
        return set().union(*(part.simple_predicates() for part in self.parts))

    def _canonical(self) -> str:
        inner = " and ".join(sorted(part.canonical() for part in self.parts))
        return f"({inner})"


@dataclass(frozen=True, init=False)
class Or(Predicate):
    """Disjunction (set union of groups)."""

    parts: tuple[Predicate, ...]

    def __init__(self, *parts: Predicate) -> None:
        if not parts:
            raise ValueError("Or requires at least one part")
        object.__setattr__(self, "parts", _flatten(parts, Or))

    def evaluate(self, attrs: Mapping[str, Any]) -> bool:
        for part in self.parts:  # plain loop: no genexpr frame per call
            if part.evaluate(attrs):
                return True
        return False

    def negate(self) -> "Predicate":
        negated = [part.negate() for part in self.parts]
        return negated[0] if len(negated) == 1 else And(*negated)

    def attributes(self) -> set[str]:
        return set().union(*(part.attributes() for part in self.parts))

    def simple_predicates(self) -> set[SimplePredicate]:
        return set().union(*(part.simple_predicates() for part in self.parts))

    def _canonical(self) -> str:
        inner = " or ".join(sorted(part.canonical() for part in self.parts))
        return f"({inner})"


# ----------------------------------------------------------------------
# CNF conversion (paper Section 6.3, Figure 6)
# ----------------------------------------------------------------------

Clause = frozenset  # of SimplePredicate
MAX_CNF_CLAUSES = 4096


def to_cnf(predicate: Predicate) -> list[Clause]:
    """Rewrite a predicate into CNF clauses using the distributive laws.

    Returns a list of clauses; each clause is a frozenset of simple
    predicates whose *or* must hold.  An empty list means "always true"
    (the TruePredicate / global group).  Absorption removes redundant
    clauses: if clause A ⊆ clause B then B is implied by A and dropped.
    """
    clauses = _cnf_clauses(predicate)
    return _absorb(clauses)


def _cnf_clauses(predicate: Predicate) -> list[Clause]:
    if isinstance(predicate, TruePredicate):
        return []
    if isinstance(predicate, SimplePredicate):
        return [frozenset([predicate])]
    if isinstance(predicate, And):
        result: list[Clause] = []
        for part in predicate.parts:
            result.extend(_cnf_clauses(part))
        return result
    if isinstance(predicate, Or):
        # Distribute: the or of CNFs is the cross product of their clauses.
        result = [frozenset()]
        for part in predicate.parts:
            part_clauses = _cnf_clauses(part)
            if not part_clauses:
                return []  # or with "always true" is always true
            combined = [
                existing | clause
                for existing in result
                for clause in part_clauses
            ]
            if len(combined) > MAX_CNF_CLAUSES:
                raise PlanningError(
                    f"CNF expansion exceeds {MAX_CNF_CLAUSES} clauses; "
                    "simplify the query predicate"
                )
            result = combined
        return result
    raise TypeError(f"unknown predicate type: {type(predicate).__name__}")


def _absorb(clauses: list[Clause]) -> list[Clause]:
    """Drop duplicate and superset clauses (absorption law)."""
    unique = sorted(set(clauses), key=len)
    kept: list[Clause] = []
    for clause in unique:
        if not any(existing <= clause for existing in kept):
            kept.append(clause)
    return kept


def evaluate_cnf(clauses: list[Clause], attrs: Mapping[str, Any]) -> bool:
    """Evaluate a CNF clause list against an attribute map (for tests)."""
    return all(
        any(literal.evaluate(attrs) for literal in clause)
        for clause in clauses
    )
