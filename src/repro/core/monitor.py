"""Periodic one-shot monitoring (paper Section 1).

"a user interested in monitoring groups continually can invoke one-shot
queries periodically."  :class:`PeriodicMonitor` does exactly that: it
re-submits a query every ``period`` seconds of simulated time, collects the
results, and invokes an optional callback per sample -- the pattern behind
dashboards built on Moara.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.core.cluster import MoaraCluster
from repro.core.parser import parse_query
from repro.core.query import Query, QueryResult

__all__ = ["PeriodicMonitor"]

SampleCallback = Callable[[QueryResult], None]


@dataclass
class PeriodicMonitor:
    """Re-runs one query on a fixed period of simulated time."""

    cluster: MoaraCluster
    query: Union[str, Query]
    period: float
    callback: Optional[SampleCallback] = None
    #: collected (time, result) samples
    samples: list[tuple[float, QueryResult]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if isinstance(self.query, str):
            self.query = parse_query(self.query)
        self._running = False
        self._outstanding: Optional[str] = None

    def start(self) -> None:
        """Begin sampling; the first query fires one period from now."""
        if self._running:
            return
        self._running = True
        self.cluster.engine.schedule(self.period, self._tick)

    def stop(self) -> None:
        """Stop issuing new samples (an in-flight query still completes)."""
        self._running = False

    @property
    def values(self) -> list[object]:
        """Just the sampled aggregate values, in order."""
        return [result.value for _time, result in self.samples]

    def _tick(self) -> None:
        if not self._running:
            return
        if self._outstanding is None:
            # Skip a beat rather than pile up queries if the previous
            # sample has not come back yet.
            self._outstanding = self.cluster.frontend.submit(
                self.query, callback=self._on_result
            )
        self.cluster.engine.schedule(self.period, self._tick)

    def _on_result(self, result: QueryResult) -> None:
        self._outstanding = None
        self.samples.append((self.cluster.engine.now, result))
        if self.callback is not None:
            self.callback(result)
