"""Consistent-hash partitioning of the query space across front-ends.

The ROADMAP's millions-of-users fan-in needs N cooperating front-ends,
and the partitioning has to be *sticky*: PR 1's plan cache, group-size
cache, and shared-sub-query batching all live per front-end, so identical
queries must keep landing on the same shard for those layers to stay
warm.  :class:`FrontendShardRouter` provides that assignment:

* queries are keyed by their **canonical text** (attribute + aggregate
  function signature + canonical predicate), so syntactic variants of
  one query -- ``a AND b`` vs ``b AND a`` -- route identically;
* the key is placed on a **consistent-hash ring** (MD5, the paper's own
  hash; a fixed number of virtual points per shard), so adding a front
  end remaps only ``~1/N`` of the key space instead of reshuffling every
  cached plan, exactly the Memcached-style scale-out move;
* the same ring also assigns an **owner shard** to every group key,
  which is what gives the shared group-size cache its single-writer
  discipline (see :class:`repro.core.plan_cache.SharedGroupSizeCache`).

Everything is derived from MD5 of stable text, never from Python's
randomized ``hash()``: the same query routes to the same shard across
processes, runs, and submission orderings.
"""

from __future__ import annotations

from bisect import bisect_left
from hashlib import md5
from typing import Iterable, Optional, Union

from repro.core.parser import parse_query
from repro.core.query import Query

__all__ = ["FrontendShardRouter", "canonical_query_text"]

#: virtual ring points per shard; enough for an even spread at the shard
#: counts the query plane runs (single digits to low tens).
DEFAULT_REPLICAS = 64


def canonical_query_text(query: Union[str, Query]) -> str:
    """The routing key for a query: its canonical textual identity.

    Parses strings (``parse_query`` is memoized, so repeated routing of
    the same text costs one dict probe) and normalizes both forms to
    ``attr | function signature | canonical predicate`` -- the same
    identity the front-end uses for sub-query sharing, so everything
    that could share a cache entry shares a shard.
    """
    if isinstance(query, str):
        query = parse_query(query)
    return (
        f"{query.attr}|{query.function.signature()}|"
        f"{query.predicate.canonical()}"
    )


def _hash_point(text: str) -> int:
    """A stable 64-bit ring position for a piece of text."""
    return int.from_bytes(md5(text.encode("utf-8")).digest()[:8], "big")


class FrontendShardRouter:
    """Consistent-hash assignment of keys to front-end shards ``0..N-1``.

    Shards are added one at a time (:meth:`add_shard`), mirroring
    ``MoaraCluster.add_frontend``; the ring keeps every shard's virtual
    points, so growth moves only the keys that fall into the new shard's
    arcs.
    """

    def __init__(
        self, num_shards: int = 0, replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if num_shards < 0:
            raise ValueError("num_shards must be >= 0")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self.num_shards = 0
        #: shard ids currently on the ring (the deployed plane's ring
        #: daemon removes departed shards; the simulated plane only adds).
        self.members: set[int] = set()
        #: sorted virtual points and their owning shard, as parallel
        #: arrays (bisect works on the points list).
        self._points: list[int] = []
        self._shards: list[int] = []
        for _ in range(num_shards):
            self.add_shard()

    def __len__(self) -> int:
        return len(self.members)

    @classmethod
    def from_members(
        cls, members: Iterable[int], replicas: int = DEFAULT_REPLICAS
    ) -> "FrontendShardRouter":
        """A ring holding exactly ``members`` (ring-daemon epochs rebuild
        their mirror through here; ids need not be contiguous)."""
        router = cls(replicas=replicas)
        for shard in sorted(set(members)):
            router.add_shard(shard)
        return router

    def add_shard(self, shard: Optional[int] = None) -> int:
        """Add one shard's virtual points to the ring; returns its id.

        Without an explicit ``shard`` the next free id is used (the
        simulated plane's append-only growth).  An explicit id lets the
        ring daemon re-admit a shard that was suspected dead: its virtual
        points are recomputed from the same ``shard:<id>:<replica>``
        labels, so exactly the arcs it owned before come back to it.
        """
        if shard is None:
            shard = self.num_shards
        elif shard < 0:
            raise ValueError("shard id must be >= 0")
        if shard in self.members:
            raise ValueError(f"shard {shard} is already on the ring")
        for replica in range(self.replicas):
            point = _hash_point(f"shard:{shard}:{replica}")
            index = bisect_left(self._points, point)
            self._points.insert(index, point)
            self._shards.insert(index, shard)
        self.members.add(shard)
        if shard >= self.num_shards:
            self.num_shards = shard + 1
        return shard

    def remove_shard(self, shard: int) -> None:
        """Drop a shard's virtual points from the ring (leave/suspect).

        Consistent hashing's removal guarantee: only the keys that mapped
        to the departed shard remap (each onto the next surviving point
        on the ring, spreading its ~1/N of the key space over everyone
        else); every other key keeps its owner.  ``num_shards`` is *not*
        decremented — shard ids are never reused, so a re-join via
        :meth:`add_shard` restores the exact previous assignment.
        """
        if shard not in self.members:
            raise ValueError(f"shard {shard} is not on the ring")
        self.members.discard(shard)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._shards)
            if owner != shard
        ]
        self._points = [point for point, _ in keep]
        self._shards = [owner for _, owner in keep]

    def shard_for(self, key: str, limit: Optional[int] = None) -> int:
        """The shard owning ``key``.

        ``limit`` restricts the answer to shards ``< limit`` (used when a
        caller spreads work over only the first *k* front-ends): the ring
        walk skips points of out-of-range shards, which keeps the
        restricted assignment consistent with the full one for every key
        that already mapped inside the range.
        """
        if not self._points:
            raise ValueError("router has no shards")
        bound = self.num_shards if limit is None else limit
        if bound < 1:
            raise ValueError("limit must be >= 1")
        points = self._points
        shards = self._shards
        n = len(points)
        index = bisect_left(points, _hash_point(key))
        for step in range(n):
            shard = shards[(index + step) % n]
            if shard < bound:
                return shard
        raise AssertionError("ring contains no shard below the limit")

    def route(
        self, query: Union[str, Query], limit: Optional[int] = None
    ) -> int:
        """Shard for a query (by canonical query text)."""
        return self.shard_for(canonical_query_text(query), limit=limit)

    def owner(self, group_key: str) -> int:
        """The single writer shard for a group's shared-cache entry."""
        return self.shard_for(group_key)
