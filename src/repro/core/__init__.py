"""Moara core: the paper's primary contribution.

Public API tour
---------------

Build a deployment, define groups, and query them::

    from repro.core import MoaraCluster

    cluster = MoaraCluster(num_nodes=100, seed=1)
    cluster.set_group("ServiceX", members=cluster.node_ids[:10])
    for node_id in cluster.node_ids:
        cluster.set_attribute(node_id, "CPU-Util", 42.0)

    result = cluster.query("SELECT AVG(CPU-Util) WHERE ServiceX = true")
    print(result.value, result.cover, result.latency)

Key modules:

* :mod:`repro.core.cluster` -- deployment harness (`MoaraCluster`).
* :mod:`repro.core.moara_node` -- the per-node protocol engine.
* :mod:`repro.core.tree_state` -- Sections 4-5 group-tree state.
* :mod:`repro.core.adapt` -- dynamic-maintenance adaptation policy.
* :mod:`repro.core.planner` -- Section 6 composite-query planning.
* :mod:`repro.core.plan_cache` -- front-end plan & group-size caches.
* :mod:`repro.core.result_cache` -- root-side result cache and
  cross-front-end in-flight execution sharing.
* :mod:`repro.core.parser` -- the SQL-like query language.
* :mod:`repro.core.aggregation` -- partially aggregatable functions.
* :mod:`repro.core.relations` -- Figure 8 semantic-relation inference.
"""

from repro.core.adapt import AdaptationConfig, Adaptor, MaintenancePolicy
from repro.core.adaptive_ttl import AdaptiveTTL, ChurnTracker
from repro.core.aggregation import AggregateFunction, Histogram, get_function
from repro.core.attributes import AttributeStore
from repro.core.cluster import MoaraCluster
from repro.core.derived import DerivedAttribute, install_derived
from repro.core.gc import (
    GCPolicy,
    IdleTimeoutGC,
    KeepLastKGC,
    LeastFrequentGC,
    NoGC,
)
from repro.core.monitor import PeriodicMonitor
from repro.core.errors import (
    MoaraError,
    ParseError,
    PlanningError,
    QueryTimeoutError,
    UnknownAggregateError,
)
from repro.core.frontend import Frontend, FrontendConfig, ProbePolicy
from repro.core.moara_node import MoaraConfig, MoaraNode, NodeConfig
from repro.core.parser import parse_predicate, parse_query
from repro.core.plan_cache import (
    CacheStats,
    GroupSizeCache,
    PlanCache,
    ShardedSizeCache,
    SharedGroupSizeCache,
)
from repro.core.shard_router import FrontendShardRouter, canonical_query_text
from repro.core.result_cache import (
    CachedResult,
    InflightTable,
    ResultCache,
    ResultCacheStats,
)
from repro.core.planner import (
    QueryPlan,
    SemanticContext,
    choose_cover,
    plan_predicate,
)
from repro.core.predicates import (
    And,
    Comparison,
    Or,
    Predicate,
    SimplePredicate,
    TruePredicate,
    to_cnf,
)
from repro.core.query import Query, QueryResult
from repro.core.relations import Relation, relation

__all__ = [
    "AdaptationConfig",
    "AdaptiveTTL",
    "Adaptor",
    "AggregateFunction",
    "And",
    "AttributeStore",
    "ChurnTracker",
    "Comparison",
    "DerivedAttribute",
    "Frontend",
    "FrontendConfig",
    "FrontendShardRouter",
    "CacheStats",
    "GCPolicy",
    "GroupSizeCache",
    "Histogram",
    "IdleTimeoutGC",
    "KeepLastKGC",
    "LeastFrequentGC",
    "NoGC",
    "PeriodicMonitor",
    "PlanCache",
    "install_derived",
    "MaintenancePolicy",
    "MoaraCluster",
    "MoaraConfig",
    "MoaraError",
    "MoaraNode",
    "NodeConfig",
    "CachedResult",
    "InflightTable",
    "ResultCache",
    "ResultCacheStats",
    "Or",
    "ParseError",
    "PlanningError",
    "Predicate",
    "ProbePolicy",
    "Query",
    "QueryPlan",
    "QueryResult",
    "QueryTimeoutError",
    "Relation",
    "SemanticContext",
    "ShardedSizeCache",
    "SharedGroupSizeCache",
    "SimplePredicate",
    "TruePredicate",
    "UnknownAggregateError",
    "canonical_query_text",
    "choose_cover",
    "get_function",
    "parse_predicate",
    "parse_query",
    "plan_predicate",
    "relation",
    "to_cnf",
]
