"""One-stop deployment harness: overlay + network + agents + front-end.

:class:`MoaraCluster` assembles a complete simulated Moara deployment and
offers a synchronous ``query()`` API by driving the discrete-event engine
until the answer arrives.  All examples, tests, and benchmarks build on it.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Union

from repro.core.frontend import Frontend, FrontendConfig, ProbePolicy
from repro.core.moara_node import MoaraConfig, MoaraNode
from repro.core.parser import parse_predicate
from repro.core.planner import SemanticContext
from repro.core.predicates import Predicate
from repro.core.query import Query, QueryResult
from repro.core.errors import QueryTimeoutError
from repro.pastry.idspace import IdSpace
from repro.pastry.overlay import Overlay
from repro.sim.engine import Engine
from repro.sim.latency import LatencyModel, ZeroLatencyModel
from repro.sim.network import Network
from repro.sim.stats import MessageStats

__all__ = ["MoaraCluster"]

FRONTEND_ID = -1


class MoaraCluster:
    """A complete simulated Moara deployment."""

    def __init__(
        self,
        num_nodes: int,
        seed: int = 0,
        latency_model: Optional[
            Union[LatencyModel, Callable[[list[int]], LatencyModel]]
        ] = None,
        config: Optional[MoaraConfig] = None,
        space: Optional[IdSpace] = None,
        probe_policy: ProbePolicy = ProbePolicy.COMPOSITE,
        semantics: Optional[SemanticContext] = None,
        frontend_config: Optional[FrontendConfig] = None,
        num_frontends: int = 1,
        detailed_bytes: bool = False,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("cluster needs at least one node")
        if num_frontends < 1:
            raise ValueError("cluster needs at least one front-end")
        self.engine = Engine()
        # Counts-only stats by default; pass detailed_bytes=True to restore
        # per-message byte estimation for bandwidth analysis (slower).
        self.stats = MessageStats(detailed_bytes=detailed_bytes)
        self.network = Network(self.engine, ZeroLatencyModel(), self.stats)
        #: qids the current synchronous drive is waiting on (completion
        #: waiter registry; None when no drive is active).  Front-ends
        #: signal completions into :meth:`_signal_completion`, which stops
        #: the engine once the set drains -- no per-event predicate polling.
        self._waiters: Optional[set[str]] = None
        self.overlay = Overlay(space or IdSpace())
        self.config = config or MoaraConfig()
        self.nodes: dict[int, MoaraNode] = {}
        self._seed = seed
        self._next_seed = seed + 1

        ids = self.overlay.generate_ids(num_nodes, seed=seed)
        frontend_ids = [FRONTEND_ID - i for i in range(num_frontends)]
        # Latency models that depend on the membership (e.g. the WAN model's
        # cluster/straggler assignment) are built from a factory once the
        # ids are known; front-end ids are included as the client machines.
        if callable(latency_model) and not isinstance(
            latency_model, LatencyModel
        ):
            latency_model = latency_model(ids + frontend_ids)
        if latency_model is not None:
            self.network.set_latency_model(latency_model)
        for node_id in ids:
            node = MoaraNode(node_id, self.overlay, self.network, self.config)
            self.nodes[node_id] = node
            self.network.attach(node)
        # Subscribe before joining so reconfiguration callbacks always fire,
        # but the initial bulk join needs no repair (no state exists yet).
        self.overlay.add_listener(self._on_membership_change)
        self.overlay.bulk_join(ids)

        # All front-ends share one SemanticContext, so declared relations
        # (and the plan-cache invalidation its version drives) stay
        # consistent across the whole query plane.
        self.semantics = semantics or SemanticContext()
        self._probe_policy = probe_policy
        self._frontend_config = frontend_config
        #: cooperating front-ends sharing this cluster (ids -1, -2, ...).
        self.frontends: list[Frontend] = []
        for _ in range(num_frontends):
            self.add_frontend()
        #: the default front-end (back-compat: ``cluster.frontend``).
        self.frontend = self.frontends[0]

    def add_frontend(
        self, config: Optional[FrontendConfig] = None
    ) -> Frontend:
        """Attach one more front-end to the shared cluster.

        Every front-end is an independent client machine with its own
        plan/size caches and in-flight tables; the node-side layer
        (:mod:`repro.core.result_cache`) is what absorbs the duplicate
        work *across* them.
        """
        frontend = Frontend(
            self.network,
            self.overlay,
            node_id=FRONTEND_ID - len(self.frontends),
            probe_policy=self._probe_policy,
            semantics=self.semantics,
            config=config or self._frontend_config,
        )
        frontend.on_query_complete = self._signal_completion
        self.frontends.append(frontend)
        return frontend

    # ------------------------------------------------------------------
    # membership plumbing
    # ------------------------------------------------------------------

    def _on_membership_change(self, joined: set[int], left: set[int]) -> None:
        for node in self.nodes.values():
            node.on_membership_change(joined, left)
        # Front-ends attach after the initial bulk join; later churn must
        # also resolve their in-flight probes/sub-queries (Section 7).
        for frontend in getattr(self, "frontends", ()):
            frontend.on_membership_change(joined, left)

    @property
    def node_ids(self) -> list[int]:
        """Sorted ids of all overlay members."""
        return self.overlay.node_ids

    def __len__(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # attribute management
    # ------------------------------------------------------------------

    def set_attribute(self, node_id: int, name: str, value: Any) -> bool:
        """Set one attribute on one node (group churn entry point)."""
        return self.nodes[node_id].attributes.set(name, value)

    def set_attribute_all(self, name: str, value: Any) -> None:
        """Set an attribute on every node."""
        for node in self.nodes.values():
            node.attributes.set(name, value)

    def set_group(
        self,
        attr: str,
        members: Iterable[int],
        member_value: Any = True,
        other_value: Any = False,
    ) -> None:
        """Define a group: ``attr = member_value`` on members, the fallback
        value elsewhere (so predicates evaluate on every node)."""
        member_set = set(members)
        for node_id, node in self.nodes.items():
            value = member_value if node_id in member_set else other_value
            node.attributes.set(attr, value)

    def members_satisfying(self, predicate: Union[str, Predicate]) -> set[int]:
        """Ground truth: nodes whose local attributes satisfy a predicate."""
        if isinstance(predicate, str):
            predicate = parse_predicate(predicate)
        return {
            node_id
            for node_id, node in self.nodes.items()
            if node_id in self.overlay
            and self.network.is_alive(node_id)
            and predicate.evaluate(node.attributes)
        }

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    # completion-waiter registry (event-driven drives)
    # ------------------------------------------------------------------

    def _signal_completion(self, qid: str) -> None:
        """Front-end completion signal: wake the engine when the current
        drive's last awaited query finishes."""
        waiters = self._waiters
        if waiters is not None and qid in waiters:
            waiters.discard(qid)
            if not waiters:
                self.engine.request_stop()

    def _drive_to_completion(
        self,
        submitted: list[tuple[Frontend, str]],
        max_events: int,
    ) -> bool:
        """Run the engine until every submitted query completes.

        Event-driven: front-ends report completions into the waiter
        registry and the last one stops the engine
        (:meth:`~repro.sim.engine.Engine.request_stop`), so no predicate
        is evaluated per event (``Engine.run_until`` is the documented
        slow path, kept for tests).  Returns False if the simulation went
        idle first; raises ``RuntimeError`` when ``max_events`` elapse
        without completion (livelock guard, matching ``run_until``).
        """
        waiting = {qid for fe, qid in submitted if qid not in fe.results}
        if not waiting:
            return True
        engine = self.engine
        self._waiters = waiting
        try:
            budget = max_events
            while True:
                before = engine.events_processed
                engine.run(max_events=budget)
                budget -= engine.events_processed - before
                if not waiting:
                    return True
                if engine.pending == 0:
                    return False  # idle with queries unanswered
                if budget <= 0:
                    raise RuntimeError(
                        f"{len(waiting)} queries not completed within "
                        f"{max_events} events"
                    )
        finally:
            self._waiters = None

    def query(
        self,
        query: Union[str, Query],
        max_events: int = 10_000_000,
        frontend: int = 0,
    ) -> QueryResult:
        """Submit a query and run the engine until its answer arrives.

        ``frontend`` selects which attached front-end submits it (index
        into :attr:`frontends`; the default is the primary one).
        """
        fe = self.frontends[frontend]
        qid = fe.submit(query)
        done = self._drive_to_completion([(fe, qid)], max_events)
        if not done:
            raise QueryTimeoutError(
                f"query {qid} did not complete (simulation went idle)"
            )
        return fe.results.pop(qid)

    def query_async(
        self, query: Union[str, Query], frontend: int = 0
    ) -> str:
        """Submit without driving the engine; returns the query id."""
        return self.frontends[frontend].submit(query)

    def query_concurrent(
        self,
        queries: list[Union[str, Query]],
        max_events: int = 10_000_000,
        frontends: Optional[int] = None,
    ) -> list[QueryResult]:
        """Submit a batch of concurrent queries and run them to completion.

        All queries enter the query plane in the same tick, so identical
        queries share probes and sub-queries; results come back in
        submission order.

        ``frontends`` spreads the batch round-robin over that many
        attached front-ends (default: all of them -- which, with the
        standard single front-end, reproduces the old behaviour).  With
        several front-ends, identical queries land at the *same tree
        roots* from different clients, which is exactly the duplicated
        work the node-side result cache and in-flight table absorb.
        """
        if frontends is not None and frontends < 1:
            raise ValueError("frontends must be >= 1")
        pool = (
            self.frontends
            if frontends is None
            else self.frontends[:frontends]
        )
        pairs = [
            (pool[i % len(pool)], query) for i, query in enumerate(queries)
        ]
        submitted = [(fe, fe.submit(query)) for fe, query in pairs]
        done = self._drive_to_completion(submitted, max_events)
        if not done:
            missing = [
                qid for fe, qid in submitted if qid not in fe.results
            ]
            raise QueryTimeoutError(
                f"{len(missing)} of {len(submitted)} concurrent queries "
                f"did not complete (simulation went idle)"
            )
        return [fe.results.pop(qid) for fe, qid in submitted]

    def result(self, qid: str) -> Optional[QueryResult]:
        """Fetch (and remove) a completed async result, if available."""
        return self.frontend.results.pop(qid, None)

    # ------------------------------------------------------------------
    # churn operations
    # ------------------------------------------------------------------

    def join_node(self, node_id: Optional[int] = None) -> int:
        """Add a fresh node to the overlay; returns its id."""
        if node_id is None:
            node_id = self.overlay.generate_ids(1, seed=self._next_seed)[0]
            self._next_seed += 1
        node = MoaraNode(node_id, self.overlay, self.network, self.config)
        self.nodes[node_id] = node
        self.network.attach(node)
        self.overlay.add_node(node_id)
        return node_id

    def leave_node(self, node_id: int) -> None:
        """Graceful departure: the overlay repairs immediately."""
        self.overlay.remove_node(node_id)
        self.network.detach(node_id)
        del self.nodes[node_id]

    def crash_node(
        self, node_id: int, detection_delay: float = 0.0
    ) -> None:
        """Fail-stop crash.  The node drops off the network at once; the
        overlay learns of the failure after ``detection_delay`` seconds
        (FreePastry's failure detector), at which point trees repair and
        stuck queries resolve."""
        self.network.crash(node_id)

        def detect() -> None:
            if node_id in self.overlay:
                self.overlay.remove_node(node_id)

        self.engine.schedule(detection_delay, detect)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.engine.now

    def run(self, seconds: float) -> None:
        """Advance the simulation by ``seconds``."""
        self.engine.run(until=self.engine.now + seconds)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain all pending protocol activity."""
        self.engine.run_until_idle(max_events=max_events)
