"""One-stop deployment harness: overlay + network + agents + front-end.

:class:`MoaraCluster` assembles a complete simulated Moara deployment and
offers a synchronous ``query()`` API by driving the discrete-event engine
until the answer arrives.  All examples, tests, and benchmarks build on it.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Union

from repro.core.adaptive_ttl import AdaptiveTTL
from repro.core.frontend import Frontend, FrontendConfig, ProbePolicy
from repro.core.moara_node import MoaraConfig, MoaraNode
from repro.core.parser import parse_predicate
from repro.core.plan_cache import SharedGroupSizeCache
from repro.core.planner import SemanticContext
from repro.core.predicates import Predicate
from repro.core.query import Query, QueryResult
from repro.core.errors import QueryTimeoutError
from repro.core.shard_router import FrontendShardRouter, canonical_query_text
from repro.pastry.idspace import IdSpace
from repro.pastry.overlay import Overlay
from repro.sim.engine import Engine
from repro.sim.latency import LatencyModel, ZeroLatencyModel
from repro.sim.network import Network
from repro.sim.stats import MessageStats

__all__ = ["MoaraCluster"]

FRONTEND_ID = -1


class MoaraCluster:
    """A complete simulated Moara deployment."""

    def __init__(
        self,
        num_nodes: int,
        seed: int = 0,
        latency_model: Optional[
            Union[LatencyModel, Callable[[list[int]], LatencyModel]]
        ] = None,
        config: Optional[MoaraConfig] = None,
        space: Optional[IdSpace] = None,
        probe_policy: ProbePolicy = ProbePolicy.COMPOSITE,
        semantics: Optional[SemanticContext] = None,
        frontend_config: Optional[FrontendConfig] = None,
        num_frontends: int = 1,
        detailed_bytes: bool = False,
        shared_size_cache: bool = True,
        kernel: Optional[str] = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("cluster needs at least one node")
        if num_frontends < 0:
            raise ValueError("num_frontends must be >= 0")
        # ``kernel`` selects the engine's scheduler ("wheel" or "heap");
        # None defers to MOARA_SIM_KERNEL / the wheel default.  Exposed so
        # differential tests can run the same cluster under both kernels.
        self.engine = Engine(kernel=kernel)
        # Counts-only stats by default; pass detailed_bytes=True to restore
        # per-message byte estimation for bandwidth analysis (slower).
        self.stats = MessageStats(detailed_bytes=detailed_bytes)
        self.network = Network(self.engine, ZeroLatencyModel(), self.stats)
        #: qids the current synchronous drive is waiting on (completion
        #: waiter registry; None when no drive is active).  Front-ends
        #: signal completions into :meth:`_signal_completion`, which stops
        #: the engine once the set drains -- no per-event predicate polling.
        self._waiters: Optional[set[str]] = None
        self.overlay = Overlay(space or IdSpace())
        self.config = config or MoaraConfig()
        self.nodes: dict[int, MoaraNode] = {}
        self._seed = seed
        self._next_seed = seed + 1

        ids = self.overlay.generate_ids(num_nodes, seed=seed)
        frontend_ids = [FRONTEND_ID - i for i in range(num_frontends)]
        # Latency models that depend on the membership (e.g. the WAN model's
        # cluster/straggler assignment) are built from a factory once the
        # ids are known; front-end ids are included as the client machines.
        if callable(latency_model) and not isinstance(
            latency_model, LatencyModel
        ):
            latency_model = latency_model(ids + frontend_ids)
        if latency_model is not None:
            self.network.set_latency_model(latency_model)
        for node_id in ids:
            node = MoaraNode(node_id, self.overlay, self.network, self.config)
            self.nodes[node_id] = node
            self.network.attach(node)
        # Subscribe before joining so reconfiguration callbacks always fire,
        # but the initial bulk join needs no repair (no state exists yet).
        self.overlay.add_listener(self._on_membership_change)
        self.overlay.bulk_join(ids)

        # All front-ends share one SemanticContext, so declared relations
        # (and the plan-cache invalidation its version drives) stay
        # consistent across the whole query plane.
        self.semantics = semantics or SemanticContext()
        self._probe_policy = probe_policy
        self._frontend_config = frontend_config
        #: consistent-hash partitioning of the query space over the
        #: attached front-ends: identical canonical query text always
        #: lands on the same shard, so every per-front-end cache stays
        #: warm as the plane scales out (see repro.core.shard_router).
        self.router = FrontendShardRouter()
        #: the cluster-wide group-size tier all shards read through (one
        #: probe per group cluster-wide, single-writer-per-group; see
        #: SharedGroupSizeCache).  ``shared_size_cache=False`` reproduces
        #: the PR 2 per-front-end private caches for comparison runs.
        fc = frontend_config or FrontendConfig()
        self.shared_sizes: Optional[SharedGroupSizeCache] = None
        if shared_size_cache:
            ttl_policy = AdaptiveTTL.if_enabled(
                fc.adaptive_size_ttl,
                fc.size_cache_ttl_min,
                fc.size_cache_ttl,
                fc.churn_window,
            )
            self.shared_sizes = SharedGroupSizeCache(
                router=self.router,
                ttl=fc.size_cache_ttl,
                ttl_policy=ttl_policy,
                on_ttl=(
                    self.stats.record_adaptive_ttl
                    if ttl_policy is not None
                    else None
                ),
            )
        #: cooperating front-ends sharing this cluster (ids -1, -2, ...).
        #: ``num_frontends=0`` builds a *frontend-less backend*: just the
        #: overlay, agents, and engine — the deployed query plane
        #: (:mod:`repro.serve.overlay_service`) hosts one of these and
        #: lets remote asyncio front-ends attach over sockets instead.
        self.frontends: list[Frontend] = []
        for _ in range(num_frontends):
            self.add_frontend()
        #: the default front-end (back-compat: ``cluster.frontend``);
        #: None on a frontend-less backend.
        self.frontend: Optional[Frontend] = (
            self.frontends[0] if self.frontends else None
        )

    def add_frontend(
        self, config: Optional[FrontendConfig] = None
    ) -> Frontend:
        """Attach one more front-end shard to the query plane.

        The router gains the new shard's ring points (consistent hashing:
        only ``~1/N`` of the query space remaps onto it), and the shard
        reads through the cluster's shared group-size tier.  A front-end
        constructed with an explicit non-default ``config`` gets a
        private size cache instead -- its TTL semantics may differ from
        the tier the cluster built from ``frontend_config``.
        """
        shard_id = self.router.add_shard()
        frontend = Frontend(
            self.network,
            self.overlay,
            node_id=FRONTEND_ID - len(self.frontends),
            probe_policy=self._probe_policy,
            semantics=self.semantics,
            config=config or self._frontend_config,
            shard_id=shard_id,
            shared_sizes=self.shared_sizes if config is None else None,
        )
        frontend.on_query_complete = self._signal_completion
        self.frontends.append(frontend)
        return frontend

    # ------------------------------------------------------------------
    # membership plumbing
    # ------------------------------------------------------------------

    def _on_membership_change(self, joined: set[int], left: set[int]) -> None:
        for node in self.nodes.values():
            node.on_membership_change(joined, left)
        # Churn feeds the shared size tier's adaptive-TTL policy once per
        # event (not once per shard) -- overlay membership changes raise
        # every group's observed churn rate.
        shared = getattr(self, "shared_sizes", None)
        if shared is not None and (joined or left):
            shared.on_membership_change(self.engine.now)
        # Front-ends attach after the initial bulk join; later churn must
        # also resolve their in-flight probes/sub-queries (Section 7).
        for frontend in getattr(self, "frontends", ()):
            frontend.on_membership_change(joined, left)

    @property
    def node_ids(self) -> list[int]:
        """Sorted ids of all overlay members."""
        return self.overlay.node_ids

    def __len__(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # attribute management
    # ------------------------------------------------------------------

    def set_attribute(self, node_id: int, name: str, value: Any) -> bool:
        """Set one attribute on one node (group churn entry point)."""
        return self.nodes[node_id].attributes.set(name, value)

    def set_attribute_all(self, name: str, value: Any) -> None:
        """Set an attribute on every node."""
        for node in self.nodes.values():
            node.attributes.set(name, value)

    def set_group(
        self,
        attr: str,
        members: Iterable[int],
        member_value: Any = True,
        other_value: Any = False,
    ) -> None:
        """Define a group: ``attr = member_value`` on members, the fallback
        value elsewhere (so predicates evaluate on every node)."""
        member_set = set(members)
        for node_id, node in self.nodes.items():
            value = member_value if node_id in member_set else other_value
            node.attributes.set(attr, value)

    def members_satisfying(self, predicate: Union[str, Predicate]) -> set[int]:
        """Ground truth: nodes whose local attributes satisfy a predicate."""
        if isinstance(predicate, str):
            predicate = parse_predicate(predicate)
        return {
            node_id
            for node_id, node in self.nodes.items()
            if node_id in self.overlay
            and self.network.is_alive(node_id)
            and predicate.evaluate(node.attributes)
        }

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    # completion-waiter registry (event-driven drives)
    # ------------------------------------------------------------------

    def _signal_completion(self, qid: str) -> None:
        """Front-end completion signal: wake the engine when the current
        drive's last awaited query finishes."""
        waiters = self._waiters
        if waiters is not None and qid in waiters:
            waiters.discard(qid)
            if not waiters:
                self.engine.request_stop()

    def _drive_to_completion(
        self,
        submitted: list[tuple[Frontend, str]],
        max_events: int,
    ) -> bool:
        """Run the engine until every submitted query completes.

        Event-driven: front-ends report completions into the waiter
        registry and the last one stops the engine
        (:meth:`~repro.sim.engine.Engine.request_stop`), so no predicate
        is evaluated per event (``Engine.run_until`` is the documented
        slow path, kept for tests).  Returns False if the simulation went
        idle first; raises ``RuntimeError`` when ``max_events`` elapse
        without completion (livelock guard, matching ``run_until``).
        """
        waiting = {qid for fe, qid in submitted if qid not in fe.results}
        if not waiting:
            return True
        engine = self.engine
        self._waiters = waiting
        try:
            budget = max_events
            while True:
                before = engine.events_processed
                engine.run(max_events=budget)
                budget -= engine.events_processed - before
                if not waiting:
                    return True
                if engine.pending == 0:
                    return False  # idle with queries unanswered
                if budget <= 0:
                    raise RuntimeError(
                        f"{len(waiting)} queries not completed within "
                        f"{max_events} events"
                    )
        finally:
            self._waiters = None

    def _route(
        self, query: Union[str, Query], limit: Optional[int] = None
    ) -> Frontend:
        """The shard a query belongs to (consistent hash of its
        canonical text; ``limit`` restricts to the first *k* shards)."""
        return self.frontends[
            self.router.shard_for(canonical_query_text(query), limit=limit)
        ]

    def query(
        self,
        query: Union[str, Query],
        max_events: int = 10_000_000,
        frontend: Optional[int] = None,
    ) -> QueryResult:
        """Submit a query and run the engine until its answer arrives.

        The query goes through the shard router by default (identical
        query text -> same front-end, so its plan/size caches and
        sub-query dedup stay warm); pass ``frontend`` to pin a specific
        attached front-end instead (index into :attr:`frontends`).  With
        a single front-end the two are the same.
        """
        fe = (
            self._route(query)
            if frontend is None
            else self.frontends[frontend]
        )
        qid = fe.submit(query)
        done = self._drive_to_completion([(fe, qid)], max_events)
        if not done:
            raise QueryTimeoutError(
                f"query {qid} did not complete (simulation went idle)"
            )
        return fe.results.pop(qid)

    def query_async(
        self, query: Union[str, Query], frontend: int = 0
    ) -> str:
        """Submit without driving the engine; returns the query id."""
        return self.frontends[frontend].submit(query)

    def query_concurrent(
        self,
        queries: list[Union[str, Query]],
        max_events: int = 10_000_000,
        frontends: Optional[int] = None,
        routing: str = "shard",
    ) -> list[QueryResult]:
        """Submit a batch of concurrent queries and run them to completion.

        All queries enter the query plane in the same tick, so identical
        queries share probes and sub-queries; results come back in
        submission order.

        ``frontends`` restricts the batch to the first *k* attached
        front-ends (default: all of them).  ``routing`` picks how the
        batch is spread over that pool:

        * ``"shard"`` (the default) -- through the shard router:
          identical canonical query text lands on the same front-end,
          independent of batch order or size, keeping dedup and the
          per-shard caches local; distinct queries spread by consistent
          hash.  With one front-end this degenerates to the old
          behaviour.
        * ``"round-robin"`` -- the PR 2 spread, deliberately scattering
          identical queries across front-ends; this is the adversarial
          layout the node-side result cache and in-flight table absorb,
          kept for those comparison workloads.
        """
        if frontends is not None and frontends < 1:
            raise ValueError("frontends must be >= 1")
        pool = (
            self.frontends
            if frontends is None
            else self.frontends[:frontends]
        )
        if routing == "shard":
            limit = len(pool)
            pairs = [
                (self._route(query, limit=limit), query)
                for query in queries
            ]
        elif routing == "round-robin":
            pairs = [
                (pool[i % len(pool)], query)
                for i, query in enumerate(queries)
            ]
        else:
            raise ValueError(
                f"unknown routing {routing!r}; use 'shard' or 'round-robin'"
            )
        submitted = [(fe, fe.submit(query)) for fe, query in pairs]
        done = self._drive_to_completion(submitted, max_events)
        if not done:
            missing = [
                qid for fe, qid in submitted if qid not in fe.results
            ]
            raise QueryTimeoutError(
                f"{len(missing)} of {len(submitted)} concurrent queries "
                f"did not complete (simulation went idle)"
            )
        return [fe.results.pop(qid) for fe, qid in submitted]

    def result(self, qid: str) -> Optional[QueryResult]:
        """Fetch (and remove) a completed async result, if available."""
        return self.frontend.results.pop(qid, None)

    # ------------------------------------------------------------------
    # churn operations
    # ------------------------------------------------------------------

    def join_node(self, node_id: Optional[int] = None) -> int:
        """Add a fresh node to the overlay; returns its id."""
        if node_id is None:
            node_id = self.overlay.generate_ids(1, seed=self._next_seed)[0]
            self._next_seed += 1
        node = MoaraNode(node_id, self.overlay, self.network, self.config)
        self.nodes[node_id] = node
        self.network.attach(node)
        self.overlay.add_node(node_id)
        return node_id

    def leave_node(self, node_id: int) -> None:
        """Graceful departure: the overlay repairs immediately."""
        self.overlay.remove_node(node_id)
        self.network.detach(node_id)
        del self.nodes[node_id]

    def crash_node(
        self, node_id: int, detection_delay: float = 0.0
    ) -> None:
        """Fail-stop crash.  The node drops off the network at once; the
        overlay learns of the failure after ``detection_delay`` seconds
        (FreePastry's failure detector), at which point trees repair and
        stuck queries resolve."""
        self.network.crash(node_id)

        def detect() -> None:
            if node_id in self.overlay:
                self.overlay.remove_node(node_id)

        self.engine.schedule(detection_delay, detect)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.engine.now

    def run(self, seconds: float) -> None:
        """Advance the simulation by ``seconds``."""
        self.engine.run(until=self.engine.now + seconds)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain all pending protocol activity."""
        self.engine.run_until_idle(max_events=max_events)
