"""The Moara front-end (paper Section 7, "Moara Front-End").

The front-end is the client-side interface: it parses queries, runs the
composite-query planner, optionally probes tree roots for query-cost
estimates, dispatches one sub-query per group in the chosen cover, and
merges the per-group partial aggregates into the final answer ("the
front-end waits until it receives all the results from sub-queries,
aggregates the results returned by the sub-queries, and returns the final
aggregate to the user").

It attaches to the simulated network as an ordinary process (a client
machine outside the overlay).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional, Union

from repro.core import messages as mt
from repro.core.moara_node import group_attribute
from repro.core.parser import parse_query
from repro.core.planner import (
    QueryPlan,
    SemanticContext,
    choose_cover,
    plan_predicate,
)
from repro.core.predicates import Predicate, TruePredicate
from repro.core.query import Query, QueryResult
from repro.pastry.overlay import Overlay
from repro.sim.network import Message, Network

__all__ = ["Frontend", "ProbePolicy"]

ResultCallback = Callable[[QueryResult], None]


class ProbePolicy(Enum):
    """When the front-end sends size probes before a query."""

    #: Probe whenever the query involves more than one group (the paper's
    #: behaviour: all composite queries are preceded by size probes).
    COMPOSITE = "composite"
    #: Probe only when several candidate covers compete (pure unions skip).
    MULTI_COVER = "multi-cover"
    #: Never probe; break ties with default costs.
    NEVER = "never"


@dataclass
class _PendingProbe:
    qid: str
    plan: QueryPlan
    query: Query
    waiting: set[str]  # canonical predicate keys awaiting SIZE_RESPONSE
    costs: dict[str, int] = field(default_factory=dict)
    started_at: float = 0.0


@dataclass
class _PendingQuery:
    qid: str
    query: Query
    plan: QueryPlan
    waiting: set[str]  # canonical keys of cover groups awaiting answers
    cover: list[str]
    partial: Any = None
    contributors: int = 0
    started_at: float = 0.0
    probe_latency: float = 0.0
    probed_costs: dict[str, int] = field(default_factory=dict)
    callback: Optional[ResultCallback] = None
    messages_before: int = 0


class Frontend:
    """Client-side query coordinator."""

    def __init__(
        self,
        network: Network,
        overlay: Overlay,
        node_id: int = -1,
        probe_policy: ProbePolicy = ProbePolicy.COMPOSITE,
        semantics: Optional[SemanticContext] = None,
    ) -> None:
        self.network = network
        self.overlay = overlay
        self.node_id = node_id
        self.probe_policy = probe_policy
        self.semantics = semantics or SemanticContext()
        self._qid_counter = itertools.count(1)
        self._pending_probes: dict[str, _PendingProbe] = {}
        self._pending_queries: dict[str, _PendingQuery] = {}
        self.results: dict[str, QueryResult] = {}
        network.attach(self)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(
        self,
        query: Union[str, Query],
        callback: Optional[ResultCallback] = None,
    ) -> str:
        """Parse/plan a query and start executing it; returns the query id.

        The result lands in :attr:`results` (and the callback fires) once
        all sub-queries answer; drive the simulation engine to completion.
        """
        if isinstance(query, str):
            query = parse_query(query)
        qid = f"fe{self.node_id}-{next(self._qid_counter)}"
        now = self.network.engine.now
        plan = plan_predicate(query.predicate, self.semantics)

        if plan.unsatisfiable:
            # Figure 7's "{}" cover: provably no node satisfies the query.
            result = QueryResult(
                query=query,
                value=query.function.finalize(None),
                cover=[],
                short_circuited=True,
            )
            self._complete(qid, result, callback)
            return qid

        pending = _PendingQuery(
            qid=qid,
            query=query,
            plan=plan,
            waiting=set(),
            cover=[],
            started_at=now,
            callback=callback,
            messages_before=self.network.stats.total_messages,
        )
        self._pending_queries[qid] = pending

        if plan.global_group:
            self._dispatch(pending, [TruePredicate()])
            return qid

        if self._should_probe(plan):
            groups = sorted(plan.all_groups(), key=lambda p: p.canonical())
            probe = _PendingProbe(
                qid=qid,
                plan=plan,
                query=query,
                waiting={p.canonical() for p in groups},
                started_at=now,
            )
            self._pending_probes[qid] = probe
            for group in groups:
                self._send_probe(qid, group)
        else:
            cover = choose_cover(plan, {})
            self._dispatch(pending, sorted(cover, key=lambda p: p.canonical()))
        return qid

    def _should_probe(self, plan: QueryPlan) -> bool:
        if self.probe_policy is ProbePolicy.NEVER:
            return False
        if self.probe_policy is ProbePolicy.MULTI_COVER:
            return plan.needs_probes()
        # COMPOSITE: anything touching more than one group gets probed.
        return len(plan.all_groups()) > 1 or plan.needs_probes()

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------

    def _send_probe(self, qid: str, group: Predicate) -> None:
        root = self.overlay.root(
            self.overlay.space.hash_name(group_attribute(group))
        )
        self.network.send(
            self.node_id,
            root,
            mt.SIZE_PROBE,
            {"probe_id": qid, "predicate": group},
        )

    def _handle_size_response(self, message: Message) -> None:
        payload = message.payload
        probe = self._pending_probes.get(payload["probe_id"])
        if probe is None:
            return
        key = payload["pred_key"]
        if key not in probe.waiting:
            return
        probe.waiting.discard(key)
        probe.costs[key] = payload["cost"]
        if probe.waiting:
            return
        # All probes answered: choose the cheapest cover and fire.
        del self._pending_probes[probe.qid]
        pending = self._pending_queries[probe.qid]
        pending.probe_latency = self.network.engine.now - probe.started_at
        pending.probed_costs = dict(probe.costs)
        cover = choose_cover(probe.plan, probe.costs)
        self._dispatch(pending, sorted(cover, key=lambda p: p.canonical()))

    # ------------------------------------------------------------------
    # sub-query dispatch and merging
    # ------------------------------------------------------------------

    def _dispatch(
        self, pending: _PendingQuery, cover_groups: list[Predicate]
    ) -> None:
        pending.cover = [g.canonical() for g in cover_groups]
        pending.waiting = set(pending.cover)
        for group in cover_groups:
            root = self.overlay.root(
                self.overlay.space.hash_name(group_attribute(group))
            )
            self.network.send(
                self.node_id,
                root,
                mt.FRONTEND_QUERY,
                {
                    "qid": pending.qid,
                    "query": pending.query,
                    "predicate": group,
                },
            )

    def _handle_frontend_response(self, message: Message) -> None:
        payload = message.payload
        pending = self._pending_queries.get(payload["qid"])
        if pending is None:
            return
        key = payload["pred_key"]
        if key not in pending.waiting:
            return
        pending.waiting.discard(key)
        pending.partial = pending.query.function.merge(
            pending.partial, payload["partial"]
        )
        pending.contributors += payload["contributors"]
        if pending.waiting:
            return
        del self._pending_queries[pending.qid]
        now = self.network.engine.now
        result = QueryResult(
            query=pending.query,
            value=pending.query.function.finalize(pending.partial),
            cover=pending.cover,
            contributors=pending.contributors,
            latency=now - pending.started_at,
            message_cost=self.network.stats.total_messages
            - pending.messages_before,
            probed_costs=pending.probed_costs,
            probe_latency=pending.probe_latency,
        )
        self._complete(pending.qid, result, pending.callback)

    def _complete(
        self,
        qid: str,
        result: QueryResult,
        callback: Optional[ResultCallback],
    ) -> None:
        if callback is not None:
            # Callback-style consumers (periodic monitors) own the result;
            # storing it too would grow `results` without bound.
            callback(result)
        else:
            self.results[qid] = result

    # ------------------------------------------------------------------
    # network entry point
    # ------------------------------------------------------------------

    def handle_message(self, message: Message) -> None:
        if message.mtype == mt.SIZE_RESPONSE:
            self._handle_size_response(message)
        elif message.mtype == mt.FRONTEND_RESPONSE:
            self._handle_frontend_response(message)
        else:
            raise ValueError(
                f"front-end received unexpected message {message.mtype!r}"
            )

    def is_idle(self) -> bool:
        """True when no queries or probes are outstanding."""
        return not self._pending_probes and not self._pending_queries
