"""The Moara front-end (paper Section 7, "Moara Front-End").

The front-end is the client-side interface: it parses queries, runs the
composite-query planner, optionally probes tree roots for query-cost
estimates, dispatches one sub-query per group in the chosen cover, and
merges the per-group partial aggregates into the final answer ("the
front-end waits until it receives all the results from sub-queries,
aggregates the results returned by the sub-queries, and returns the final
aggregate to the user").

Beyond the paper, this front-end is a *concurrent multi-query engine*
built for repeated, overlapping workloads:

* any number of queries can be in flight at once, keyed by query id;
* planning goes through a :class:`~repro.core.plan_cache.PlanCache`, so
  re-issued predicates skip CNF rewriting and semantic simplification;
* group sizes live in a TTL'd :class:`~repro.core.plan_cache.GroupSizeCache`
  fed by probe replies and by the cost piggybacked on every sub-query
  answer, so warm composite queries skip the ``2 * np`` probe round-trip;
* probes for the same group are deduplicated across concurrent queries;
* identical concurrent queries share one sub-query per cover group, with
  the answer fanned back out to every subscriber (batched dispatch).

The front-end is **transport-agnostic**: everything it needs from the
world is the :class:`repro.sim.network.FrontendTransport` seam (attach,
send, stats, a clock, and a synchronous-burst counter).  Attached to the
simulated :class:`~repro.sim.network.Network` it is a client machine
outside the overlay, exactly as before; attached to a
:class:`repro.serve.transport.RemoteNetwork` the *same code* is the core
of a deployed asyncio front-end server speaking real sockets
(:mod:`repro.serve.frontend_server`).
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional, Union

from repro.core import messages as mt
from repro.core.adaptive_ttl import AdaptiveTTL
from repro.core.moara_node import group_attribute
from repro.core.parser import parse_query
from repro.core.plan_cache import (
    GroupSizeCache,
    PlanCache,
    SharedGroupSizeCache,
)
from repro.core.planner import (
    QueryPlan,
    SemanticContext,
    choose_cover,
    plan_predicate,
)
from repro.core.predicates import Predicate, TruePredicate
from repro.core.query import Query, QueryResult
from repro.pastry.overlay import Overlay
from repro.sim.network import FrontendTransport, Message
from repro.sim.stats import QueryRecord
from repro.standing.manager import (
    StandingHandle,
    StandingQueryManager,
    UpdateCallback,
)

__all__ = ["Frontend", "FrontendConfig", "ProbePolicy"]

ResultCallback = Callable[[QueryResult], None]


class ProbePolicy(Enum):
    """When the front-end sends size probes before a query."""

    #: Probe whenever the query involves more than one group (the paper's
    #: behaviour: all composite queries are preceded by size probes).
    COMPOSITE = "composite"
    #: Probe only when several candidate covers compete (pure unions skip).
    MULTI_COVER = "multi-cover"
    #: Never probe; break ties with default costs.
    NEVER = "never"


@dataclass(frozen=True)
class FrontendConfig:
    """Query-plane tunables for the concurrent front-end.

    The defaults enable all caching/batching layers; the all-disabled
    configuration (:meth:`uncached`) reproduces the seed's
    plan-and-probe-every-query behaviour for comparison benchmarks.
    """

    #: LRU size for memoized plans/covers; 0 disables plan caching.
    plan_cache_size: int = 1024
    #: Seconds a group-size estimate stays fresh; 0 disables the cache
    #: (every composite query probes, as in the paper).  With
    #: :attr:`adaptive_size_ttl` this is the *upper bound* of the per-entry
    #: TTL range (zero observed churn reproduces the fixed-TTL behaviour).
    size_cache_ttl: float = 60.0
    #: Lower bound for churn-adaptive size-cache TTLs: a churn storm can
    #: shrink entries to this, never below.
    size_cache_ttl_min: float = 5.0
    #: Scale each size-cache entry's TTL by the group's observed churn
    #: (changed cost estimates, overlay membership events) between
    #: ``size_cache_ttl_min`` and ``size_cache_ttl``.  Off = the PR 1
    #: fixed-TTL behaviour.
    adaptive_size_ttl: bool = True
    #: Decay window (seconds) of the churn-rate estimator feeding the
    #: adaptive TTLs (see :mod:`repro.core.adaptive_ttl`).
    churn_window: float = 30.0
    #: Identical concurrent queries share one sub-query per cover group.
    share_subqueries: bool = True
    #: Concurrent queries waiting on the same group share one size probe.
    dedupe_probes: bool = True
    #: Feed the size cache from the cost piggybacked on sub-query answers.
    piggyback_sizes: bool = True
    #: Re-run cover choice for each standing query every N folded
    #: updates (churn shifts group sizes; the size cache is kept warm by
    #: the cost piggybacked on standing updates).  0 disables replans.
    standing_replan_every: int = 64

    @classmethod
    def uncached(cls) -> "FrontendConfig":
        """The seed front-end: no caches, no batching, probe every time."""
        return cls(
            plan_cache_size=0,
            size_cache_ttl=0.0,
            size_cache_ttl_min=0.0,
            adaptive_size_ttl=False,
            share_subqueries=False,
            dedupe_probes=False,
            piggyback_sizes=False,
        )


@dataclass
class _PendingQuery:
    """One submitted query, from planning to completion."""

    qid: str
    query: Query
    plan: QueryPlan
    started_at: float
    callback: Optional[ResultCallback]
    plan_cached: bool = False
    #: canonical group key -> cost estimate known so far (cache or probe)
    costs: dict[str, float] = field(default_factory=dict)
    #: canonical group keys still awaiting a probe answer
    needed: set[str] = field(default_factory=set)
    cover: list[str] = field(default_factory=list)
    probe_started: float = 0.0
    probe_latency: float = 0.0
    #: marginal messages charged to this query (its own probes; plus the
    #: shared sub-query's traffic iff this query initiated it)
    own_messages: int = 0
    shared: bool = False


@dataclass
class _ProbeInFlight:
    """One deduplicated size probe for one group."""

    key: str  # canonical group predicate
    tag: str  # message-accounting tag (the wire probe_id)
    initiator: str  # qid charged for the probe traffic
    waiters: list[str]  # qids awaiting this probe's answer
    root: int = -1  # tree root the probe was sent to
    #: engine event count at creation; joinable only within the same
    #: synchronous burst (no events processed in between)
    created_seq: int = 0


@dataclass
class _SharedSubQuery:
    """One dispatched (query, cover) execution, shared by identical
    concurrent queries; the answer fans back out to every subscriber."""

    share_id: str
    share_key: tuple
    query: Query
    cover: list[str]
    waiting: set[str]  # canonical keys of cover groups awaiting answers
    subscribers: list[str]  # qids, initiator first
    partial: Any = None
    contributors: int = 0
    #: canonical group key -> tree root its sub-query was sent to
    targets: dict[str, int] = field(default_factory=dict)
    #: engine event count at dispatch; joinable only within the same
    #: synchronous burst (no events processed in between)
    created_seq: int = 0
    #: cover groups whose reply carried the root-cache ``cached`` flag
    cached_groups: int = 0
    #: cover groups whose reply carried the ``subscribed`` flag (the root
    #: answered us from an identical in-flight execution)
    subscribed_groups: int = 0
    #: worst-case staleness over the cached replies (max ``cache_age``)
    max_cache_age: float = 0.0
    #: set when a transport-link failure resolved this share NULL: the
    #: fan-out marks every subscriber's result as explicitly failed
    failed: bool = False
    failure: str = ""


class Frontend:
    """Client-side concurrent query coordinator."""

    def __init__(
        self,
        network: FrontendTransport,
        overlay: Overlay,
        node_id: int = -1,
        probe_policy: ProbePolicy = ProbePolicy.COMPOSITE,
        semantics: Optional[SemanticContext] = None,
        config: Optional[FrontendConfig] = None,
        shard_id: int = 0,
        shared_sizes: Optional[SharedGroupSizeCache] = None,
    ) -> None:
        self.network = network
        self.overlay = overlay
        self.node_id = node_id
        self.probe_policy = probe_policy
        self.semantics = semantics or SemanticContext()
        self.config = config or FrontendConfig()
        self.plan_cache: Optional[PlanCache] = (
            PlanCache(self.semantics, self.config.plan_cache_size)
            if self.config.plan_cache_size > 0
            else None
        )
        #: this front-end's index in the sharded query plane (0 for a
        #: standalone front-end; see repro.core.shard_router).
        self.shard_id = shard_id
        #: the cluster-wide size tier, when this front-end is one shard of
        #: a sharded query plane (None = private per-front-end cache).
        self._shared = shared_sizes
        if shared_sizes is not None:
            # Read through the shared tier; per-entry TTL policy (and the
            # churn it observes) lives in the tier, shared by all shards.
            self.size_cache = shared_sizes.view(shard_id)
            self._size_ttl_policy: Optional[AdaptiveTTL] = None
        else:
            policy = AdaptiveTTL.if_enabled(
                self.config.adaptive_size_ttl,
                self.config.size_cache_ttl_min,
                self.config.size_cache_ttl,
                self.config.churn_window,
            )
            self._size_ttl_policy = policy
            self.size_cache = GroupSizeCache(
                ttl=self.config.size_cache_ttl,
                ttl_policy=policy,
                on_ttl=(
                    network.stats.record_adaptive_ttl
                    if policy is not None
                    else None
                ),
            )
        #: canonical group key -> qids waiting on another shard's probe.
        self._shared_waits: dict[str, list[str]] = {}
        self._qid_counter = itertools.count(1)
        self._share_counter = itertools.count(1)
        self._pending_queries: dict[str, _PendingQuery] = {}
        #: probe tag -> in-flight probe
        self._probes: dict[str, _ProbeInFlight] = {}
        #: canonical group key -> tag of the joinable probe (dedup index)
        self._probe_by_group: dict[str, str] = {}
        #: (query canonical, cover) -> in-flight shared sub-query
        self._shares: dict[tuple, _SharedSubQuery] = {}
        self._share_by_id: dict[str, _SharedSubQuery] = {}
        self.results: dict[str, QueryResult] = {}
        #: completion signal: called with the qid of every query that
        #: finishes (stored or delivered to its callback).  The cluster's
        #: waiter registry plugs in here so drivers can sleep in
        #: ``Engine.run`` and be woken by ``Engine.request_stop`` instead
        #: of re-scanning ``results`` after every event (the old
        #: ``run_until`` slow path).
        self.on_query_complete: Optional[Callable[[str], None]] = None
        #: standing-query plane: registration, delta folding, leases,
        #: and enmeshed cover replans (see repro.standing.manager).
        self.standing = StandingQueryManager(self)
        network.attach(self)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(
        self,
        query: Union[str, Query],
        callback: Optional[ResultCallback] = None,
    ) -> str:
        """Parse/plan a query and start executing it; returns the query id.

        Any number of queries may be in flight at once.  The result lands
        in :attr:`results` (and the callback fires) once all sub-queries
        answer; drive the simulation engine to completion.
        """
        if isinstance(query, str):
            query = parse_query(query)
        qid = f"fe{self.node_id}-{next(self._qid_counter)}"
        now = self.network.now
        self.network.stats.shard_queries[self.shard_id] += 1
        plan, plan_cached = self._plan(query.predicate)

        if plan.unsatisfiable:
            # Figure 7's "{}" cover: provably no node satisfies the query.
            result = QueryResult(
                query=query,
                value=query.function.finalize(None),
                cover=[],
                short_circuited=True,
                plan_cached=plan_cached,
            )
            self.network.stats.record_query(
                QueryRecord(
                    qid=qid,
                    latency=0.0,
                    messages=0,
                    shard=self.shard_id,
                    completed_at=now,
                )
            )
            self._complete(qid, result, callback)
            return qid

        pending = _PendingQuery(
            qid=qid,
            query=query,
            plan=plan,
            started_at=now,
            callback=callback,
            plan_cached=plan_cached,
        )
        self._pending_queries[qid] = pending

        if plan.global_group:
            self._resolve_cover(pending, [TruePredicate()])
            return qid

        # Seed known costs from the group-size cache, then probe only the
        # groups the cache cannot answer for.
        groups = sorted(plan.all_groups(), key=lambda p: p.canonical())
        missing: list[Predicate] = []
        stats = self.network.stats
        for group in groups:
            cached = self.size_cache.get(group.canonical(), now)
            if cached is None:
                missing.append(group)
                stats.shard_size_misses[self.shard_id] += 1
            else:
                pending.costs[group.canonical()] = cached
                stats.shard_size_hits[self.shard_id] += 1

        if not (self._should_probe(plan) and missing):
            self._finish_planning(pending)
            return qid

        pending.probe_started = now
        pending.needed = {g.canonical() for g in missing}
        for group in missing:
            self._join_probe(pending.qid, group)
        return qid

    def submit_many(
        self, queries: list[Union[str, Query]]
    ) -> list[str]:
        """Submit a batch of queries in one tick; returns their ids.

        Identical queries in the batch share sub-queries and probes.
        """
        return [self.submit(query) for query in queries]

    def subscribe(
        self,
        query: Union[str, Query],
        on_update: Optional[UpdateCallback] = None,
        lease: float = 0.0,
    ) -> StandingHandle:
        """Register a standing query; returns its live handle.

        Unlike :meth:`submit`, the query stays resident: delta
        subscriptions are installed down the cover trees and every
        subsequent churn event folds into the handle's answer stream
        (see :mod:`repro.standing` for the ordering/staleness
        contract).  Cancel with ``frontend.standing.cancel(handle)``.
        """
        return self.standing.register(query, on_update=on_update, lease=lease)

    def _plan(self, predicate: Predicate) -> tuple[QueryPlan, bool]:
        if self.plan_cache is not None:
            return self.plan_cache.plan(predicate)
        return plan_predicate(predicate, self.semantics), False

    def _choose_cover(
        self, plan: QueryPlan, costs: dict[str, float]
    ):
        if self.plan_cache is not None:
            return self.plan_cache.cover(plan, costs)
        return choose_cover(plan, costs)

    def _should_probe(self, plan: QueryPlan) -> bool:
        if self.probe_policy is ProbePolicy.NEVER:
            return False
        if self.probe_policy is ProbePolicy.MULTI_COVER:
            return plan.needs_probes()
        # COMPOSITE: anything touching more than one group gets probed.
        return len(plan.all_groups()) > 1 or plan.needs_probes()

    @property
    def inflight(self) -> int:
        """Number of submitted queries that have not completed."""
        return len(self._pending_queries)

    # ------------------------------------------------------------------
    # probes (deduplicated across concurrent queries)
    # ------------------------------------------------------------------

    def _join_probe(self, qid: str, group: Predicate) -> None:
        key = group.canonical()
        seq = self.network.burst_seq
        if self.config.dedupe_probes:
            tag = self._probe_by_group.get(key)
            if tag is not None:
                probe = self._probes[tag]
                # Join only a probe issued in this same synchronous burst
                # (no engine events processed since).  An older entry may
                # be slow or lost (crashed root); joining it would let one
                # dropped SIZE_RESPONSE poison this group key forever.
                # The older probe stays in `_probes` so a merely-slow
                # answer still resolves its own waiters.
                if probe.created_seq == seq:
                    probe.waiters.append(qid)
                    return
            # Cluster-wide dedup: if another shard's wire probe for this
            # group is in flight in this same burst, subscribe to its
            # answer through the shared tier instead of duplicating it
            # (one probe per group cluster-wide, not per shard).
            if self._shared is not None and self._shared.join_probe(
                key, self.shard_id, seq, self._on_shared_size
            ):
                self._shared_waits.setdefault(key, []).append(qid)
                self.network.stats.shared_probe_joins += 1
                return
        tag = f"pr{self.node_id}-{next(self._share_counter)}"
        root = self.overlay.root(
            self.overlay.space.hash_name(group_attribute(group))
        )
        self._probes[tag] = _ProbeInFlight(
            key=key,
            tag=tag,
            initiator=qid,
            waiters=[qid],
            root=root,
            created_seq=seq,
        )
        if self.config.dedupe_probes:
            self._probe_by_group[key] = tag
            if self._shared is not None:
                self._shared.open_probe(
                    key, self.shard_id, tag, seq, self.network.now
                )
        self.network.send(
            self.node_id,
            root,
            mt.SIZE_PROBE,
            {"probe_id": tag, "predicate": group},
        )

    def _handle_size_response(self, message: Message) -> None:
        payload = message.payload
        key = payload["pred_key"]
        cost = payload["cost"]
        now = self.network.now
        probe = self._probes.pop(payload["probe_id"], None)
        # Exactly one write path for the answer: resolving a registered
        # shared probe force-publishes it to the tier (the prober is
        # that fill's designated writer) and releases every shard that
        # subscribed instead of sending its own probe; anything else --
        # unsolicited/duplicate answers, superseded probes, private
        # caches -- goes through the plain (single-writer-checked) put.
        released = None
        if probe is not None and self._shared is not None:
            released = self._shared.resolve_probe(
                probe.key, probe.tag, cost, now
            )
        if released is None:
            self.size_cache.put(key, cost, now)
        else:
            for callback in released:
                callback(key, cost, now)
        if probe is None:
            return  # unsolicited/duplicate answer: cached above, move on
        if self._probe_by_group.get(probe.key) == probe.tag:
            del self._probe_by_group[probe.key]
        probe_messages = self.network.stats.pop_tag(probe.tag)
        for qid in probe.waiters:
            pending = self._pending_queries.get(qid)
            if pending is None:
                continue
            pending.costs[key] = cost
            pending.needed.discard(key)
            if qid == probe.initiator:
                pending.own_messages += probe_messages
            if not pending.needed:
                pending.probe_latency = now - pending.probe_started
                self._finish_planning(pending)

    def _on_shared_size(
        self, key: str, cost: Optional[float], now: float
    ) -> None:
        """Another shard's probe for ``key`` resolved (shared-tier
        publish fan-out): resume every query of ours that was waiting on
        it.  ``cost`` is None when the probe resolved NULL (the probed
        root departed); the waiting queries then fall back to default
        costs, exactly as if our own probe had been resolved by churn.
        """
        for qid in self._shared_waits.pop(key, ()):
            pending = self._pending_queries.get(qid)
            if pending is None:
                continue
            if cost is not None:
                pending.costs[key] = cost
            pending.needed.discard(key)
            if not pending.needed:
                pending.probe_latency = now - pending.probe_started
                self._finish_planning(pending)

    # ------------------------------------------------------------------
    # cover choice and shared sub-query dispatch
    # ------------------------------------------------------------------

    def _finish_planning(self, pending: _PendingQuery) -> None:
        cover = self._choose_cover(pending.plan, pending.costs)
        self._resolve_cover(
            pending, sorted(cover, key=lambda p: p.canonical())
        )

    def _resolve_cover(
        self, pending: _PendingQuery, cover_groups: list[Predicate]
    ) -> None:
        pending.cover = [g.canonical() for g in cover_groups]
        # Share identity: attribute + full function signature (not the
        # display name, which can omit parameters) + predicate + cover.
        share_key = (
            pending.query.attr,
            pending.query.function.signature(),
            pending.query.predicate.canonical(),
            tuple(pending.cover),
        )
        seq = self.network.burst_seq
        if self.config.share_subqueries:
            share = self._shares.get(share_key)
            # Share only with an identical query dispatched in this same
            # synchronous burst (no engine events processed since).  An
            # older share may be stuck on a lost response; a new dispatch
            # below simply replaces it in the share index (the old one
            # still completes for its own subscribers if its answer is
            # merely slow).
            if share is not None and share.created_seq == seq:
                share.subscribers.append(pending.qid)
                pending.shared = True
                return
        share_id = f"sh{self.node_id}-{next(self._share_counter)}"
        share = _SharedSubQuery(
            share_id=share_id,
            share_key=share_key,
            query=pending.query,
            cover=list(pending.cover),
            waiting=set(pending.cover),
            subscribers=[pending.qid],
            created_seq=seq,
        )
        if self.config.share_subqueries:
            self._shares[share_key] = share
        self._share_by_id[share_id] = share
        for group in cover_groups:
            root = self.overlay.root(
                self.overlay.space.hash_name(group_attribute(group))
            )
            share.targets[group.canonical()] = root
            self.network.send(
                self.node_id,
                root,
                mt.FRONTEND_QUERY,
                {
                    "qid": share_id,
                    "query": pending.query,
                    "predicate": group,
                    # The full chosen cover: roots use it to decide
                    # whether this execution's result is reusable across
                    # query ids (single-group covers only; see
                    # repro.core.result_cache).
                    "cover": tuple(pending.cover),
                },
            )

    def _handle_frontend_response(self, message: Message) -> None:
        payload = message.payload
        now = self.network.now
        key = payload["pred_key"]
        if self.config.piggyback_sizes and "cost" in payload:
            # Every answered sub-query refreshes the group-size cache.
            self.size_cache.put(key, payload["cost"], now)
        share = self._share_by_id.get(payload["qid"])
        if share is None or key not in share.waiting:
            return
        share.waiting.discard(key)
        # Root-side optimization metadata (see repro.core.result_cache):
        # surfaced per query so consumers can see how their answer was
        # produced and how stale it may be.
        if payload.get("cached"):
            share.cached_groups += 1
            share.max_cache_age = max(
                share.max_cache_age, payload.get("cache_age", 0.0)
            )
        if payload.get("subscribed"):
            share.subscribed_groups += 1
        part = payload["partial"]
        if part is not None:
            # merge() treats None as the identity; skip it for NULL groups.
            share.partial = (
                part
                if share.partial is None
                else share.query.function.merge(share.partial, part)
            )
        share.contributors += payload["contributors"]
        if share.waiting:
            return
        self._fan_out(share)

    def _fan_out(self, share: _SharedSubQuery) -> None:
        """Deliver a completed shared sub-query to every subscriber."""
        del self._share_by_id[share.share_id]
        if self._shares.get(share.share_key) is share:
            del self._shares[share.share_key]
        now = self.network.now
        shared_messages = self.network.stats.pop_tag(share.share_id)
        value = share.query.function.finalize(share.partial)
        root_cached = (
            bool(share.cover) and share.cached_groups == len(share.cover)
        )
        root_shared = share.subscribed_groups > 0
        for index, qid in enumerate(share.subscribers):
            pending = self._pending_queries.pop(qid, None)
            if pending is None:
                continue
            messages = pending.own_messages
            if not pending.shared:
                messages += shared_messages  # the initiator pays
            result = QueryResult(
                query=pending.query,
                # Mutable answers (top-k lists, histogram dicts) must not
                # alias across subscribers: each result owns its value.
                value=value if index == 0 else copy.deepcopy(value),
                cover=list(share.cover),
                contributors=share.contributors,
                latency=now - pending.started_at,
                message_cost=messages,
                probed_costs=dict(pending.costs),
                probe_latency=pending.probe_latency,
                shared=pending.shared,
                plan_cached=pending.plan_cached,
                root_cached=root_cached,
                root_shared=root_shared,
                cache_age=share.max_cache_age,
                failed=share.failed,
                failure=share.failure,
            )
            if share.failed:
                self.network.stats.failed_queries += 1
            self.network.stats.record_query(
                QueryRecord(
                    qid=qid,
                    latency=result.latency,
                    messages=messages,
                    probe_latency=pending.probe_latency,
                    shard=self.shard_id,
                    shared=pending.shared,
                    root_cached=root_cached,
                    root_shared=root_shared,
                    completed_at=now,
                )
            )
            self._complete(qid, result, pending.callback)

    def _complete(
        self,
        qid: str,
        result: QueryResult,
        callback: Optional[ResultCallback],
    ) -> None:
        if callback is not None:
            # Callback-style consumers (periodic monitors) own the result;
            # storing it too would grow `results` without bound.
            callback(result)
        else:
            self.results[qid] = result
        if self.on_query_complete is not None:
            self.on_query_complete(qid)

    # ------------------------------------------------------------------
    # network entry point
    # ------------------------------------------------------------------

    def handle_message(self, message: Message) -> None:
        if message.mtype == mt.SIZE_RESPONSE:
            self._handle_size_response(message)
        elif message.mtype == mt.FRONTEND_RESPONSE:
            self._handle_frontend_response(message)
        elif message.mtype == mt.STANDING_UPDATE:
            self.standing.on_update(message)
        else:
            raise ValueError(
                f"front-end received unexpected message {message.mtype!r}"
            )

    def is_idle(self) -> bool:
        """True when no queries, probes, or shared sub-queries are
        outstanding."""
        return (
            not self._pending_queries
            and not self._probes
            and not self._share_by_id
            and not self._shared_waits
        )

    # ------------------------------------------------------------------
    # reconfiguration (Section 7)
    # ------------------------------------------------------------------

    def on_membership_change(self, joined: set[int], left: set[int]) -> None:
        """Resolve in-flight work stuck on departed tree roots.

        Mirrors the node-side convention ("proceed assuming a NULL
        response"): a probe or sub-query whose root left the overlay is
        treated as answered empty, so waiting queries terminate with the
        survivors' data instead of hanging and leaking front-end state.
        """
        now = self.network.now
        if (
            (joined or left)
            and self._shared is None
            and self._size_ttl_policy is not None
        ):
            # Standalone front-end: overlay churn shortens size-cache
            # TTLs.  (With a shared tier the cluster feeds churn into the
            # tier once, not once per shard.)
            self._size_ttl_policy.observe_global(now)
        # Standing subscriptions survive churn by re-installing their
        # covers (idempotent; pushes are suppressed when unchanged) --
        # for joins too: new nodes hold no subscription state until an
        # install sweep reaches them.
        self.standing.on_membership_change(joined, left)
        if not left:
            return
        for probe in [
            p for p in self._probes.values() if p.root in left
        ]:
            del self._probes[probe.tag]
            if self._probe_by_group.get(probe.key) == probe.tag:
                del self._probe_by_group[probe.key]
            if self._shared is not None:
                # Release cross-shard subscribers with a NULL resolution
                # (mirrors the local waiters below: no cost learned).
                for callback in (
                    self._shared.resolve_probe(probe.key, probe.tag, None, now)
                    or ()
                ):
                    callback(probe.key, None, now)
            probe_messages = self.network.stats.pop_tag(probe.tag)
            for qid in probe.waiters:
                pending = self._pending_queries.get(qid)
                if pending is None:
                    continue
                # No cost learned: choose_cover falls back to the default.
                pending.needed.discard(probe.key)
                if qid == probe.initiator:
                    pending.own_messages += probe_messages
                if not pending.needed:
                    pending.probe_latency = now - pending.probe_started
                    self._finish_planning(pending)
        for share in list(self._share_by_id.values()):
            gone = {
                key
                for key in share.waiting
                if share.targets.get(key) in left
            }
            if not gone:
                continue
            share.waiting -= gone
            if not share.waiting:
                self._fan_out(share)

    def on_link_failure(
        self,
        tags: Optional[set[str]] = None,
        reason: str = "transport link failure",
    ) -> None:
        """Resolve in-flight work lost on a failed transport link.

        The link-level analog of :meth:`on_membership_change`: a probe or
        shared sub-query whose frames died with the link is resolved NULL
        (the Section 7 contract), so waiting queries terminate *now* with
        an **explicitly failed** result instead of hanging until an HTTP
        timeout.  ``tags`` limits the damage to specific wire tags (the
        probe_id/share_id a dead-link send carried); ``None`` fails
        everything in flight (the whole link dropped).

        NULL-resolved probes re-enter planning with default costs; the
        dispatch that follows may hit the dead link again, which fails
        those tags in turn — the cascade terminates with every affected
        query completed and :attr:`QueryResult.failed` set.
        """
        now = self.network.now
        for probe in [
            p
            for p in self._probes.values()
            if tags is None or p.tag in tags
        ]:
            del self._probes[probe.tag]
            if self._probe_by_group.get(probe.key) == probe.tag:
                del self._probe_by_group[probe.key]
            if self._shared is not None:
                for callback in (
                    self._shared.resolve_probe(probe.key, probe.tag, None, now)
                    or ()
                ):
                    callback(probe.key, None, now)
            probe_messages = self.network.stats.pop_tag(probe.tag)
            for qid in probe.waiters:
                pending = self._pending_queries.get(qid)
                if pending is None:
                    continue
                pending.needed.discard(probe.key)
                if qid == probe.initiator:
                    pending.own_messages += probe_messages
                if not pending.needed:
                    pending.probe_latency = now - pending.probe_started
                    self._finish_planning(pending)
        for share in list(self._share_by_id.values()):
            if tags is not None and share.share_id not in tags:
                continue
            if share.share_id not in self._share_by_id:
                continue  # fanned out by a cascading failure above
            share.failed = True
            share.failure = reason
            share.waiting.clear()
            self._fan_out(share)
