"""Query-plane caches: memoized planning and TTL'd group-size estimates.

At the ROADMAP's "millions of users" scale the front-end is the first
bottleneck: the seed implementation re-ran ``plan_predicate`` /
``choose_cover`` for every submission and re-probed tree roots for group
sizes on every composite query (the paper's ``2 * np`` probe cost,
Section 6.3).  Both inputs are highly repetitive in real monitoring
workloads -- dashboards and periodic monitors re-issue the same handful of
query shapes forever -- so this module gives the front-end two caches:

* :class:`PlanCache` memoizes the planner.  Keys are the *normalized*
  predicate (its canonical form, so syntactic variants of one predicate
  share an entry) plus the :class:`~repro.core.planner.SemanticContext`
  version, which the context bumps on every :meth:`declare`; a semantics
  change therefore invalidates stale plans without any explicit flush.
* :class:`GroupSizeCache` holds per-group query-cost estimates
  (``2 * np``) with a TTL.  It is fed by size-probe replies *and* by the
  cost piggybacked on every sub-query answer from a tree root, so a warm
  front-end can usually choose a cover without sending a single probe.

Both caches are deliberately synchronous and in-process: the front-end is
a single simulated client machine and the discrete-event engine already
serializes access.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.planner import (
    Clause,
    QueryPlan,
    SemanticContext,
    choose_cover,
    plan_predicate,
)
from repro.core.predicates import Predicate

__all__ = ["CacheStats", "GroupSizeCache", "PlanCache"]


@dataclass
class CacheStats:
    """Hit/miss/expiry counters shared by both cache kinds."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.evictions = 0


class PlanCache:
    """LRU memoization of ``plan_predicate`` and ``choose_cover``.

    A planner entry is keyed on ``(predicate.canonical(), semantics
    version)``; entries planned under an older semantics version simply
    stop being reachable and age out of the LRU.  Cover choices are
    memoized separately because they also depend on the probed costs.
    """

    def __init__(
        self, semantics: SemanticContext, maxsize: int = 1024
    ) -> None:
        if maxsize < 1:
            raise ValueError(
                "maxsize must be >= 1; disable plan caching with "
                "FrontendConfig(plan_cache_size=0) instead"
            )
        self.semantics = semantics
        self.maxsize = maxsize
        self.stats = CacheStats()
        self.cover_stats = CacheStats()
        self._plans: OrderedDict[tuple[str, int], QueryPlan] = OrderedDict()
        self._covers: OrderedDict[tuple, Clause] = OrderedDict()

    def __len__(self) -> int:
        return len(self._plans)

    def plan(self, predicate: Predicate) -> tuple[QueryPlan, bool]:
        """Plan a predicate; returns ``(plan, was_cache_hit)``."""
        key = (predicate.canonical(), self.semantics.version)
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            self.stats.hits += 1
            return plan, True
        self.stats.misses += 1
        plan = plan_predicate(predicate, self.semantics)
        self._plans[key] = plan
        if len(self._plans) > self.maxsize:
            self._plans.popitem(last=False)
            self.stats.evictions += 1
        return plan, False

    def cover(self, plan: QueryPlan, costs: Mapping[str, float]) -> Clause:
        """Memoized ``choose_cover``: same plan + same costs = same cover."""
        key = (
            plan.original.canonical(),
            self.semantics.version,
            tuple(sorted(costs.items())),
        )
        cover = self._covers.get(key)
        if cover is not None:
            self._covers.move_to_end(key)
            self.cover_stats.hits += 1
            return cover
        self.cover_stats.misses += 1
        cover = choose_cover(plan, costs)
        self._covers[key] = cover
        if len(self._covers) > self.maxsize:
            self._covers.popitem(last=False)
            self.cover_stats.evictions += 1
        return cover

    def clear(self) -> None:
        self._plans.clear()
        self._covers.clear()


class GroupSizeCache:
    """TTL'd map of canonical group predicate -> query-cost estimate.

    ``ttl <= 0`` disables the cache entirely (every ``get`` misses and
    ``put`` is a no-op), which is how the front-end exposes the seed's
    probe-every-query behaviour for comparison benchmarks.
    """

    def __init__(self, ttl: float = 60.0, maxsize: int = 4096) -> None:
        self.ttl = ttl
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: OrderedDict[str, tuple[float, float]] = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.ttl > 0

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, key: str, cost: float, now: float) -> None:
        """Record a fresh cost estimate for a group (probe or piggyback)."""
        if not self.enabled:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (cost, now + self.ttl)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def get(self, key: str, now: float) -> Optional[float]:
        """Fresh cost estimate for a group, or None on miss/expiry."""
        if not self.enabled:
            self.stats.misses += 1
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        cost, expires_at = entry
        if now > expires_at:
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return cost

    def purge(self, now: float) -> int:
        """Drop all expired entries; returns how many were removed."""
        stale = [
            key
            for key, (_, expires_at) in self._entries.items()
            if now > expires_at
        ]
        for key in stale:
            del self._entries[key]
        self.stats.expirations += len(stale)
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()
