"""Query-plane caches: memoized planning and TTL'd group-size estimates.

At the ROADMAP's "millions of users" scale the front-end is the first
bottleneck: the seed implementation re-ran ``plan_predicate`` /
``choose_cover`` for every submission and re-probed tree roots for group
sizes on every composite query (the paper's ``2 * np`` probe cost,
Section 6.3).  Both inputs are highly repetitive in real monitoring
workloads -- dashboards and periodic monitors re-issue the same handful of
query shapes forever -- so this module gives the front-end two caches:

* :class:`PlanCache` memoizes the planner.  Keys are the *normalized*
  predicate (its canonical form, so syntactic variants of one predicate
  share an entry) plus the :class:`~repro.core.planner.SemanticContext`
  version, which the context bumps on every :meth:`declare`; a semantics
  change therefore invalidates stale plans without any explicit flush.
* :class:`GroupSizeCache` holds per-group query-cost estimates
  (``2 * np``) with a TTL.  It is fed by size-probe replies *and* by the
  cost piggybacked on every sub-query answer from a tree root, so a warm
  front-end can usually choose a cover without sending a single probe.
* :class:`SharedGroupSizeCache` lifts the size cache into a tier **shared
  by every front-end shard** (the SDIMS/Memcached move: one cache tier
  behind N stateless frontends).  All shards read through it, a probe
  registry guarantees **one wire probe per group cluster-wide** (late
  shards subscribe to the in-flight probe instead of duplicating it, and
  the answer is published to every shard at once), and a
  **single-writer-per-group** rule -- the group's consistent-hash owner
  shard, see :class:`repro.core.shard_router.FrontendShardRouter` --
  keeps the tier's contents independent of which shard's piggybacked
  estimate happened to arrive last, so behaviour stays deterministic
  under the simulator regardless of shard interleaving.

Both TTL'd caches take an optional churn-adaptive policy
(:class:`repro.core.adaptive_ttl.AdaptiveTTL`): each entry's TTL is then
scaled between configured min/max bounds by the group's observed churn
(changed estimates, overlay membership events) instead of using one
fixed global.

All caches are deliberately synchronous and in-process: the front-ends
are simulated client machines and the discrete-event engine already
serializes access (a deployed query plane would back
:class:`SharedGroupSizeCache` with a memcached-style service; its
publish latency is not modelled, the probe round-trips are).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Optional

from repro.core.adaptive_ttl import AdaptiveTTL
from repro.core.planner import (
    Clause,
    QueryPlan,
    SemanticContext,
    choose_cover,
    plan_predicate,
)
from repro.core.predicates import Predicate

if TYPE_CHECKING:  # circular at runtime only for type hints
    from repro.core.shard_router import FrontendShardRouter

__all__ = [
    "CacheStats",
    "GroupSizeCache",
    "PlanCache",
    "ShardedSizeCache",
    "SharedGroupSizeCache",
]


@dataclass
class CacheStats:
    """Hit/miss/expiry counters shared by both cache kinds."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.evictions = 0


class PlanCache:
    """LRU memoization of ``plan_predicate`` and ``choose_cover``.

    A planner entry is keyed on ``(predicate.canonical(), semantics
    version)``; entries planned under an older semantics version simply
    stop being reachable and age out of the LRU.  Cover choices are
    memoized separately because they also depend on the probed costs.
    """

    def __init__(
        self, semantics: SemanticContext, maxsize: int = 1024
    ) -> None:
        if maxsize < 1:
            raise ValueError(
                "maxsize must be >= 1; disable plan caching with "
                "FrontendConfig(plan_cache_size=0) instead"
            )
        self.semantics = semantics
        self.maxsize = maxsize
        self.stats = CacheStats()
        self.cover_stats = CacheStats()
        self._plans: OrderedDict[tuple[str, int], QueryPlan] = OrderedDict()
        self._covers: OrderedDict[tuple, Clause] = OrderedDict()

    def __len__(self) -> int:
        return len(self._plans)

    def plan(self, predicate: Predicate) -> tuple[QueryPlan, bool]:
        """Plan a predicate; returns ``(plan, was_cache_hit)``."""
        key = (predicate.canonical(), self.semantics.version)
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            self.stats.hits += 1
            return plan, True
        self.stats.misses += 1
        plan = plan_predicate(predicate, self.semantics)
        self._plans[key] = plan
        if len(self._plans) > self.maxsize:
            self._plans.popitem(last=False)
            self.stats.evictions += 1
        return plan, False

    def cover(self, plan: QueryPlan, costs: Mapping[str, float]) -> Clause:
        """Memoized ``choose_cover``: same plan + same costs = same cover."""
        key = (
            plan.original.canonical(),
            self.semantics.version,
            tuple(sorted(costs.items())),
        )
        cover = self._covers.get(key)
        if cover is not None:
            self._covers.move_to_end(key)
            self.cover_stats.hits += 1
            return cover
        self.cover_stats.misses += 1
        cover = choose_cover(plan, costs)
        self._covers[key] = cover
        if len(self._covers) > self.maxsize:
            self._covers.popitem(last=False)
            self.cover_stats.evictions += 1
        return cover

    def clear(self) -> None:
        self._plans.clear()
        self._covers.clear()


class GroupSizeCache:
    """TTL'd map of canonical group predicate -> query-cost estimate.

    ``ttl <= 0`` disables the cache entirely (every ``get`` misses and
    ``put`` is a no-op), which is how the front-end exposes the seed's
    probe-every-query behaviour for comparison benchmarks.

    With a ``ttl_policy`` (:class:`~repro.core.adaptive_ttl.AdaptiveTTL`)
    each entry's lifetime is chosen per put from the group's observed
    churn; ``ttl`` then acts as the policy-less fallback and the policy's
    bounds govern.  A fresh estimate that *differs* from a still-live
    entry is itself counted as a churn event (the group's size moved
    while we believed the old value), so the cache self-reports the churn
    it witnesses.  ``on_ttl`` (when set) receives every adaptively
    assigned TTL, feeding the histogram in :mod:`repro.sim.stats`.
    """

    def __init__(
        self,
        ttl: float = 60.0,
        maxsize: int = 4096,
        ttl_policy: Optional[AdaptiveTTL] = None,
        on_ttl: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.ttl = ttl
        self.maxsize = maxsize
        self.ttl_policy = ttl_policy
        self.on_ttl = on_ttl
        self.stats = CacheStats()
        self._entries: OrderedDict[str, tuple[float, float]] = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.ttl > 0

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, key: str, cost: float, now: float) -> None:
        """Record a fresh cost estimate for a group (probe or piggyback)."""
        if not self.enabled:
            return
        prior = self._entries.get(key)
        if prior is not None:
            self._entries.move_to_end(key)
        ttl = self.ttl
        policy = self.ttl_policy
        if policy is not None:
            if prior is not None and prior[0] != cost and now <= prior[1]:
                # The estimate moved while the old one was still fresh:
                # observed group churn shortens this key's future TTLs.
                policy.observe(key, now)
            ttl = policy.ttl_for(key, now)
            if self.on_ttl is not None:
                self.on_ttl(ttl)
        self._entries[key] = (cost, now + ttl)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def get(self, key: str, now: float) -> Optional[float]:
        """Fresh cost estimate for a group, or None on miss/expiry."""
        if not self.enabled:
            self.stats.misses += 1
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        cost, expires_at = entry
        if now > expires_at:
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return cost

    def purge(self, now: float) -> int:
        """Drop all expired entries; returns how many were removed."""
        stale = [
            key
            for key, (_, expires_at) in self._entries.items()
            if now > expires_at
        ]
        for key in stale:
            del self._entries[key]
        self.stats.expirations += len(stale)
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()


#: a shared-probe waiter callback: ``callback(key, cost_or_None, now)``.
SharedSizeCallback = Callable[[str, Optional[float], float], None]


@dataclass
class _SharedProbe:
    """One cluster-wide in-flight size probe for one group."""

    key: str
    shard: int  # the shard whose wire probe is in flight (the writer)
    tag: str  # that probe's wire id (guards against stale resolution)
    #: engine event count at creation; cross-shard joins are allowed only
    #: within the same synchronous burst, mirroring the front-end's local
    #: probe-dedup rule (an older probe may be stuck on a lost response).
    created_seq: int
    #: transport clock at creation (the deployed cache service's
    #: time-based joinability rule reads this; 0.0 under the simulator,
    #: where ``created_seq`` governs instead).
    opened_at: float = 0.0
    waiters: list[tuple[int, SharedSizeCallback]] = field(
        default_factory=list
    )


class SharedGroupSizeCache(GroupSizeCache):
    """The cluster-wide group-size tier every front-end shard reads.

    Extends :class:`GroupSizeCache` with the three properties a shared
    tier needs (see the module docstring):

    * **read-through by every shard** -- :meth:`get`/:meth:`put` take the
      calling shard and keep per-shard :class:`CacheStats` next to the
      cluster-wide ones;
    * **one probe per group cluster-wide** -- the probe registry
      (:meth:`open_probe` / :meth:`join_probe` / :meth:`resolve_probe`)
      lets a shard that misses subscribe to another shard's in-flight
      probe; the resolving shard publishes the answer once and every
      waiter's callback fires, so adding shards does not multiply probe
      traffic;
    * **single writer per group** -- a piggybacked estimate only updates
      a *live* entry when it comes from the group's consistent-hash
      owner shard (:meth:`FrontendShardRouter.owner`); anyone may fill a
      cold entry (the probe registry serializes who does).  Dropped
      writes are counted in :attr:`single_writer_drops`.
    """

    def __init__(
        self,
        router: "FrontendShardRouter",
        ttl: float = 60.0,
        maxsize: int = 4096,
        ttl_policy: Optional[AdaptiveTTL] = None,
        on_ttl: Optional[Callable[[float], None]] = None,
    ) -> None:
        super().__init__(
            ttl=ttl, maxsize=maxsize, ttl_policy=ttl_policy, on_ttl=on_ttl
        )
        self.router = router
        self.shard_stats: dict[int, CacheStats] = {}
        self._probes: dict[str, _SharedProbe] = {}
        #: piggybacked writes rejected by the single-writer rule.
        self.single_writer_drops = 0
        #: cross-shard probe subscriptions (deduplicated wire probes).
        self.probe_joins = 0
        #: probe answers force-written by their registered prober.
        self.publishes = 0

    def view(self, shard: int) -> "ShardedSizeCache":
        """A front-end shard's handle on this tier (shard id baked in)."""
        return ShardedSizeCache(self, shard)

    def stats_for(self, shard: int) -> CacheStats:
        stats = self.shard_stats.get(shard)
        if stats is None:
            stats = self.shard_stats[shard] = CacheStats()
        return stats

    # ------------------------------------------------------------------
    # sharded read/write
    # ------------------------------------------------------------------

    def get(  # type: ignore[override]
        self, key: str, now: float, shard: int = 0
    ) -> Optional[float]:
        shard_stats = self.stats_for(shard)
        expirations_before = self.stats.expirations
        cost = super().get(key, now)
        if cost is None:
            shard_stats.misses += 1
            if self.stats.expirations > expirations_before:
                shard_stats.expirations += 1
        else:
            shard_stats.hits += 1
        return cost

    def put(  # type: ignore[override]
        self, key: str, cost: float, now: float, shard: int = 0
    ) -> bool:
        """Write-through with the single-writer-per-group rule.

        Returns True when the write was applied.  A non-owner shard may
        fill a missing/expired entry (cold fill; the probe registry
        serializes who gets to) but never overwrite a live one.
        """
        if not self.enabled:
            return False
        entry = self._entries.get(key)
        if (
            entry is not None
            and now <= entry[1]
            and shard != self.router.owner(key)
        ):
            self.single_writer_drops += 1
            return False
        super().put(key, cost, now)
        return True

    # ------------------------------------------------------------------
    # cluster-wide probe registry
    # ------------------------------------------------------------------

    def open_probe(
        self, key: str, shard: int, tag: str, seq: int, now: float = 0.0
    ) -> None:
        """Register a wire probe this shard just sent for ``key``.

        A newer probe replaces a stale registry entry (the old prober's
        resolution is ignored via the tag check) -- the same
        replace-on-new-burst rule the front-end uses locally.  Waiters
        parked on the replaced probe are re-homed onto the new one: any
        answer for the group serves them, and dropping them would leave
        their queries waiting on a resolution that can never match.
        """
        old = self._probes.get(key)
        self._probes[key] = _SharedProbe(
            key=key,
            shard=shard,
            tag=tag,
            created_seq=seq,
            opened_at=now,
            waiters=old.waiters if old is not None else [],
        )

    def _joinable(self, probe: _SharedProbe, seq: int) -> bool:
        """Is this registered probe fresh enough to subscribe to?

        Under the simulator "fresh" means *same synchronous burst* (no
        engine events processed since it was opened).  The deployed cache
        service (:mod:`repro.serve.cache_service`) overrides this with a
        wall-clock window, since its clients' event counters are not
        comparable; everything else about the registry is shared code.
        """
        return probe.created_seq == seq

    def join_probe(
        self,
        key: str,
        shard: int,
        seq: int,
        callback: SharedSizeCallback,
    ) -> bool:
        """Subscribe to another shard's in-flight probe for ``key``.

        Returns True (and registers the callback) iff a probe from a
        *different* shard is in flight and still joinable
        (:meth:`_joinable`); the caller then sends no wire probe of its
        own.
        """
        probe = self._probes.get(key)
        if probe is None or probe.shard == shard or not self._joinable(probe, seq):
            return False
        probe.waiters.append((shard, callback))
        self.probe_joins += 1
        return True

    def resolve_probe(
        self, key: str, tag: str, cost: Optional[float], now: float
    ) -> Optional[list[SharedSizeCallback]]:
        """Close the registered probe for ``key`` (answer or NULL).

        Only the probe that opened the entry resolves it (``tag`` must
        match); anything else -- a superseded probe's late answer, a
        double resolution -- returns None and the caller falls back to a
        plain (single-writer-checked) put.  A real answer is
        force-published: the prober is that fill's designated writer
        regardless of ownership.  The waiters' callbacks are returned
        for the caller to invoke; a NULL resolution (the probed root
        departed) publishes nothing but still releases every waiter.
        """
        probe = self._probes.get(key)
        if probe is None or probe.tag != tag:
            return None
        del self._probes[key]
        if cost is not None:
            GroupSizeCache.put(self, key, cost, now)
            self.publishes += 1
        return [callback for _, callback in probe.waiters]

    def on_membership_change(self, now: float) -> None:
        """Overlay churn: raise the global churn rate (shorter TTLs)."""
        if self.ttl_policy is not None:
            self.ttl_policy.observe_global(now)


class ShardedSizeCache:
    """One shard's read-through handle on a :class:`SharedGroupSizeCache`.

    Presents the plain :class:`GroupSizeCache` interface (``get``/``put``
    without a shard argument, ``stats``, ``len``), so the front-end -- and
    every existing test -- is agnostic about whether its size cache is
    private or the shared tier.  ``stats`` are this shard's counters.
    """

    __slots__ = ("shared", "shard")

    def __init__(self, shared: SharedGroupSizeCache, shard: int) -> None:
        self.shared = shared
        self.shard = shard

    @property
    def stats(self) -> CacheStats:
        return self.shared.stats_for(self.shard)

    @property
    def enabled(self) -> bool:
        return self.shared.enabled

    @property
    def ttl(self) -> float:
        return self.shared.ttl

    def __len__(self) -> int:
        return len(self.shared)

    def get(self, key: str, now: float) -> Optional[float]:
        return self.shared.get(key, now, self.shard)

    def put(self, key: str, cost: float, now: float) -> bool:
        return self.shared.put(key, cost, now, self.shard)

    def purge(self, now: float) -> int:
        return self.shared.purge(now)

    def clear(self) -> None:
        self.shared.clear()
